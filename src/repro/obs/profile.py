"""Profiling hooks: per-stage wall time and working-set accounting.

:func:`stage_scope` wraps every :meth:`repro.api.pipeline.Pipeline.run`
stage.  With neither an ambient :func:`~repro.obs.metrics.metrics_scope`
nor a :func:`~repro.obs.tracing.trace_requests` scope active it is a
shared no-op context manager (two global reads — the pipeline hot path
stays clean); otherwise each stage records

* a ``stage.<name>`` span under the calling context's current span,
* a ``stage.<name>.wall_s`` histogram observation into the ambient
  metrics registry, and
* a ``stage.<name>.working_set_bytes`` gauge estimating the bytes of the
  artifacts the stage *provides* (arrays by ``nbytes``, containers and
  objects recursively, bounded depth/fan-out so a pathological context
  cannot stall profiling).
"""

from __future__ import annotations

import sys
from typing import Optional

import numpy as np

from . import metrics as _metrics
from . import tracing as _tracing

__all__ = ["stage_scope", "working_set_bytes"]

#: recursion bounds of the working-set estimator.
_MAX_DEPTH = 4
_MAX_ITEMS = 10_000


def working_set_bytes(value, _depth: int = 0,
                      _seen: Optional[set] = None) -> int:
    """Estimate the resident bytes of one artifact (best effort).

    Arrays report ``nbytes``; containers and plain objects recurse with
    bounded depth, capped fan-out and cycle protection; anything else
    falls back to ``sys.getsizeof``.
    """
    if value is None:
        return 0
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, (bytes, bytearray, str)):
        return len(value)
    if isinstance(value, (int, float, bool, complex)):
        return sys.getsizeof(value)
    if _depth >= _MAX_DEPTH:
        return sys.getsizeof(value)
    if _seen is None:
        _seen = set()
    marker = id(value)
    if marker in _seen:
        return 0
    _seen.add(marker)
    total = sys.getsizeof(value, 0)
    try:
        if isinstance(value, dict):
            items = list(value.items())[:_MAX_ITEMS]
            for key, item in items:
                total += working_set_bytes(key, _depth + 1, _seen)
                total += working_set_bytes(item, _depth + 1, _seen)
        elif isinstance(value, (list, tuple, set, frozenset)):
            for item in list(value)[:_MAX_ITEMS]:
                total += working_set_bytes(item, _depth + 1, _seen)
        else:
            attrs = getattr(value, "__dict__", None)
            if attrs:
                total += working_set_bytes(attrs, _depth + 1, _seen)
    except Exception:   # noqa: BLE001 - estimation must never break a run
        pass
    return int(total)


class _NullStageScope:
    """Shared no-op — the profiling-disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SCOPE = _NullStageScope()


class _StageScope:
    __slots__ = ("_stage", "_context", "_span_cm", "_span", "_start")

    def __init__(self, stage, context) -> None:
        self._stage = stage
        self._context = context
        self._span_cm = _tracing.span(f"stage.{stage.name}")
        self._span = None
        self._start = 0.0

    def __enter__(self):
        self._span = self._span_cm.__enter__()
        self._start = _tracing._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall_s = _tracing._clock() - self._start
        name = self._stage.name
        _metrics.observe(f"stage.{name}.wall_s", wall_s)
        resident = 0
        if exc is None and self._stage.provides:
            resident = sum(
                working_set_bytes(self._context.get(key))
                for key in self._stage.provides)
            _metrics.set_gauge(f"stage.{name}.working_set_bytes", resident)
        if self._span is not None:
            self._span.attributes.setdefault("wall_ms",
                                             round(wall_s * 1e3, 3))
            if resident:
                self._span.attributes.setdefault("working_set_bytes",
                                                 resident)
        return self._span_cm.__exit__(exc_type, exc, tb)


def stage_scope(stage, context):
    """Profile one pipeline stage run (no-op unless obs is active)."""
    if _metrics._ACTIVE is None and _tracing._COLLECTOR is None:
        return _NULL_SCOPE
    return _StageScope(stage, context)
