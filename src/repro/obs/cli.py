"""Command-line front end: ``python -m repro.obs <command> [options]``.

Examples::

    python -m repro.obs snapshot                  # serve demo traffic, emit
                                                  # the unified JSON document
    python -m repro.obs snapshot --requests 12 --indent 2
    python -m repro.obs trace                     # render one request's
                                                  # span tree as text
    python -m repro.obs trace --json --all

Both commands build a tiny warm-started serving stack in process
(:func:`repro.synth.harness.tiny_serving_stack` — random weights, no
training), drive real requests through a pooled
:class:`~repro.serve.Server` inside :func:`~repro.obs.metrics.metrics_scope`
and :func:`~repro.obs.tracing.trace_requests` scopes, and print what the
instrumentation recorded.  ``snapshot`` output is validated against the
schema (:func:`~repro.obs.snapshot.validate_snapshot`) before printing.

Exit status: 0 on a completed run, 1 when the produced snapshot fails its
own validation, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability for the serving stack: unified metrics "
                    "snapshots and per-request trace trees over a demo "
                    "serving workload.",
    )
    commands = parser.add_subparsers(dest="command", metavar="COMMAND")

    snapshot = commands.add_parser(
        "snapshot", help="serve demo traffic and emit the unified, "
                         "versioned JSON snapshot document")
    snapshot.add_argument("--seed", type=int, default=0,
                          help="demo workload seed (default 0)")
    snapshot.add_argument("--requests", type=int, default=8,
                          help="demo requests to serve (default 8)")
    snapshot.add_argument("--workers", type=int, default=2,
                          help="server worker threads (default 2)")
    snapshot.add_argument("--indent", type=int, default=2,
                          help="JSON indent (default 2)")

    trace = commands.add_parser(
        "trace", help="serve demo traffic and print per-request span trees")
    trace.add_argument("--seed", type=int, default=0,
                       help="demo workload seed (default 0)")
    trace.add_argument("--workers", type=int, default=2,
                       help="server worker threads (default 2)")
    trace.add_argument("--json", action="store_true",
                       help="emit stable-schema trace JSON instead of the "
                            "text tree")
    trace.add_argument("--all", action="store_true",
                       help="print every collected trace, not just the first")
    return parser


def _demo_stack(seed: int, workers: int):
    """A warm-started (server, platform, sources) triple for demo traffic."""
    from ..serve import Server, ServerConfig
    from ..synth.harness import tiny_serving_stack

    session, platform, sources = tiny_serving_stack(seed)
    server = Server(session, ServerConfig(num_workers=workers,
                                          max_batch_size=4,
                                          batch_window_s=0.001))
    return server, platform, sources


def _cmd_snapshot(args: argparse.Namespace) -> int:
    import json

    from .metrics import metrics_scope
    from .snapshot import SnapshotError, validate_snapshot
    from .tracing import trace_requests

    server, platform, sources = _demo_stack(args.seed, args.workers)
    try:
        with metrics_scope(), trace_requests():
            requests = [sources[index % len(sources)]
                        for index in range(max(args.requests, 1))]
            for source in requests:
                server.submit(source, platform).result(timeout=30.0)
            server.predict_batch(sources, platform)
            document = server.snapshot()
    finally:
        server.close()
    try:
        validate_snapshot(document)
    except SnapshotError as error:
        print(f"snapshot failed its own validation: {error}",
              file=sys.stderr)
        return 1
    print(json.dumps(document, indent=args.indent or None, sort_keys=True))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .tracing import trace_requests

    server, platform, sources = _demo_stack(args.seed, args.workers)
    try:
        with trace_requests() as collector:
            for source in sources:
                server.submit(source, platform).result(timeout=30.0)
    finally:
        server.close()
    traces = collector.traces()
    if not traces:
        print("no traces collected", file=sys.stderr)
        return 1
    selected = traces if args.all else traces[:1]
    for trace in selected:
        print(trace.to_json(indent=2) if args.json else trace.render())
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "snapshot":
        return _cmd_snapshot(args)
    if args.command == "trace":
        return _cmd_trace(args)
    parser.error("missing command (snapshot or trace)")
    return 2  # pragma: no cover - parser.error raises SystemExit


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
