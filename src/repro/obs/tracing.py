"""Per-request tracing: contextvar-backed span trees over the serving stack.

A :class:`Span` is one timed operation; spans nest into a tree rooted in a
:class:`Trace` — for the serving runtime, one trace per request::

    serve.request                      (root: submit -> respond)
      serve.submit                     admission on the caller's thread
      serve.queue                      enqueue -> dequeue wait
      serve.execute                    the worker-side batch execution
        serve.encode                   cached graph construction
        stage.predict                  the PredictStage forward
          engine.pack                  block-diagonal packing
          engine.forward               the fused GNN forward

Tracing is **off by default** and mirrors the
:func:`~repro.reliability.faults.fault_point` fast path: :func:`span` is a
single global read returning a shared no-op context manager until a
:func:`trace_requests` scope installs a :class:`TraceCollector`.  The
current span travels in a :class:`contextvars.ContextVar`, so nested
instrumentation (store reads, pipeline stages, the packed forward)
attaches to whatever request is executing on that thread —
:func:`activate_span` re-roots the contextvar when a worker picks up a
queued request that began on another thread.

Export is stable-schema JSON (:data:`TRACE_SCHEMA_VERSION`, integer
microsecond offsets, ``to_dict``/``from_dict`` fixpoint) plus a
compiler-style text renderer, the same reporting idiom as
:class:`repro.analysis.Report`.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "Trace",
    "TraceCollector",
    "TraceError",
    "TRACE_SCHEMA_VERSION",
    "activate_span",
    "active_collector",
    "begin_trace",
    "complete_trace",
    "current_span",
    "span",
    "trace_requests",
    "tracing_active",
]

#: schema of :meth:`Trace.to_dict` — bump on any breaking shape change.
TRACE_SCHEMA_VERSION = 1

#: allowed terminal statuses of a finished span.
_STATUSES = ("ok", "error")


class TraceError(ValueError):
    """A span tree violated the schema (export, import or validation)."""


def _clock() -> float:
    """The trace clock: ``time.monotonic()``, shared with the serving
    queue's enqueue/deadline timestamps so wait spans need no conversion."""
    return time.monotonic()


def _json_safe(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


class Span:
    """One timed, named operation with attributes and child spans.

    Spans are built by the thread that owns the operation and finished
    exactly once (:meth:`finish` is idempotent); ``status`` is ``"ok"`` or
    ``"error"`` after finishing, ``None`` while in flight.
    """

    __slots__ = ("name", "attributes", "start_s", "end_s", "status",
                 "error", "children")

    def __init__(self, name: str, attributes: Optional[dict] = None,
                 start_s: Optional[float] = None) -> None:
        if not name:
            raise TraceError("spans need a non-empty name")
        self.name = str(name)
        self.attributes: Dict[str, object] = dict(attributes or {})
        self.start_s = _clock() if start_s is None else float(start_s)
        self.end_s: Optional[float] = None
        self.status: Optional[str] = None
        self.error: Optional[str] = None
        self.children: List["Span"] = []

    # -------------------------------------------------------------- #
    def child(self, name: str, attributes: Optional[dict] = None,
              start_s: Optional[float] = None) -> "Span":
        """Create, attach and return a child span."""
        child = Span(name, attributes, start_s)
        self.children.append(child)
        return child

    def finish(self, error: Optional[BaseException] = None,
               end_s: Optional[float] = None) -> "Span":
        """Close the span (idempotent — the first close wins).

        *error* marks the span failed and records the exception's type and
        message; *end_s* backdates the close (synthesized wait spans).
        """
        if self.status is not None:
            return self
        self.end_s = _clock() if end_s is None else float(end_s)
        if self.end_s < self.start_s:
            self.end_s = self.start_s
        if error is None:
            self.status = "ok"
        else:
            self.status = "error"
            self.error = f"{type(error).__name__}: {error}"
        return self

    @property
    def finished(self) -> bool:
        return self.status is not None

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            return _clock() - self.start_s
        return self.end_s - self.start_s

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over this span and every descendant."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First span named *name* in depth-first order (``None`` if absent)."""
        for node in self.walk():
            if node.name == name:
                return node
        return None

    # -------------------------------------------------------------- #
    def validate(self, _parent: Optional["Span"] = None) -> None:
        """Raise :class:`TraceError` unless the subtree is well-formed:
        every span finished with a legal status, non-negative duration,
        errors carried only by error spans, children inside the parent's
        window (1ms tolerance for cross-thread clock reads)."""
        if self.status not in _STATUSES:
            raise TraceError(
                f"span {self.name!r} is not finished (status {self.status!r})")
        if self.end_s is None or self.end_s < self.start_s:
            raise TraceError(f"span {self.name!r} has a negative duration")
        if (self.error is not None) != (self.status == "error"):
            raise TraceError(
                f"span {self.name!r}: error text and status disagree")
        if _parent is not None:
            epsilon = 1e-3
            if self.start_s < _parent.start_s - epsilon or \
                    (_parent.end_s is not None
                     and self.end_s > _parent.end_s + epsilon):
                raise TraceError(
                    f"span {self.name!r} leaks outside its parent "
                    f"{_parent.name!r}'s window")
        for child in self.children:
            child.validate(self)

    # -------------------------------------------------------------- #
    def to_dict(self, origin: Optional[float] = None) -> dict:
        """JSON-safe export; times are integer microseconds relative to
        *origin* (default: this span's start), so the round trip through
        :meth:`from_dict` is an exact fixpoint."""
        origin = self.start_s if origin is None else origin
        end_s = self.start_s if self.end_s is None else self.end_s
        start_us = round((self.start_s - origin) * 1e6)
        return {
            "name": self.name,
            "start_us": start_us,
            "duration_us": round((end_s - origin) * 1e6) - start_us,
            "status": self.status,
            "error": self.error,
            "attributes": {str(key): _json_safe(value)
                           for key, value in self.attributes.items()},
            "children": [child.to_dict(origin) for child in self.children],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        if not isinstance(payload, dict):
            raise TraceError(f"span payload must be a dict, got "
                             f"{type(payload).__name__}")
        for field in ("name", "start_us", "duration_us", "status",
                      "attributes", "children"):
            if field not in payload:
                raise TraceError(f"span payload is missing field {field!r}")
        start_us = int(payload["start_us"])
        duration_us = int(payload["duration_us"])
        if duration_us < 0:
            raise TraceError(
                f"span {payload['name']!r} has negative duration_us")
        span = cls(payload["name"], dict(payload["attributes"]),
                   start_s=start_us / 1e6)
        span.end_s = (start_us + duration_us) / 1e6
        status = payload["status"]
        if status not in _STATUSES:
            raise TraceError(
                f"span {payload['name']!r} has illegal status {status!r}")
        span.status = status
        span.error = payload.get("error")
        span.children = [cls.from_dict(child)
                         for child in payload["children"]]
        return span

    # -------------------------------------------------------------- #
    def render(self, indent: int = 0) -> str:
        """Compiler-style text tree (durations in ms, errors inline)."""
        marker = "✗" if self.status == "error" else "•"
        line = (f"{'  ' * indent}{marker} {self.name}  "
                f"[{self.duration_s * 1e3:.3f} ms]")
        if self.attributes:
            parts = ", ".join(f"{key}={_json_safe(value)}"
                              for key, value in sorted(self.attributes.items()))
            line += f"  {{{parts}}}"
        if self.error:
            line += f"  !! {self.error}"
        return "\n".join([line] + [child.render(indent + 1)
                                   for child in self.children])

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"Span({self.name!r}, status={self.status!r}, "
                f"children={len(self.children)})")


class Trace:
    """One request's span tree plus its delivery state.

    Created by :meth:`TraceCollector.begin`; closed exactly once via
    :meth:`complete` (idempotent), which finishes the root and delivers
    the trace to its collector.
    """

    __slots__ = ("trace_id", "root", "_collector", "_lock", "_delivered")

    def __init__(self, trace_id: str, root: Span,
                 collector: Optional["TraceCollector"] = None) -> None:
        self.trace_id = trace_id
        self.root = root
        self._collector = collector
        self._lock = threading.Lock()
        self._delivered = False

    def complete(self, error: Optional[BaseException] = None) -> None:
        """Finish the root span and deliver the trace (first call wins)."""
        with self._lock:
            if self._delivered:
                return
            self._delivered = True
        self.root.finish(error)
        if self._collector is not None:
            self._collector._deliver(self)

    @property
    def completed(self) -> bool:
        return self._delivered

    def validate(self) -> None:
        self.root.validate()

    # -------------------------------------------------------------- #
    def to_dict(self) -> dict:
        return {
            "schema_version": TRACE_SCHEMA_VERSION,
            "trace_id": self.trace_id,
            "root": self.root.to_dict(origin=self.root.start_s),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Trace":
        if not isinstance(payload, dict):
            raise TraceError("trace payload must be a dict")
        version = payload.get("schema_version")
        if version != TRACE_SCHEMA_VERSION:
            raise TraceError(
                f"unsupported trace schema_version {version!r} (this build "
                f"reads version {TRACE_SCHEMA_VERSION})")
        if "trace_id" not in payload or "root" not in payload:
            raise TraceError("trace payload needs trace_id and root fields")
        trace = cls(str(payload["trace_id"]),
                    Span.from_dict(payload["root"]))
        trace._delivered = True
        return trace

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise TraceError(f"trace JSON does not parse: {error}") from error
        return cls.from_dict(payload)

    def render(self) -> str:
        """Text tree with a trace header (the ``analysis.Report`` idiom)."""
        return f"trace {self.trace_id}\n{self.root.render(indent=1)}"


class TraceCollector:
    """Bounded ring buffer of completed traces plus begin/complete counts.

    Thread-safe; keeps the most recent *capacity* traces (older completions
    are counted in ``dropped``), so tracing a long-lived server cannot grow
    memory without bound.
    """

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._traces: "deque[Trace]" = deque()
        self._sequence = 0
        self._began = 0
        self._completed = 0
        self._dropped = 0

    def begin(self, name: str, **attributes) -> Trace:
        """Start a new trace rooted in a span named *name*."""
        with self._lock:
            self._sequence += 1
            self._began += 1
            trace_id = f"t{self._sequence:06d}"
        return Trace(trace_id, Span(name, attributes), collector=self)

    def _deliver(self, trace: Trace) -> None:
        with self._lock:
            self._completed += 1
            self._traces.append(trace)
            while len(self._traces) > self.capacity:
                self._traces.popleft()
                self._dropped += 1

    # -------------------------------------------------------------- #
    @property
    def began(self) -> int:
        with self._lock:
            return self._began

    @property
    def completed(self) -> int:
        with self._lock:
            return self._completed

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    def traces(self) -> List[Trace]:
        """The retained completed traces, oldest first."""
        with self._lock:
            return list(self._traces)

    def drain(self) -> List[Trace]:
        """Return and forget the retained traces."""
        with self._lock:
            traces = list(self._traces)
            self._traces.clear()
            return traces

    def stats(self) -> dict:
        with self._lock:
            return {"began": self._began, "completed": self._completed,
                    "dropped": self._dropped, "retained": len(self._traces),
                    "capacity": self.capacity}


# ------------------------------------------------------------------ #
# global activation (fault_point-style) + the ambient current span
# ------------------------------------------------------------------ #
#: the active collector; ``None`` (the default) makes span() a no-op.
_COLLECTOR: Optional[TraceCollector] = None
_ACTIVATION_LOCK = threading.Lock()

_CURRENT: "ContextVar[Optional[Span]]" = ContextVar("repro_obs_span",
                                                    default=None)


def tracing_active() -> bool:
    return _COLLECTOR is not None


def active_collector() -> Optional[TraceCollector]:
    return _COLLECTOR


def current_span() -> Optional[Span]:
    """The span the calling context is executing under (``None`` outside
    any traced operation)."""
    return _CURRENT.get()


@contextmanager
def trace_requests(capacity: int = 512,
                   collector: Optional[TraceCollector] = None
                   ) -> Iterator[TraceCollector]:
    """Activate request tracing for the duration of the ``with`` block.

    Yields the :class:`TraceCollector` receiving completed traces.  Scopes
    do not nest (the :func:`~repro.reliability.faults.inject_faults` rule):
    a tracing experiment must be explicit about which collector is live.
    """
    global _COLLECTOR
    collector = collector if collector is not None \
        else TraceCollector(capacity)
    with _ACTIVATION_LOCK:
        if _COLLECTOR is not None:
            raise RuntimeError(
                "a TraceCollector is already active; tracing scopes do "
                "not nest")
        _COLLECTOR = collector
    try:
        yield collector
    finally:
        with _ACTIVATION_LOCK:
            _COLLECTOR = None


class _NullSpanContext:
    """Shared no-op context manager — the disabled-tracing fast path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpanContext()


class _SpanContext:
    """Context manager entering a child of the current span.

    With no current span (tracing active, but the operation is not inside
    a request — e.g. an artifact save on the main thread) the span roots
    its own single-operation trace so store reads/writes are observable
    outside serving too.
    """

    __slots__ = ("_name", "_attributes", "_collector", "_span", "_trace",
                 "_token")

    def __init__(self, name: str, attributes: dict,
                 collector: TraceCollector) -> None:
        self._name = name
        self._attributes = attributes
        self._collector = collector
        self._span: Optional[Span] = None
        self._trace: Optional[Trace] = None
        self._token = None

    def __enter__(self) -> Span:
        parent = _CURRENT.get()
        if parent is None:
            self._trace = self._collector.begin(self._name,
                                                **self._attributes)
            self._span = self._trace.root
        else:
            self._span = parent.child(self._name, self._attributes)
        self._token = _CURRENT.set(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        _CURRENT.reset(self._token)
        if self._trace is not None:
            self._trace.complete(exc)
        else:
            self._span.finish(exc)
        return False


def span(name: str, **attributes):
    """Instrument one operation: ``with span("store.read", path=p): ...``.

    With no active collector this returns a shared no-op context manager —
    one global read, cheap enough for any hot path (the obs-overhead
    benchmark guards it).  Otherwise the operation becomes a child of the
    calling context's current span, or the root of a fresh mini-trace.
    """
    collector = _COLLECTOR
    if collector is None:
        return _NULL_SPAN
    return _SpanContext(name, attributes, collector)


@contextmanager
def activate_span(target: Optional[Span]) -> Iterator[Optional[Span]]:
    """Make *target* the calling context's current span for the block.

    The serving worker pool uses this to re-root tracing when it executes
    a request that was submitted (and whose trace was begun) on another
    thread; ``None`` is accepted and is a no-op, so call sites need no
    tracing-enabled conditionals.
    """
    if target is None:
        yield None
        return
    token = _CURRENT.set(target)
    try:
        yield target
    finally:
        _CURRENT.reset(token)


# ------------------------------------------------------------------ #
# request-trace helpers (the serve runtime's entry points)
# ------------------------------------------------------------------ #
def begin_trace(name: str, **attributes) -> Optional[Trace]:
    """Begin a request trace when tracing is active (else ``None``).

    One global read on the disabled path; the serving runtime threads the
    returned handle through the queue so whichever thread resolves the
    request can :func:`complete_trace` it.
    """
    collector = _COLLECTOR
    if collector is None:
        return None
    return collector.begin(name, **attributes)


def complete_trace(trace: Optional[Trace],
                   error: Optional[BaseException] = None) -> None:
    """Complete *trace* (no-op on ``None``; idempotent otherwise)."""
    if trace is not None:
        trace.complete(error)
