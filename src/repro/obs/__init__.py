"""repro.obs — metrics, per-request tracing and profiling for the stack.

The observability substrate the serving/store/engine layers record into
(see OBSERVABILITY.md):

* :mod:`repro.obs.metrics` — a string-keyed :class:`MetricsRegistry` of
  counters, gauges and streaming-quantile histograms; the
  :class:`~repro.serve.Server`'s ``stats()`` / ``healthz()`` are thin
  views over its per-instance registry,
* :mod:`repro.obs.tracing` — contextvar-backed :class:`Span` trees, one
  per request, with stable-schema JSON export and a text renderer;
  activate with :func:`trace_requests`,
* :mod:`repro.obs.profile` — per-stage wall-time / working-set hooks the
  :class:`~repro.api.pipeline.Pipeline` runs through,
* :mod:`repro.obs.snapshot` — the unified, versioned JSON document
  (``python -m repro.obs snapshot``) over stats, health, latency
  percentiles and all four LRU caches.

Everything is off (and near-free) by default: recording activates inside
:func:`metrics_scope` / :func:`trace_requests` blocks, mirroring
:func:`~repro.reliability.faults.fault_point`'s no-injector fast path.
"""

from .metrics import (
    CacheStats,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    QuantileSketch,
    active_metrics,
    add_count,
    metric_kind_registry,
    metrics_scope,
    observe,
    register_metric_kind,
    set_gauge,
)
from .tracing import (
    Span,
    Trace,
    TraceCollector,
    TraceError,
    TRACE_SCHEMA_VERSION,
    activate_span,
    active_collector,
    begin_trace,
    complete_trace,
    current_span,
    span,
    trace_requests,
    tracing_active,
)
from .profile import stage_scope, working_set_bytes
from .snapshot import (
    SNAPSHOT_SCHEMA_VERSION,
    SnapshotError,
    collect_cache_stats,
    snapshot,
    snapshot_json,
    validate_snapshot,
)

__all__ = [
    "CacheStats",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QuantileSketch",
    "SNAPSHOT_SCHEMA_VERSION",
    "SnapshotError",
    "Span",
    "Trace",
    "TraceCollector",
    "TraceError",
    "TRACE_SCHEMA_VERSION",
    "activate_span",
    "active_collector",
    "active_metrics",
    "add_count",
    "begin_trace",
    "collect_cache_stats",
    "complete_trace",
    "current_span",
    "metric_kind_registry",
    "metrics_scope",
    "observe",
    "register_metric_kind",
    "set_gauge",
    "snapshot",
    "snapshot_json",
    "span",
    "stage_scope",
    "trace_requests",
    "tracing_active",
    "validate_snapshot",
    "working_set_bytes",
]
