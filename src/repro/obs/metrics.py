"""String-keyed metrics: counters, gauges and streaming-quantile histograms.

Three instrument kinds live in a string-keyed registry (the same
:class:`~repro.api.registries.Registry` mechanism as ``register_conv`` /
``register_checker`` / ``register_fault``; extend with
:func:`register_metric_kind`):

* :class:`Counter` — a monotonic count (``serve.failures``),
* :class:`Gauge` — a last-value (or running-max) sample (``serve.peak_depth``),
* :class:`Histogram` — count/sum/min/max plus a :class:`QuantileSketch`
  yielding streaming p50/p95/p99 with bounded *relative* error
  (``serve.request_latency_s``).

A :class:`MetricsRegistry` maps metric names to instruments with
get-or-create semantics; every instrument is individually lock-protected,
so serving workers and client threads record into one registry without
external serialization.  The :class:`~repro.serve.Server` owns one
registry per instance — its ``stats()`` / ``healthz()`` surfaces are thin
views over it (see SERVING.md) — and :func:`repro.obs.snapshot` folds
registries into the unified JSON document.

**Ambient recording** mirrors :func:`~repro.reliability.faults.fault_point`'s
no-injector fast path: module-level helpers (:func:`observe`,
:func:`add_count`, :func:`set_gauge`) consult one global — ``None`` (the
default) makes them a single global read and a return, cheap enough for
any hot path.  :func:`metrics_scope` installs a registry as that sink for
a ``with`` block; scopes do not nest.
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from typing import Dict, Iterator, NamedTuple, Optional

from ..api.registries import Registry

__all__ = [
    "CacheStats",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QuantileSketch",
    "active_metrics",
    "add_count",
    "metric_kind_registry",
    "metrics_scope",
    "observe",
    "register_metric_kind",
    "set_gauge",
    "set_gauge_max",
]


# ------------------------------------------------------------------ #
# streaming quantiles
# ------------------------------------------------------------------ #
class QuantileSketch:
    """Geometric-bucket quantile sketch with bounded relative error.

    Values land in buckets ``gamma**i`` (DDSketch-style, ``gamma`` derived
    from *relative_accuracy*), so :meth:`quantile` answers are within
    ``relative_accuracy`` of the exact order statistic while storing only a
    dict of bucket counts — constant memory per distinct magnitude, no
    sample retention.  Observations must be non-negative (latencies,
    sizes); values below 1e-12 share one zero bucket.

    Not thread-safe on its own: :class:`Histogram` wraps it in a lock.
    """

    __slots__ = ("relative_accuracy", "_gamma", "_log_gamma", "_buckets",
                 "_zero", "count", "sum", "min", "max")

    #: values below this are indistinguishable from zero for the sketch
    _MIN_INDEXABLE = 1e-12

    def __init__(self, relative_accuracy: float = 0.01) -> None:
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError("relative_accuracy must be in (0, 1)")
        self.relative_accuracy = float(relative_accuracy)
        self._gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy)
        self._log_gamma = math.log(self._gamma)
        self._buckets: Dict[int, int] = {}
        self._zero = 0
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        if not value >= 0.0:        # catches negatives and NaN in one test
            raise ValueError(
                f"QuantileSketch observes non-negative finite values, "
                f"got {value!r}")
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value < self._MIN_INDEXABLE:
            self._zero += 1
            return
        index = math.ceil(math.log(value) / self._log_gamma)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    def quantile(self, q: float) -> float:
        """The streaming *q*-quantile (``nan`` with no observations)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self.count:
            return math.nan
        # ceil-rank (numpy's method="higher"): p95 of three samples is the
        # third, not the second — sane small-sample answers, same DDSketch
        # relative-error bound at scale
        target = math.ceil(q * (self.count - 1))
        cumulative = self._zero
        if cumulative > target:
            return 0.0
        for index in sorted(self._buckets):
            cumulative += self._buckets[index]
            if cumulative > target:
                # the bucket's midpoint estimate; clamp into the observed
                # range so tiny-sample answers never leave [min, max]
                value = 2.0 * self._gamma ** index / (self._gamma + 1.0)
                return min(max(value, self.min), self.max)
        return self.max

    def to_dict(self) -> dict:
        empty = not self.count
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.sum / self.count if self.count else None,
            "min": None if empty else self.min,
            "max": None if empty else self.max,
            "p50": None if empty else self.quantile(0.50),
            "p95": None if empty else self.quantile(0.95),
            "p99": None if empty else self.quantile(0.99),
        }


# ------------------------------------------------------------------ #
# instruments (string-keyed kind registry, extension point)
# ------------------------------------------------------------------ #
#: instrument kinds keyed by name; a kind is a zero/kwarg-arg factory
#: returning an object with ``value()``/``to_dict()``-style accessors.
metric_kind_registry = Registry("metric kind")
register_metric_kind = metric_kind_registry.register


@register_metric_kind("counter")
class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only count up; use a Gauge instead")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def to_dict(self) -> int:
        return self.value


@register_metric_kind("gauge")
class Gauge:
    """A last-value sample (with an explicit running-max mode)."""

    kind = "gauge"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += float(delta)

    def set_max(self, value: float) -> None:
        """Keep the largest value ever seen (peak-depth style gauges)."""
        value = float(value)
        with self._lock:
            if value > self._value:
                self._value = value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def to_dict(self) -> float:
        return self.value


@register_metric_kind("histogram")
class Histogram:
    """A lock-protected :class:`QuantileSketch` with distribution accessors."""

    kind = "histogram"

    def __init__(self, relative_accuracy: float = 0.01) -> None:
        self._lock = threading.Lock()
        self._sketch = QuantileSketch(relative_accuracy)

    def observe(self, value: float) -> None:
        with self._lock:
            self._sketch.observe(value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._sketch.count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sketch.sum

    def quantile(self, q: float) -> float:
        with self._lock:
            return self._sketch.quantile(q)

    def percentiles(self, *qs: float) -> tuple:
        """Several quantiles from one coherent snapshot of the sketch."""
        with self._lock:
            return tuple(self._sketch.quantile(q) for q in qs)

    def to_dict(self) -> dict:
        with self._lock:
            return self._sketch.to_dict()


# ------------------------------------------------------------------ #
# the registry
# ------------------------------------------------------------------ #
class MetricsRegistry:
    """Thread-safe mapping of metric names to instruments.

    ``counter(name)`` / ``gauge(name)`` / ``histogram(name)`` get-or-create;
    asking for an existing name under a different kind raises, so one
    namespace cannot silently hold two shapes of the same metric.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, object] = {}

    def instrument(self, name: str, kind: str, **kwargs):
        """Get-or-create the instrument *name* of registered *kind*."""
        if not name:
            raise ValueError("metric names must be non-empty strings")
        factory = metric_kind_registry.get(kind)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                have = getattr(existing, "kind", type(existing).__name__)
                if have != kind:
                    raise ValueError(
                        f"metric {name!r} already registered as {have!r}; "
                        f"cannot re-register as {kind!r}")
                return existing
            created = self._metrics[name] = factory(**kwargs)
            return created

    def counter(self, name: str) -> Counter:
        return self.instrument(name, "counter")

    def gauge(self, name: str) -> Gauge:
        return self.instrument(name, "gauge")

    def histogram(self, name: str,
                  relative_accuracy: float = 0.01) -> Histogram:
        return self.instrument(name, "histogram",
                               relative_accuracy=relative_accuracy)

    def get(self, name: str):
        """The instrument registered under *name* (``None`` when absent)."""
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list:
        with self._lock:
            return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics

    def to_dict(self) -> dict:
        """``{"counters": ..., "gauges": ..., "histograms": ...}`` dump.

        Instruments of registered custom kinds land under ``"other"`` with
        whatever their ``to_dict`` returns.
        """
        with self._lock:
            items = sorted(self._metrics.items())
        dump: dict = {"counters": {}, "gauges": {}, "histograms": {},
                      "other": {}}
        section = {"counter": "counters", "gauge": "gauges",
                   "histogram": "histograms"}
        for name, metric in items:
            kind = getattr(metric, "kind", None)
            dump[section.get(kind, "other")][name] = metric.to_dict()
        return dump


# ------------------------------------------------------------------ #
# ambient recording (fault_point-style fast path)
# ------------------------------------------------------------------ #
#: the ambient sink; ``None`` (the default) makes the helpers no-ops.
_ACTIVE: Optional[MetricsRegistry] = None
_ACTIVATION_LOCK = threading.Lock()


def active_metrics() -> Optional[MetricsRegistry]:
    """The ambient :class:`MetricsRegistry` (``None`` outside a scope)."""
    return _ACTIVE


def observe(name: str, value: float) -> None:
    """Record *value* into the ambient histogram *name* (no-op when no
    scope is active — one global read, mirroring ``fault_point``)."""
    registry = _ACTIVE
    if registry is None:
        return
    registry.histogram(name).observe(value)


def add_count(name: str, n: int = 1) -> None:
    """Increment the ambient counter *name* (no-op without a scope)."""
    registry = _ACTIVE
    if registry is None:
        return
    registry.counter(name).inc(n)


def set_gauge(name: str, value: float) -> None:
    """Set the ambient gauge *name* (no-op without a scope)."""
    registry = _ACTIVE
    if registry is None:
        return
    registry.gauge(name).set(value)


def set_gauge_max(name: str, value: float) -> None:
    """Raise the ambient gauge *name* to *value* (no-op without a scope)."""
    registry = _ACTIVE
    if registry is None:
        return
    registry.gauge(name).set_max(value)


@contextmanager
def metrics_scope(
        registry: Optional[MetricsRegistry] = None
) -> Iterator[MetricsRegistry]:
    """Install *registry* (default: a fresh one) as the ambient sink.

    Yields the registry so callers can read it back.  Scopes do not nest —
    like :func:`~repro.reliability.faults.inject_faults`, observability
    experiments must be explicit about which sink is live.
    """
    global _ACTIVE
    registry = registry if registry is not None else MetricsRegistry()
    with _ACTIVATION_LOCK:
        if _ACTIVE is not None:
            raise RuntimeError(
                "a MetricsRegistry is already active; metrics scopes do "
                "not nest")
        _ACTIVE = registry
    try:
        yield registry
    finally:
        with _ACTIVATION_LOCK:
            _ACTIVE = None


# ------------------------------------------------------------------ #
# cache statistics (the one interface over all four LRUs)
# ------------------------------------------------------------------ #
class CacheStats(NamedTuple):
    """Uniform hit/miss/eviction statistics of one named LRU cache.

    The :func:`repro.obs.snapshot` document reports every process cache —
    edge-layout, packed-layout, scatter-matrix and the session's
    graph-construction cache — through this one shape.
    """

    name: str
    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before any traffic)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "capacity": self.capacity,
            "hit_rate": self.hit_rate,
        }
