"""The unified observability document: one versioned JSON snapshot.

:func:`snapshot` folds every introspection surface the stack grew —
``Server.stats()``, ``healthz()``, the retry budget, circuit breakers,
request-latency percentiles and the hit/miss/eviction statistics of all
four LRU caches — into a single schema-versioned JSON-safe dict: the
document a future ``/stats`` endpoint serves and a fleet dispatcher
routes on.  :func:`validate_snapshot` enforces the schema (the CI
``obs-smoke`` job round-trips it through ``json``), and
``python -m repro.obs snapshot`` emits it from a demo serving workload.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional

from .metrics import CacheStats, MetricsRegistry, active_metrics
from .tracing import active_collector

__all__ = [
    "SNAPSHOT_SCHEMA_VERSION",
    "SnapshotError",
    "collect_cache_stats",
    "snapshot",
    "snapshot_json",
    "validate_snapshot",
]

#: schema of :func:`snapshot` — bump on any breaking shape change.
SNAPSHOT_SCHEMA_VERSION = 1

#: the six integer fields every cache entry must carry (plus hit_rate).
_CACHE_FIELDS = ("hits", "misses", "evictions", "size", "capacity")


class SnapshotError(ValueError):
    """A snapshot document violated the schema."""


def collect_cache_stats(session=None) -> List[CacheStats]:
    """Every process-wide LRU (plus *session*'s graph cache when given)
    through the one :class:`~repro.obs.metrics.CacheStats` interface."""
    # imported lazily: the obs package must stay importable without
    # dragging in the whole gnn/nn stack at module-import time
    from ..gnn.edge_layout import edge_layout_cache_info
    from ..gnn.packing import packed_layout_cache_info
    from ..nn.tensor import scatter_matrix_cache_info

    stats = [
        _cache_stats("edge-layout", edge_layout_cache_info()),
        _cache_stats("packed-layout", packed_layout_cache_info()),
        _cache_stats("scatter-matrix", scatter_matrix_cache_info()),
    ]
    if session is not None:
        stats.append(_cache_stats("session-graphs", session.cache_info()))
    return stats


def _cache_stats(name: str, info) -> CacheStats:
    """Adapt a cache's ``CacheInfo`` (field names, not positions — the
    engine and session caches order their tuples differently) to the
    uniform :class:`CacheStats` shape."""
    return CacheStats(name, hits=info.hits, misses=info.misses,
                      evictions=getattr(info, "evictions", 0),
                      size=info.size, capacity=info.capacity)


def _latency_section(registry: MetricsRegistry) -> Optional[dict]:
    histogram = registry.get("serve.request_latency_s")
    if histogram is None or not histogram.count:
        return None
    p50, p95, p99 = histogram.percentiles(0.50, 0.95, 0.99)
    return {
        "count": histogram.count,
        "p50_ms": p50 * 1e3,
        "p95_ms": p95 * 1e3,
        "p99_ms": p99 * 1e3,
    }


def _server_section(server) -> dict:
    stats = server.stats()._asdict()
    return {
        "config": dataclasses.asdict(server.config),
        "stats": stats,
        "health": server.healthz(),
        "latency": _latency_section(server.metrics),
        "metrics": server.metrics.to_dict(),
    }


def _faults_section() -> dict:
    from ..reliability.faults import active_injector

    injector = active_injector()
    if injector is None:
        return {"active": False}
    return {
        "active": True,
        "seed": injector.plan.seed,
        "fired": {f"{site}:{kind}": count
                  for (site, kind), count in
                  sorted(injector.fire_counts().items())},
    }


def snapshot(server=None, session=None,
             registry: Optional[MetricsRegistry] = None) -> dict:
    """One versioned JSON-safe document over the whole observable surface.

    *server* contributes its config, ``stats()``, ``healthz()``, latency
    percentiles and per-server metrics registry; *session* (defaulting to
    ``server.session``) contributes its graph-construction cache;
    *registry* (defaulting to the ambient :func:`metrics_scope` sink, if
    any) contributes process-level metrics.  Everything is readable with
    neither: the cache sections and tracing/fault state never require a
    live server.
    """
    if session is None and server is not None:
        session = server.session
    if registry is None:
        registry = active_metrics()
    collector = active_collector()

    caches: Dict[str, dict] = {}
    for stats in collect_cache_stats(session):
        caches[stats.name] = stats.to_dict()

    document = {
        "schema_version": SNAPSHOT_SCHEMA_VERSION,
        "generator": "repro.obs",
        "caches": caches,
        "process": {
            "metrics": registry.to_dict() if registry is not None else None,
            "tracing": ({"active": True, **collector.stats()}
                        if collector is not None else {"active": False}),
            "faults": _faults_section(),
        },
        "server": _server_section(server) if server is not None else None,
    }
    return document


def snapshot_json(server=None, session=None,
                  registry: Optional[MetricsRegistry] = None,
                  indent: Optional[int] = 2) -> str:
    """:func:`snapshot` serialized (and therefore schema-validated)."""
    document = snapshot(server=server, session=session, registry=registry)
    validate_snapshot(document)
    return json.dumps(document, indent=indent, sort_keys=True)


# ------------------------------------------------------------------ #
# validation
# ------------------------------------------------------------------ #
def _fail(message: str) -> None:
    raise SnapshotError(f"snapshot schema violation: {message}")


def validate_snapshot(document) -> None:
    """Raise :class:`SnapshotError` unless *document* is a well-formed,
    JSON-serializable schema-v1 snapshot."""
    if not isinstance(document, dict):
        _fail(f"document must be a dict, got {type(document).__name__}")
    if document.get("schema_version") != SNAPSHOT_SCHEMA_VERSION:
        _fail(f"schema_version must be {SNAPSHOT_SCHEMA_VERSION}, got "
              f"{document.get('schema_version')!r}")
    for field in ("generator", "caches", "process", "server"):
        if field not in document:
            _fail(f"missing top-level field {field!r}")
    caches = document["caches"]
    if not isinstance(caches, dict) or not caches:
        _fail("caches must be a non-empty dict")
    for name, entry in caches.items():
        for field in _CACHE_FIELDS:
            value = entry.get(field)
            if not isinstance(value, int) or value < 0:
                _fail(f"caches[{name!r}].{field} must be a non-negative "
                      f"int, got {value!r}")
        rate = entry.get("hit_rate")
        if not isinstance(rate, (int, float)) or not 0.0 <= rate <= 1.0:
            _fail(f"caches[{name!r}].hit_rate must be in [0, 1], got "
                  f"{rate!r}")
    process = document["process"]
    if not isinstance(process, dict):
        _fail("process must be a dict")
    for field in ("metrics", "tracing", "faults"):
        if field not in process:
            _fail(f"missing process field {field!r}")
    server = document["server"]
    if server is not None:
        if not isinstance(server, dict):
            _fail("server must be a dict or null")
        for field in ("config", "stats", "health", "latency", "metrics"):
            if field not in server:
                _fail(f"missing server field {field!r}")
        for field in ("queue_depth", "shed", "retries", "failures",
                      "breaker_rejections"):
            if field not in server["stats"]:
                _fail(f"missing server.stats field {field!r}")
        if server["health"].get("status") not in ("ok", "degraded", "closed"):
            _fail(f"server.health.status must be ok/degraded/closed, got "
                  f"{server['health'].get('status')!r}")
        latency = server["latency"]
        if latency is not None:
            quantiles = [latency.get("p50_ms"), latency.get("p95_ms"),
                         latency.get("p99_ms")]
            if any(not isinstance(q, (int, float)) for q in quantiles):
                _fail("server.latency percentiles must be numbers")
            if not quantiles[0] <= quantiles[1] <= quantiles[2]:
                _fail(f"latency percentiles are not ordered: {quantiles}")
    try:
        encoded = json.dumps(document, sort_keys=True)
    except (TypeError, ValueError) as error:
        _fail(f"document is not JSON-serializable: {error}")
    if json.loads(encoded) != document:
        _fail("document does not survive a JSON round trip")
