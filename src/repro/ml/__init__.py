"""``repro.ml`` — training infrastructure for the ParaGraph experiments.

Datasets of encoded graphs, train/validation splitting (9:1 as in the paper),
MinMax / log scaling, the MSE + Adam training loop with per-epoch history,
and the RMSE / normalized-RMSE / relative-error metrics from the evaluation.
"""

from .dataset import GraphDataset
from .metrics import (
    binned_relative_error,
    mae,
    mean_relative_error,
    normalized_rmse,
    pearson_correlation,
    per_group_relative_error,
    r2_score,
    regression_report,
    relative_error,
    rmse,
    runtime_range,
)
from .scaler import LogMinMaxScaler, MinMaxScaler, StandardScaler
from .split import group_split, k_fold_indices, train_val_split
from .trainer import EpochRecord, History, Trainer, TrainingConfig

__all__ = [
    "EpochRecord",
    "GraphDataset",
    "History",
    "LogMinMaxScaler",
    "MinMaxScaler",
    "StandardScaler",
    "Trainer",
    "TrainingConfig",
    "binned_relative_error",
    "group_split",
    "k_fold_indices",
    "mae",
    "mean_relative_error",
    "normalized_rmse",
    "pearson_correlation",
    "per_group_relative_error",
    "r2_score",
    "regression_report",
    "relative_error",
    "rmse",
    "runtime_range",
    "train_val_split",
]
