"""Evaluation metrics used in the paper's result tables and figures.

* :func:`rmse` — Root Mean Square Error (Eq. 3),
* :func:`normalized_rmse` — RMSE divided by the runtime range (Table III),
* :func:`relative_error` — absolute error divided by the runtime range,
* :func:`binned_relative_error` — mean relative error per 10-second runtime
  bin (Fig. 4),
* :func:`per_group_relative_error` — mean relative error per application
  (Fig. 6),
* :func:`pearson_correlation` — predicted-vs-actual correlation (Fig. 9).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np


def _validate(actual: np.ndarray, predicted: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    actual = np.asarray(actual, dtype=np.float64).reshape(-1)
    predicted = np.asarray(predicted, dtype=np.float64).reshape(-1)
    if actual.shape != predicted.shape:
        raise ValueError(f"shape mismatch: {actual.shape} vs {predicted.shape}")
    if actual.size == 0:
        raise ValueError("metrics require at least one sample")
    return actual, predicted


def rmse(actual: Sequence[float], predicted: Sequence[float]) -> float:
    """Root Mean Square Error (same units as the runtimes)."""
    actual, predicted = _validate(np.asarray(actual), np.asarray(predicted))
    return float(np.sqrt(np.mean((actual - predicted) ** 2)))


def mae(actual: Sequence[float], predicted: Sequence[float]) -> float:
    """Mean absolute error."""
    actual, predicted = _validate(np.asarray(actual), np.asarray(predicted))
    return float(np.mean(np.abs(actual - predicted)))


def runtime_range(actual: Sequence[float]) -> float:
    """Distance between the minimum and maximum runtime (the normalizer)."""
    actual = np.asarray(actual, dtype=np.float64)
    span = float(actual.max() - actual.min())
    return span if span > 0 else 1.0


def normalized_rmse(actual: Sequence[float], predicted: Sequence[float],
                    value_range: Optional[float] = None) -> float:
    """RMSE divided by the runtime range (Table III's Norm-RMSE column)."""
    actual_arr = np.asarray(actual, dtype=np.float64)
    span = value_range if value_range is not None else runtime_range(actual_arr)
    return rmse(actual, predicted) / span


def relative_error(actual: Sequence[float], predicted: Sequence[float],
                   value_range: Optional[float] = None) -> np.ndarray:
    """Per-sample absolute error divided by the runtime range."""
    actual_arr, predicted_arr = _validate(np.asarray(actual), np.asarray(predicted))
    span = value_range if value_range is not None else runtime_range(actual_arr)
    return np.abs(actual_arr - predicted_arr) / span


def mean_relative_error(actual: Sequence[float], predicted: Sequence[float],
                        value_range: Optional[float] = None) -> float:
    """Mean of :func:`relative_error`."""
    return float(relative_error(actual, predicted, value_range).mean())


def binned_relative_error(
    actual_us: Sequence[float],
    predicted_us: Sequence[float],
    bin_width_seconds: float = 10.0,
    num_bins: int = 11,
    value_range: Optional[float] = None,
) -> Dict[str, float]:
    """Mean relative error per runtime bin (Fig. 4).

    Runtimes are given in microseconds (the dataset's unit); bins are
    ``[0, 10s), [10s, 20s) … [100s, inf)`` by default, labelled like the
    figure's x-axis ("0-10", "10-20", …, "100 <").  Empty bins are omitted.
    """
    actual, predicted = _validate(np.asarray(actual_us), np.asarray(predicted_us))
    errors = relative_error(actual, predicted, value_range)
    seconds = actual / 1e6
    results: Dict[str, float] = {}
    for bin_id in range(num_bins):
        low = bin_id * bin_width_seconds
        if bin_id == num_bins - 1:
            mask = seconds >= low
            label = f"{int(low)} <"
        else:
            high = low + bin_width_seconds
            mask = (seconds >= low) & (seconds < high)
            label = f"{int(low)}-{int(high)}"
        if mask.any():
            results[label] = float(errors[mask].mean())
    return results


def per_group_relative_error(
    actual: Sequence[float],
    predicted: Sequence[float],
    groups: Sequence[str],
    value_range: Optional[float] = None,
) -> Dict[str, float]:
    """Mean relative error per group label, e.g. per application (Fig. 6)."""
    actual_arr, predicted_arr = _validate(np.asarray(actual), np.asarray(predicted))
    groups = list(groups)
    if len(groups) != actual_arr.size:
        raise ValueError("groups must have one entry per sample")
    errors = relative_error(actual_arr, predicted_arr, value_range)
    results: Dict[str, List[float]] = {}
    for group, error in zip(groups, errors):
        results.setdefault(group, []).append(float(error))
    return {group: float(np.mean(values)) for group, values in sorted(results.items())}


def pearson_correlation(actual: Sequence[float], predicted: Sequence[float]) -> float:
    """Pearson correlation coefficient between predictions and ground truth."""
    actual, predicted = _validate(np.asarray(actual), np.asarray(predicted))
    if actual.std() == 0 or predicted.std() == 0:
        return 0.0
    return float(np.corrcoef(actual, predicted)[0, 1])


def r2_score(actual: Sequence[float], predicted: Sequence[float]) -> float:
    """Coefficient of determination."""
    actual, predicted = _validate(np.asarray(actual), np.asarray(predicted))
    ss_res = float(np.sum((actual - predicted) ** 2))
    ss_tot = float(np.sum((actual - actual.mean()) ** 2))
    if ss_tot == 0:
        return 0.0
    return 1.0 - ss_res / ss_tot


def regression_report(actual: Sequence[float], predicted: Sequence[float]) -> Dict[str, float]:
    """Bundle of all scalar metrics, keyed by name."""
    return {
        "rmse": rmse(actual, predicted),
        "normalized_rmse": normalized_rmse(actual, predicted),
        "mae": mae(actual, predicted),
        "mean_relative_error": mean_relative_error(actual, predicted),
        "pearson": pearson_correlation(actual, predicted),
        "r2": r2_score(actual, predicted),
    }
