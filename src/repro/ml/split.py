"""Dataset splitting utilities (the paper uses a 9:1 train/validation split)."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .dataset import GraphDataset


def train_val_split(
    dataset: GraphDataset,
    train_fraction: float = 0.9,
    seed: Optional[int] = None,
) -> Tuple[GraphDataset, GraphDataset]:
    """Random split into train / validation subsets.

    ``train_fraction=0.9`` reproduces the paper's 9:1 ratio.  The split is
    sample-level (not application-level), as in the paper.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    if len(dataset) < 2:
        raise ValueError("need at least two samples to split")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(dataset))
    cut = int(round(train_fraction * len(dataset)))
    cut = min(max(cut, 1), len(dataset) - 1)
    train_idx, val_idx = order[:cut], order[cut:]
    train = GraphDataset([dataset[i] for i in train_idx], name=f"{dataset.name}/train")
    val = GraphDataset([dataset[i] for i in val_idx], name=f"{dataset.name}/val")
    return train, val


def k_fold_indices(num_samples: int, k: int, seed: Optional[int] = None) -> List[np.ndarray]:
    """Return *k* disjoint index folds covering ``range(num_samples)``."""
    if k < 2:
        raise ValueError("k must be >= 2")
    if num_samples < k:
        raise ValueError("need at least k samples")
    rng = np.random.default_rng(seed)
    order = rng.permutation(num_samples)
    return [fold for fold in np.array_split(order, k)]


def group_split(
    dataset: GraphDataset,
    group_key: str,
    holdout_groups: Sequence[str],
) -> Tuple[GraphDataset, GraphDataset]:
    """Split by metadata group, e.g. hold out whole applications.

    Used by the generalization ablation benches (not in the paper's main
    evaluation, which splits at sample level).
    """
    holdout = set(holdout_groups)
    train = dataset.filter(lambda s: s.metadata.get(group_key) not in holdout)
    val = dataset.filter(lambda s: s.metadata.get(group_key) in holdout)
    return train, val
