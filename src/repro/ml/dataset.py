"""Dataset containers for (ParaGraph, runtime) samples.

A :class:`GraphDataset` holds :class:`~repro.paragraph.encoders.EncodedGraph`
instances whose ``target`` is the measured (or simulated) runtime in
microseconds and whose ``metadata`` records the provenance the evaluation
needs (application, kernel, variant, platform, problem size, teams/threads).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from ..paragraph.encoders import EncodedGraph, GraphBatch, GraphEncoder


class GraphDataset:
    """An in-memory list of encoded graphs with convenience accessors."""

    def __init__(self, samples: Optional[Sequence[EncodedGraph]] = None,
                 name: str = "") -> None:
        self.samples: List[EncodedGraph] = list(samples or [])
        self.name = name

    # ------------------------------------------------------------------ #
    def add(self, sample: EncodedGraph) -> None:
        self.samples.append(sample)

    def __len__(self) -> int:
        return len(self.samples)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return GraphDataset(self.samples[index], name=self.name)
        return self.samples[index]

    def __iter__(self) -> Iterator[EncodedGraph]:
        return iter(self.samples)

    # ------------------------------------------------------------------ #
    def targets(self) -> np.ndarray:
        """Runtime labels (microseconds) as an array."""
        return np.array([sample.target for sample in self.samples], dtype=np.float64)

    def metadata_column(self, key: str, default=None) -> List:
        """Extract one metadata field from every sample."""
        return [sample.metadata.get(key, default) for sample in self.samples]

    def filter(self, predicate) -> "GraphDataset":
        """New dataset with the samples for which *predicate* is true."""
        return GraphDataset([s for s in self.samples if predicate(s)], name=self.name)

    def runtime_range(self) -> float:
        """max - min of the runtime labels (the Norm-RMSE denominator)."""
        targets = self.targets()
        if targets.size == 0:
            return 1.0
        span = float(targets.max() - targets.min())
        return span if span > 0 else 1.0

    def statistics(self) -> Dict[str, float]:
        """Summary statistics matching the columns of the paper's Table II."""
        targets = self.targets()
        if targets.size == 0:
            return {"count": 0, "min": 0.0, "max": 0.0, "std": 0.0, "mean": 0.0}
        return {
            "count": int(targets.size),
            "min": float(targets.min()),
            "max": float(targets.max()),
            "std": float(targets.std()),
            "mean": float(targets.mean()),
        }

    # ------------------------------------------------------------------ #
    def batches(self, batch_size: int, shuffle: bool = False,
                rng: Optional[np.random.Generator] = None) -> Iterator[GraphBatch]:
        """Yield collated mini-batches."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        order = np.arange(len(self.samples))
        if shuffle:
            (rng or np.random.default_rng()).shuffle(order)
        for start in range(0, len(order), batch_size):
            chunk = [self.samples[i] for i in order[start:start + batch_size]]
            if chunk:
                yield GraphEncoder.collate(chunk)

    def full_batch(self) -> GraphBatch:
        """Collate the entire dataset into one batch."""
        return GraphEncoder.collate(self.samples)
