"""Training loop for the ParaGraph model (and other graph regressors).

The trainer reproduces the setup of §IV-B:

* Mean Squared Error loss,
* Adam optimizer,
* 9:1 train/validation split handled by the caller,
* targets and auxiliary features normalized with MinMax-style scalers
  (runtimes additionally pass through ``log1p`` because they span several
  orders of magnitude),
* per-epoch validation metrics recorded in a :class:`History`, which is what
  the training-curve figures (Fig. 5 and Fig. 7) are drawn from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..nn.losses import MSELoss
from ..nn.module import Module
from ..nn.optim import Adam
from ..nn.tensor import Tensor
from ..paragraph.encoders import GraphBatch
from .dataset import GraphDataset
from .metrics import normalized_rmse, rmse
from .scaler import LogMinMaxScaler, MinMaxScaler


@dataclass
class TrainingConfig:
    """Hyper-parameters of a training run."""

    epochs: int = 60
    batch_size: int = 32
    learning_rate: float = 1e-3
    weight_decay: float = 0.0
    seed: Optional[int] = 0
    shuffle: bool = True
    log_every: int = 0          # 0 disables progress printing
    early_stopping_patience: int = 0   # 0 disables early stopping


@dataclass
class EpochRecord:
    """Metrics recorded after one epoch."""

    epoch: int
    train_loss: float
    val_rmse: float
    val_normalized_rmse: float


@dataclass
class History:
    """Sequence of per-epoch records; the source of Figs. 5 and 7."""

    records: List[EpochRecord] = field(default_factory=list)

    def append(self, record: EpochRecord) -> None:
        self.records.append(record)

    @property
    def epochs(self) -> List[int]:
        return [r.epoch for r in self.records]

    @property
    def train_losses(self) -> List[float]:
        return [r.train_loss for r in self.records]

    @property
    def val_rmses(self) -> List[float]:
        return [r.val_rmse for r in self.records]

    @property
    def val_normalized_rmses(self) -> List[float]:
        return [r.val_normalized_rmse for r in self.records]

    @property
    def best_val_rmse(self) -> float:
        return min(self.val_rmses) if self.records else float("inf")

    @property
    def final_val_rmse(self) -> float:
        return self.val_rmses[-1] if self.records else float("inf")

    def __len__(self) -> int:
        return len(self.records)


class Trainer:
    """Fits a graph-regression model on a :class:`GraphDataset`."""

    def __init__(self, model: Module, config: Optional[TrainingConfig] = None) -> None:
        self.model = model
        self.config = config or TrainingConfig()
        self.target_scaler = LogMinMaxScaler()
        self.aux_scaler = MinMaxScaler()
        self._fitted_scalers = False

    # ------------------------------------------------------------------ #
    # scaling helpers
    # ------------------------------------------------------------------ #
    def _fit_scalers(self, dataset: GraphDataset) -> None:
        targets = dataset.targets()
        aux = np.stack([s.aux_features for s in dataset.samples], axis=0)
        self.target_scaler.fit(targets)
        self.aux_scaler.fit(aux)
        self._fitted_scalers = True

    def _scaled_batch(self, batch: GraphBatch) -> GraphBatch:
        """Return a copy of *batch* with scaled aux features and targets."""
        return GraphBatch(
            node_features=batch.node_features,
            edge_index=batch.edge_index,
            edge_type=batch.edge_type,
            edge_weight=batch.edge_weight,
            aux_features=self.aux_scaler.transform(batch.aux_features),
            batch=batch.batch,
            targets=self.target_scaler.transform(batch.targets),
            num_graphs=batch.num_graphs,
        )

    # ------------------------------------------------------------------ #
    def predict(self, dataset: GraphDataset, batch_size: Optional[int] = None,
                dtype=None) -> np.ndarray:
        """Predict runtimes (microseconds) for every sample in *dataset*.

        Inference runs on the no-graph fast path (``repro.nn.no_grad``).
        *dtype* selects the forward-pass precision: ``None`` keeps float64
        (bit-parity with training-time evaluation); ``np.float32`` is the
        serving configuration ``Session.predict_batch`` uses.
        """
        if not self._fitted_scalers:
            raise RuntimeError("Trainer.fit must run before predict")
        if len(dataset) == 0:
            return np.zeros(0)
        from ..obs.tracing import span

        batch_size = batch_size or self.config.batch_size
        outputs: List[np.ndarray] = []
        for batch in dataset.batches(batch_size, shuffle=False):
            scaled = self._scaled_batch(batch)
            with span("engine.forward", num_graphs=scaled.num_graphs,
                      packed=False):
                if dtype is None:
                    # don't forward the kwarg: custom models registered
                    # against the pre-dtype predict() signature must keep
                    # working
                    outputs.append(self.model.predict(scaled))
                else:
                    outputs.append(self.model.predict(scaled, dtype=dtype))
        scaled_predictions = np.concatenate(outputs).astype(np.float64)
        # clamp to the scaler's range before inverting so expm1 cannot overflow
        scaled_predictions = np.clip(scaled_predictions, 0.0, 1.0)
        return self.target_scaler.inverse_transform(scaled_predictions)

    def predict_packed(self, graphs, dtype=None) -> np.ndarray:
        """Predict runtimes for *graphs* through one packed forward.

        Packs the encoded graphs into block-diagonal batches
        (:func:`repro.gnn.pack_graphs`) and runs the model's fused
        multi-graph kernel — float64 (``dtype=None``) results are
        bit-identical to predicting each graph alone, for any packing
        order.  Large batches split into sub-packs of bounded node count
        (:func:`repro.gnn.split_packs`) so a fused forward's working set
        stays cache-resident; splitting changes nothing numerically.
        Models without a packed kernel (e.g. the COMPOFF MLP or a custom
        registered conv) transparently fall back to :meth:`predict`.
        """
        if not self._fitted_scalers:
            raise RuntimeError("Trainer.fit must run before predict")
        graphs = list(graphs)
        if not graphs:
            return np.zeros(0)
        supports = getattr(self.model, "supports_packed", None)
        if supports is None or not supports():
            return self.predict(GraphDataset(graphs, name="predict"),
                                dtype=dtype)
        # imported lazily: repro.gnn pulls in the api registries, which in
        # turn import this module
        from ..gnn.packing import pack_graphs, split_packs
        from ..obs.tracing import span

        results = []
        for pack in split_packs(graphs):
            batch = pack_graphs(pack, self.model.num_relations)
            batch.aux_features = self.aux_scaler.transform(batch.aux_features)
            with span("engine.forward", num_graphs=len(pack), packed=True):
                if dtype is None:
                    outputs = self.model.predict_packed(batch)
                else:
                    outputs = self.model.predict_packed(batch, dtype=dtype)
            results.append(np.asarray(outputs).astype(np.float64))
        scaled_predictions = np.clip(np.concatenate(results), 0.0, 1.0)
        return self.target_scaler.inverse_transform(scaled_predictions)

    def evaluate(self, dataset: GraphDataset, dtype=None) -> Dict[str, float]:
        """RMSE / normalized RMSE of the current model on *dataset*."""
        predictions = self.predict(dataset, dtype=dtype)
        actual = dataset.targets()
        return {
            "rmse": rmse(actual, predictions),
            "normalized_rmse": normalized_rmse(actual, predictions),
        }

    # ------------------------------------------------------------------ #
    def fit(self, train: GraphDataset, validation: Optional[GraphDataset] = None) -> History:
        """Train the model; returns the per-epoch :class:`History`."""
        if len(train) == 0:
            raise ValueError("training dataset is empty")
        config = self.config
        rng = np.random.default_rng(config.seed)
        self._fit_scalers(train)
        optimizer = Adam(self.model.parameters(), lr=config.learning_rate,
                         weight_decay=config.weight_decay)
        loss_fn = MSELoss()
        history = History()
        best_rmse = float("inf")
        epochs_since_best = 0

        for epoch in range(1, config.epochs + 1):
            self.model.train()
            epoch_losses: List[float] = []
            for batch in train.batches(config.batch_size, shuffle=config.shuffle, rng=rng):
                scaled = self._scaled_batch(batch)
                optimizer.zero_grad()
                prediction = self.model(scaled)
                loss = loss_fn(prediction, Tensor(scaled.targets))
                loss.backward()
                optimizer.step()
                epoch_losses.append(loss.item())
            train_loss = float(np.mean(epoch_losses)) if epoch_losses else 0.0

            if validation is not None and len(validation) > 0:
                metrics = self.evaluate(validation)
                val_rmse, val_norm = metrics["rmse"], metrics["normalized_rmse"]
            else:
                val_rmse, val_norm = float("nan"), float("nan")
            history.append(EpochRecord(epoch, train_loss, val_rmse, val_norm))

            if config.log_every and epoch % config.log_every == 0:  # pragma: no cover
                print(f"epoch {epoch:4d}  train_loss={train_loss:.6f}  "
                      f"val_rmse={val_rmse:.3f}")

            if config.early_stopping_patience and validation is not None:
                if val_rmse < best_rmse - 1e-12:
                    best_rmse = val_rmse
                    epochs_since_best = 0
                else:
                    epochs_since_best += 1
                    if epochs_since_best >= config.early_stopping_patience:
                        break
        return history
