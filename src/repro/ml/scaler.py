"""Feature / target scaling utilities.

The paper normalizes the edge weights and the two auxiliary features
(teams, threads) with a MinMaxScaler and predicts runtimes that span several
orders of magnitude; this module provides:

* :class:`MinMaxScaler` — the scaler named in §IV-B,
* :class:`StandardScaler` — mean/std alternative,
* :class:`LogMinMaxScaler` — ``log1p`` followed by min-max, which is what the
  runtime targets use so microsecond and minute-scale kernels share a
  numerically well-behaved range.

All scalers are NumPy-vectorized, operate column-wise on 2-D arrays (1-D
arrays are treated as a single column) and support exact inverse transforms.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class _BaseScaler:
    """Shared fit/transform plumbing."""

    def __init__(self) -> None:
        self._fitted = False

    def _ensure_2d(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        self._was_1d = values.ndim == 1
        return values.reshape(-1, 1) if values.ndim == 1 else values

    def _restore(self, values: np.ndarray) -> np.ndarray:
        return values.reshape(-1) if self._was_1d else values

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError(f"{type(self).__name__} must be fitted before use")

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        self.fit(values)
        return self.transform(values)

    # interface
    def fit(self, values: np.ndarray) -> "_BaseScaler":  # pragma: no cover
        raise NotImplementedError

    def transform(self, values: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError


class MinMaxScaler(_BaseScaler):
    """Scale each column to ``[feature_min, feature_max]`` (default [0, 1])."""

    def __init__(self, feature_range: tuple = (0.0, 1.0)) -> None:
        super().__init__()
        low, high = feature_range
        if high <= low:
            raise ValueError("feature_range must be increasing")
        self.feature_range = (float(low), float(high))
        self.data_min_: Optional[np.ndarray] = None
        self.data_max_: Optional[np.ndarray] = None

    def fit(self, values: np.ndarray) -> "MinMaxScaler":
        values = self._ensure_2d(values)
        if values.shape[0] == 0:
            raise ValueError("cannot fit scaler on empty data")
        self.data_min_ = values.min(axis=0)
        self.data_max_ = values.max(axis=0)
        self._fitted = True
        return self

    def _scale(self) -> np.ndarray:
        span = self.data_max_ - self.data_min_
        return np.where(span == 0.0, 1.0, span)

    def transform(self, values: np.ndarray) -> np.ndarray:
        self._check_fitted()
        values = self._ensure_2d(values)
        low, high = self.feature_range
        scaled = (values - self.data_min_) / self._scale()
        return self._restore(scaled * (high - low) + low)

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        self._check_fitted()
        values = self._ensure_2d(values)
        low, high = self.feature_range
        unit = (values - low) / (high - low)
        return self._restore(unit * self._scale() + self.data_min_)


class StandardScaler(_BaseScaler):
    """Zero-mean, unit-variance scaling per column."""

    def __init__(self) -> None:
        super().__init__()
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None

    def fit(self, values: np.ndarray) -> "StandardScaler":
        values = self._ensure_2d(values)
        if values.shape[0] == 0:
            raise ValueError("cannot fit scaler on empty data")
        self.mean_ = values.mean(axis=0)
        std = values.std(axis=0)
        self.std_ = np.where(std == 0.0, 1.0, std)
        self._fitted = True
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        self._check_fitted()
        values = self._ensure_2d(values)
        return self._restore((values - self.mean_) / self.std_)

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        self._check_fitted()
        values = self._ensure_2d(values)
        return self._restore(values * self.std_ + self.mean_)


class LogMinMaxScaler(_BaseScaler):
    """``log1p`` followed by min-max scaling.

    Runtimes in the dataset span from tens of microseconds to minutes
    (Table II); training on log-scaled targets keeps the MSE loss from being
    dominated by the largest kernels, and predictions are inverse-transformed
    back to microseconds before the RMSE metrics are computed.
    """

    def __init__(self, feature_range: tuple = (0.0, 1.0)) -> None:
        super().__init__()
        self._inner = MinMaxScaler(feature_range)

    def fit(self, values: np.ndarray) -> "LogMinMaxScaler":
        values = self._ensure_2d(values)
        if np.any(values < 0):
            raise ValueError("LogMinMaxScaler requires non-negative values")
        self._inner.fit(np.log1p(values))
        self._fitted = True
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        self._check_fitted()
        values = self._ensure_2d(values)
        return self._restore(
            self._inner.transform(np.log1p(values)).reshape(values.shape))

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        self._check_fitted()
        values = self._ensure_2d(values)
        inner = self._inner.inverse_transform(values).reshape(values.shape)
        return self._restore(np.expm1(inner))
