"""Feature / target scaling utilities.

The paper normalizes the edge weights and the two auxiliary features
(teams, threads) with a MinMaxScaler and predicts runtimes that span several
orders of magnitude; this module provides:

* :class:`MinMaxScaler` — the scaler named in §IV-B,
* :class:`StandardScaler` — mean/std alternative,
* :class:`LogMinMaxScaler` — ``log1p`` followed by min-max, which is what the
  runtime targets use so microsecond and minute-scale kernels share a
  numerically well-behaved range.

All scalers are NumPy-vectorized, operate column-wise on 2-D arrays (1-D
arrays are treated as a single column) and support exact inverse transforms.

Fitted scaler state round-trips through plain dicts (``to_dict`` /
:func:`scaler_from_dict`): the fitted statistics serialize as lists of
Python floats, which JSON preserves bit-exactly (repr-based shortest
round-trip), so a model restored from a ``repro.store`` artifact scales
inputs and inverts predictions bit-identically to the trainer that fitted
the scaler.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "LogMinMaxScaler",
    "MinMaxScaler",
    "StandardScaler",
    "scaler_from_dict",
]


def _floats(values: np.ndarray) -> list:
    """A JSON-safe (and bit-exact) list form of a float64 state array."""
    return [float(value) for value in np.asarray(values, dtype=np.float64)]


def _state_array(payload: dict, key: str) -> np.ndarray:
    if key not in payload:
        raise ValueError(f"scaler payload is missing the {key!r} field")
    try:
        values = np.asarray(payload[key], dtype=np.float64)
    except (TypeError, ValueError):
        raise ValueError(
            f"scaler field {key!r} is not a numeric array: "
            f"{payload[key]!r}") from None
    if values.ndim != 1:
        raise ValueError(f"scaler field {key!r} must be one-dimensional, "
                         f"got shape {values.shape}")
    if not np.isfinite(values).all():
        raise ValueError(f"scaler field {key!r} contains non-finite values "
                         "(NaN/Inf) — corrupted state")
    return values


def _feature_range(payload: dict):
    raw = payload.get("feature_range", (0.0, 1.0))
    if not isinstance(raw, (list, tuple)) or len(raw) != 2:
        raise ValueError("scaler field 'feature_range' must be a "
                         f"[low, high] pair, got {raw!r}")
    try:
        return float(raw[0]), float(raw[1])
    except (TypeError, ValueError):
        raise ValueError("scaler field 'feature_range' must hold two "
                         f"numbers, got {raw!r}") from None


def _matched_pair(payload: dict, low_key: str, high_key: str):
    low = _state_array(payload, low_key)
    high = _state_array(payload, high_key)
    if low.shape != high.shape:
        raise ValueError(
            f"scaler fields {low_key!r}/{high_key!r} disagree in length: "
            f"{low.shape} vs {high.shape}")
    return low, high


class _BaseScaler:
    """Shared fit/transform plumbing."""

    def __init__(self) -> None:
        self._fitted = False

    def _ensure_2d(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        self._was_1d = values.ndim == 1
        return values.reshape(-1, 1) if values.ndim == 1 else values

    def _restore(self, values: np.ndarray) -> np.ndarray:
        return values.reshape(-1) if self._was_1d else values

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError(f"{type(self).__name__} must be fitted before use")

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        self.fit(values)
        return self.transform(values)

    # interface
    def fit(self, values: np.ndarray) -> "_BaseScaler":  # pragma: no cover
        raise NotImplementedError

    def transform(self, values: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError


class MinMaxScaler(_BaseScaler):
    """Scale each column to ``[feature_min, feature_max]`` (default [0, 1])."""

    def __init__(self, feature_range: tuple = (0.0, 1.0)) -> None:
        super().__init__()
        low, high = feature_range
        if high <= low:
            raise ValueError("feature_range must be increasing")
        self.feature_range = (float(low), float(high))
        self.data_min_: Optional[np.ndarray] = None
        self.data_max_: Optional[np.ndarray] = None

    def fit(self, values: np.ndarray) -> "MinMaxScaler":
        values = self._ensure_2d(values)
        if values.shape[0] == 0:
            raise ValueError("cannot fit scaler on empty data")
        self.data_min_ = values.min(axis=0)
        self.data_max_ = values.max(axis=0)
        self._fitted = True
        return self

    def _scale(self) -> np.ndarray:
        span = self.data_max_ - self.data_min_
        return np.where(span == 0.0, 1.0, span)

    def transform(self, values: np.ndarray) -> np.ndarray:
        self._check_fitted()
        values = self._ensure_2d(values)
        low, high = self.feature_range
        scaled = (values - self.data_min_) / self._scale()
        return self._restore(scaled * (high - low) + low)

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        self._check_fitted()
        values = self._ensure_2d(values)
        low, high = self.feature_range
        unit = (values - low) / (high - low)
        return self._restore(unit * self._scale() + self.data_min_)

    def to_dict(self) -> dict:
        self._check_fitted()
        return {
            "type": "minmax",
            "feature_range": [self.feature_range[0], self.feature_range[1]],
            "data_min": _floats(self.data_min_),
            "data_max": _floats(self.data_max_),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MinMaxScaler":
        scaler = cls(feature_range=_feature_range(payload))
        low, high = _matched_pair(payload, "data_min", "data_max")
        if np.any(low > high):
            raise ValueError(
                "scaler fields 'data_min'/'data_max' are inverted "
                "(min > max) — corrupted state")
        scaler.data_min_, scaler.data_max_ = low, high
        scaler._fitted = True
        return scaler


class StandardScaler(_BaseScaler):
    """Zero-mean, unit-variance scaling per column."""

    def __init__(self) -> None:
        super().__init__()
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None

    def fit(self, values: np.ndarray) -> "StandardScaler":
        values = self._ensure_2d(values)
        if values.shape[0] == 0:
            raise ValueError("cannot fit scaler on empty data")
        self.mean_ = values.mean(axis=0)
        std = values.std(axis=0)
        self.std_ = np.where(std == 0.0, 1.0, std)
        self._fitted = True
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        self._check_fitted()
        values = self._ensure_2d(values)
        return self._restore((values - self.mean_) / self.std_)

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        self._check_fitted()
        values = self._ensure_2d(values)
        return self._restore(values * self.std_ + self.mean_)

    def to_dict(self) -> dict:
        self._check_fitted()
        return {
            "type": "standard",
            "mean": _floats(self.mean_),
            "std": _floats(self.std_),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "StandardScaler":
        scaler = cls()
        mean, std = _matched_pair(payload, "mean", "std")
        if np.any(std <= 0.0):
            raise ValueError("scaler field 'std' must be strictly positive "
                             "(fit maps zero-variance columns to 1.0) — "
                             "corrupted state")
        scaler.mean_, scaler.std_ = mean, std
        scaler._fitted = True
        return scaler


class LogMinMaxScaler(_BaseScaler):
    """``log1p`` followed by min-max scaling.

    Runtimes in the dataset span from tens of microseconds to minutes
    (Table II); training on log-scaled targets keeps the MSE loss from being
    dominated by the largest kernels, and predictions are inverse-transformed
    back to microseconds before the RMSE metrics are computed.
    """

    def __init__(self, feature_range: tuple = (0.0, 1.0)) -> None:
        super().__init__()
        self._inner = MinMaxScaler(feature_range)

    def fit(self, values: np.ndarray) -> "LogMinMaxScaler":
        values = self._ensure_2d(values)
        if np.any(values < 0):
            raise ValueError("LogMinMaxScaler requires non-negative values")
        self._inner.fit(np.log1p(values))
        self._fitted = True
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        self._check_fitted()
        values = self._ensure_2d(values)
        return self._restore(
            self._inner.transform(np.log1p(values)).reshape(values.shape))

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        self._check_fitted()
        values = self._ensure_2d(values)
        inner = self._inner.inverse_transform(values).reshape(values.shape)
        return self._restore(np.expm1(inner))

    def to_dict(self) -> dict:
        self._check_fitted()
        inner = self._inner.to_dict()
        inner["type"] = "log_minmax"
        return inner

    @classmethod
    def from_dict(cls, payload: dict) -> "LogMinMaxScaler":
        scaler = cls(feature_range=_feature_range(payload))
        scaler._inner = MinMaxScaler.from_dict(payload)
        scaler._fitted = True
        return scaler


#: ``type`` tag → scaler class, for :func:`scaler_from_dict`.
_SCALER_TYPES = {
    "minmax": MinMaxScaler,
    "standard": StandardScaler,
    "log_minmax": LogMinMaxScaler,
}


def scaler_from_dict(payload: dict):
    """Rebuild any fitted scaler from its ``to_dict`` payload."""
    if not isinstance(payload, dict):
        raise ValueError(
            f"scaler payload must be a dict, got {type(payload).__name__}")
    kind = payload.get("type")
    if kind not in _SCALER_TYPES:
        raise ValueError(f"unknown scaler type {kind!r}; known types: "
                         f"{sorted(_SCALER_TYPES)}")
    return _SCALER_TYPES[kind].from_dict(payload)
