"""Functional building blocks on top of the autograd :class:`Tensor`.

Higher-level differentiable operations used by the layers and the GNN
convolutions: activations, softmax, dropout, segment (per-group) softmax for
graph attention, and global pooling helpers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import Tensor, concatenate


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.relu()


def leaky_relu(x: Tensor, negative_slope: float = 0.2) -> Tensor:
    """Leaky ReLU used by the attention logits in (R)GAT."""
    return x.leaky_relu(negative_slope)


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along *axis*."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    return softmax(x, axis=axis).log()


def dropout(x: Tensor, p: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout: identity at evaluation time."""
    if not training or p <= 0.0:
        return x
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.shape) >= p).astype(np.float64) / (1.0 - p)
    return x * Tensor(mask)


def segment_softmax(logits: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Softmax of *logits* normalized within each segment.

    Used for graph attention: ``segment_ids`` is the destination node of each
    edge and the attention coefficients of all edges entering the same node
    sum to one.  ``logits`` may be (E,) or (E, H) for multi-head attention;
    normalization is independent per head.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    data = logits.data
    squeeze = False
    if data.ndim == 1:
        data = data[:, None]
        logits = logits.reshape(-1, 1)
        squeeze = True
    # subtract the per-segment max for numerical stability (constant wrt grad)
    seg_max = np.full((num_segments, data.shape[1]), -np.inf, dtype=data.dtype)
    np.maximum.at(seg_max, segment_ids, data)
    seg_max[~np.isfinite(seg_max)] = 0.0
    shifted = logits - Tensor(seg_max[segment_ids], dtype=data.dtype)
    exp = shifted.exp()
    denom = exp.scatter_add(segment_ids, num_segments)
    # avoid division by zero for segments with no incoming edges
    denom = denom + Tensor(np.full(denom.shape, 1e-16), dtype=data.dtype)
    out = exp / denom.index_select(segment_ids)
    if squeeze:
        out = out.reshape(-1)
    return out


def segment_sum(values: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of *values* per segment (thin wrapper over ``scatter_add``)."""
    return values.scatter_add(segment_ids, num_segments)


def segment_mean(values: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Average rows of *values* per segment; empty segments yield zeros."""
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    totals = values.scatter_add(segment_ids, num_segments)
    counts = np.zeros((num_segments,) + (1,) * (values.data.ndim - 1),
                      dtype=values.data.dtype)
    np.add.at(counts, segment_ids, 1.0)
    counts = np.maximum(counts, 1.0)
    return totals * Tensor(1.0 / counts, dtype=values.data.dtype)


def segment_matmul(x: Tensor, weight: Tensor, offsets: np.ndarray) -> Tensor:
    """Per-segment matrix multiplication over contiguous row blocks.

    ``out[offsets[r] : offsets[r + 1]] = x[offsets[r] : offsets[r + 1]] @
    weight[r]`` — the core of the vectorized relational GNN kernels: with
    edges sorted by relation (see :class:`repro.gnn.edge_layout.
    RelationalEdgeLayout`) the gathered source/destination rows of every
    relation form one contiguous block, so each relation costs a single BLAS
    call over exactly its own edges instead of a projection of *all* nodes.

    Parameters
    ----------
    x:
        ``(E, F)`` stacked per-segment rows.
    weight:
        ``(R, F, O)`` one projection matrix per segment.
    offsets:
        ``(R + 1,)`` monotone row offsets with ``offsets[0] == 0`` and
        ``offsets[-1] == E``; empty segments are skipped.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    num_segments = weight.data.shape[0]
    if offsets.shape != (num_segments + 1,):
        raise ValueError(f"offsets must have shape ({num_segments + 1},), "
                         f"got {offsets.shape}")
    if offsets[0] != 0 or offsets[-1] != x.data.shape[0] or np.any(np.diff(offsets) < 0):
        raise ValueError("offsets must be monotone from 0 to x.shape[0]")
    out_dtype = np.result_type(x.data, weight.data)
    data = np.zeros((x.data.shape[0], weight.data.shape[2]), dtype=out_dtype)
    for r in range(num_segments):
        lo, hi = offsets[r], offsets[r + 1]
        if lo == hi:
            continue
        np.matmul(x.data[lo:hi], weight.data[r], out=data[lo:hi])
    out = x._make(data, (x, weight), "segment_matmul")

    def _backward() -> None:
        if x.requires_grad:
            if x.grad is None:
                x.grad = np.zeros_like(x.data)
            for r in range(num_segments):
                lo, hi = offsets[r], offsets[r + 1]
                if lo == hi:
                    continue
                np.add(x.grad[lo:hi], out.grad[lo:hi] @ weight.data[r].T,
                       out=x.grad[lo:hi])
        if weight.requires_grad:
            if weight.grad is None:
                weight.grad = np.zeros_like(weight.data)
            for r in range(num_segments):
                lo, hi = offsets[r], offsets[r + 1]
                if lo == hi:
                    continue
                np.add(weight.grad[r], x.data[lo:hi].T @ out.grad[lo:hi],
                       out=weight.grad[r])

    out._backward = _backward
    return out


def packed_segment_matmul_data(x: np.ndarray, rows: np.ndarray,
                               weight: np.ndarray, chunks,
                               out: np.ndarray) -> np.ndarray:
    """Raw-array per-chunk segment matmul for packed block-diagonal batches.

    For every ``(relation, lo, hi)`` chunk, projects the gathered rows
    ``x[rows[lo:hi]]`` with ``weight[relation]`` into ``out[lo:hi]``.  Each
    chunk is one (graph, relation) run of a merged
    :class:`~repro.gnn.packing.PackedLayout`, so every GEMM sees exactly the
    row count the corresponding per-graph forward would use — BLAS kernels
    are not bit-stable across row counts, and the packed path's bit-identity
    contract depends on keeping those shapes.  Inference-only: no autodiff.
    """
    for relation, lo, hi in chunks:
        np.matmul(x[rows[lo:hi]], weight[relation], out=out[lo:hi])
    return out


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    diff = prediction - target
    return (diff * diff).mean()


def mae_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error."""
    return (prediction - target).abs().mean()


def huber_loss(prediction: Tensor, target: Tensor, delta: float = 1.0) -> Tensor:
    """Huber (smooth-L1) loss, useful for heavy-tailed runtime targets."""
    diff = prediction - target
    abs_diff = diff.abs()
    quadratic = diff * diff * 0.5
    linear = abs_diff * delta - 0.5 * delta * delta
    mask = (abs_diff.data <= delta).astype(np.float64)
    combined = quadratic * Tensor(mask) + linear * Tensor(1.0 - mask)
    return combined.mean()
