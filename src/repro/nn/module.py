"""Module / Parameter abstractions (the ``torch.nn.Module`` analogue).

A :class:`Module` owns :class:`Parameter` tensors, non-trainable *buffers*
(:meth:`register_buffer`) and child modules, exposes them through
:meth:`parameters` / :meth:`named_parameters` / :meth:`named_buffers`, and
supports ``train()`` / ``eval()`` mode switching plus ``state_dict``
round-trips for checkpointing.

Checkpoint semantics (what ``repro.store`` relies on):

* :meth:`state_dict` captures the *stored* arrays — parameters read through
  the raw tensor slot, so an active serving dtype overlay never leaks cast
  views into a checkpoint — and preserves each entry's dtype (float64
  parameters, buffers in whatever dtype they were registered with).
* :meth:`load_state_dict` validates instead of coercing: a checkpoint entry
  whose dtype differs from the module's is an error naming the offending
  entry (pass ``cast=True`` to convert explicitly), and non-finite values
  (NaN/Inf — the signature of a corrupted or truncated artifact) fail
  loudly before any state is mutated.

Serving dtype views are **per-context**, not in-place: while a
:func:`parameters_as` (module-scoped) or
:class:`~repro.nn.context.InferenceContext` (context-wide) dtype overlay
is active, the affected :class:`Parameter` reads resolve to memoized,
read-only cast views of their stored arrays.  The stored (float64) arrays are
never touched by serving, so concurrent threads serving in different
dtypes — or training *a different model* — read exactly the parameters
they expect.  Optimizer steps reassign parameter arrays one at a time,
so training the *same* model that is being served concurrently yields
torn weight snapshots; serve from quiescent (trained) models.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from .context import _PARAM_DTYPE
from .tensor import Tensor

#: the ``data`` slot descriptor of :class:`Tensor`; :class:`Parameter`
#: shadows it with the overlay-aware property below but stores through it.
_TENSOR_DATA = Tensor.__dict__["data"]


def _cast_parameter(parameter: "Parameter", base: np.ndarray,
                    dtype: np.dtype) -> np.ndarray:
    """An immutable cast view of one parameter's array, memoized per dtype.

    Views are keyed by (dtype, identity of the stored array): optimizer
    steps and ``load_state_dict`` reassign ``data`` (a new array object),
    which invalidates the cached cast automatically.  Entries are written
    read-only so no caller can mutate a view other contexts share; racing
    builders produce identical arrays, so the unlocked dict is safe.
    """
    cache = parameter.__dict__.get("_cast_cache")
    if cache is None:
        cache = parameter.__dict__.setdefault("_cast_cache", {})
    entry = cache.get(dtype.str)
    if entry is not None and entry[0] is base:
        return entry[1]
    cast = base.astype(dtype)
    cast.setflags(write=False)
    cache[dtype.str] = (base, cast)
    return cast


def _checked_buffer(name: str, value) -> np.ndarray:
    """Coerce a buffer value to a numeric/bool array, rejecting object
    dtype — pickled object arrays would save into a checkpoint cleanly but
    can never be loaded back (``np.load`` defaults to allow_pickle=False)."""
    array = np.asarray(value)
    if array.dtype == object:
        raise ValueError(
            f"buffer {name!r} would have object dtype (value {value!r}); "
            "buffers must be numeric or boolean arrays so checkpoints stay "
            "loadable")
    return array


@contextmanager
def parameters_as(module: "Module", dtype):
    """View every parameter of *module* in *dtype* for the current context.

    The serving fast path runs float32 forwards through models trained in
    float64: inside the block each of *module*'s parameters reads its
    ``data`` as a memoized read-only cast view, and the stored float64
    arrays are never modified — bit-exact restoration is structural, not a
    save/restore dance.  The overlay is contextvar-backed (thread/task
    local) and **module-scoped**: other modules used inside the block keep
    reading their stored arrays.  Nested overlays compose (inner modules
    add to — or re-dtype — the outer mapping).  Training must not run
    inside the block.
    """
    dtype = np.dtype(dtype)
    previous = _PARAM_DTYPE.get()
    default, per_param = previous if previous is not None else (None, {})
    merged = dict(per_param)
    merged.update((id(parameter), dtype) for parameter in module.parameters())
    token = _PARAM_DTYPE.set((default, merged))
    try:
        yield
    finally:
        _PARAM_DTYPE.reset(token)


class Parameter(Tensor):
    """A trainable tensor (always ``requires_grad=True``).

    ``data`` is overlay-aware: with no active dtype overlay it is the stored
    array (trainable in place, reassignable); under a
    :func:`parameters_as` / ``InferenceContext(dtype=...)`` overlay it reads
    as the context's immutable cast view.
    """

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)

    @property
    def data(self) -> np.ndarray:
        base = _TENSOR_DATA.__get__(self)
        overlay = _PARAM_DTYPE.get()
        if overlay is None:
            return base
        default, per_param = overlay
        dtype = per_param.get(id(self), default) if per_param else default
        if dtype is None or base.dtype == dtype:
            return base
        return _cast_parameter(self, base, dtype)

    @data.setter
    def data(self, value) -> None:
        _TENSOR_DATA.__set__(self, value)


class Module:
    """Base class for every neural-network component."""

    def __init__(self) -> None:
        self._parameters: Dict[str, Parameter] = {}
        self._buffers: Dict[str, np.ndarray] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    # ------------------------------------------------------------------ #
    # attribute bookkeeping
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            if name in self.__dict__.get("_buffers", ()):
                raise ValueError(
                    f"{name!r} is already a buffer of this module; a name "
                    "cannot be both a buffer and a parameter")
            if name in self.__dict__.get("_modules", ()):
                raise ValueError(
                    f"{name!r} is already a child module; a name cannot be "
                    "both a child module and a parameter")
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            if name in self.__dict__.get("_buffers", ()):
                raise ValueError(
                    f"{name!r} is already a buffer of this module; a name "
                    "cannot be both a buffer and a child module")
            if name in self.__dict__.get("_parameters", ()):
                raise ValueError(
                    f"{name!r} is already a parameter of this module; a "
                    "name cannot be both a parameter and a child module")
            self.__dict__.setdefault("_modules", {})[name] = value
        elif name in self.__dict__.get("_parameters", ()):
            raise ValueError(
                f"cannot shadow parameter {name!r} with a non-Parameter "
                f"value; assign to `{name}.data` (or wrap the value in "
                "Parameter) so state_dict and the forward pass stay in sync")
        elif name in self.__dict__.get("_modules", ()):
            raise ValueError(
                f"cannot shadow child module {name!r} with a non-Module "
                "value; state_dict would keep serializing the orphaned "
                "child's parameters")
        elif name in self.__dict__.get("_buffers", ()):
            # keep a registered buffer's dict entry and attribute in sync
            self._buffers[name] = _checked_buffer(name, value)
            value = self._buffers[name]
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        # route through __setattr__ so the name-collision guards
        # (parameter/buffer shadowing) apply here too
        setattr(self, name, module)

    def register_buffer(self, name: str, value) -> None:
        """Attach a non-trainable array that travels with ``state_dict``.

        Buffers hold persistent non-parameter state (normalization
        statistics, cached integer layouts, step counters …): they are
        saved and restored by checkpointing, keep the exact dtype they
        were registered with, and are readable as ``self.<name>``.
        """
        if not name or "." in name:
            raise ValueError(
                f"invalid buffer name {name!r}: must be non-empty and must "
                "not contain '.' (dots delimit the module hierarchy in "
                "state_dict keys)")
        if name in self._parameters:
            raise ValueError(f"{name!r} is already a parameter of this module")
        if name in self._modules:
            raise ValueError(f"{name!r} is already a child module; a name "
                             "cannot be both a buffer and a child module")
        if name not in self._buffers and hasattr(self, name):
            # registering over `training`, `parameters`, `_buffers`, … would
            # shadow module machinery; re-registering a buffer is fine
            raise ValueError(
                f"cannot register buffer {name!r}: the module already has "
                "an attribute of that name")
        self._buffers[name] = _checked_buffer(name, value)
        object.__setattr__(self, name, self._buffers[name])

    # ------------------------------------------------------------------ #
    # parameter access
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, parameter in self._parameters.items():
            yield (f"{prefix}{name}", parameter)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        return [parameter for _, parameter in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, buffer in self._buffers.items():
            yield (f"{prefix}{name}", buffer)
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{name}.")

    def buffers(self) -> List[np.ndarray]:
        return [buffer for _, buffer in self.named_buffers()]

    def _buffer_owners(self, prefix: str = "") -> Iterator[Tuple[str, "Module", str]]:
        """Yield ``(dotted_name, owning_module, local_name)`` per buffer."""
        for name in self._buffers:
            yield (f"{prefix}{name}", self, name)
        for name, module in self._modules.items():
            yield from module._buffer_owners(prefix=f"{prefix}{name}.")

    def num_parameters(self) -> int:
        """Total number of trainable scalars."""
        return int(sum(parameter.size for parameter in self.parameters()))

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.grad = None

    # ------------------------------------------------------------------ #
    # mode switching
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------ #
    # (de)serialization
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Stored parameters and buffers, each copied with its dtype intact.

        Parameters read through the raw tensor slot, so a concurrently
        active serving dtype overlay (``parameters_as`` /
        ``InferenceContext(dtype=...)``) can never leak float32 cast views
        into a checkpoint.
        """
        state = {name: _TENSOR_DATA.__get__(parameter).copy()
                 for name, parameter in self.named_parameters()}
        for name, buffer in self.named_buffers():
            state[name] = buffer.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], *,
                        cast: bool = False) -> None:
        """Restore parameters and buffers from a :meth:`state_dict` mapping.

        Every entry is validated *before* any state is mutated, so a bad
        checkpoint leaves the module untouched:

        * missing/unexpected names raise :class:`KeyError`,
        * shape mismatches raise :class:`ValueError` naming the entry,
        * dtype mismatches raise :class:`ValueError` naming the entry and
          both dtypes — the incoming dtype is preserved, never silently
          up-cast; pass ``cast=True`` to convert explicitly,
        * non-finite values (NaN/Inf — the signature of a corrupted or
          truncated checkpoint) raise :class:`ValueError` naming the entry.
        """
        parameters = dict(self.named_parameters())
        buffer_owners = {dotted: (owner, local)
                         for dotted, owner, local in self._buffer_owners()}
        own_dtypes = {name: _TENSOR_DATA.__get__(parameter).dtype
                      for name, parameter in parameters.items()}
        own_dtypes.update((dotted, owner._buffers[local].dtype)
                          for dotted, (owner, local) in buffer_owners.items())
        missing = set(own_dtypes) - set(state)
        unexpected = set(state) - set(own_dtypes)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(unexpected)}")
        prepared: Dict[str, np.ndarray] = {}
        for name, expected_dtype in own_dtypes.items():
            value = np.asarray(state[name])
            if name in parameters:
                expected_shape = _TENSOR_DATA.__get__(parameters[name]).shape
            else:
                owner, local = buffer_owners[name]
                expected_shape = owner._buffers[local].shape
            if value.shape != expected_shape:
                raise ValueError(f"shape mismatch for {name}: "
                                 f"{value.shape} vs {expected_shape}")
            if np.issubdtype(value.dtype, np.inexact) and \
                    not np.isfinite(value).all():
                raise ValueError(
                    f"state dict entry {name!r} contains non-finite values "
                    "(NaN/Inf); refusing to load a corrupted checkpoint")
            if value.dtype != expected_dtype:
                if not cast:
                    raise ValueError(
                        f"dtype mismatch for {name}: checkpoint has "
                        f"{value.dtype}, module expects {expected_dtype} "
                        "(pass cast=True to convert explicitly)")
                original = value
                with np.errstate(over="ignore"):   # overflow is detected and
                    value = value.astype(expected_dtype)   # rejected below
                if np.issubdtype(value.dtype, np.inexact) and \
                        not np.isfinite(value).all():
                    raise ValueError(
                        f"state dict entry {name!r} overflowed to "
                        f"non-finite values when cast to "
                        f"{expected_dtype}; refusing to load")
                # any cast into — or out of — an integer/bool dtype must be
                # value-preserving (no wrap, truncation or 0.7→True); only
                # in-kind float precision change is an accepted cast.  The
                # comparison runs on Python objects so exactly-invertible
                # wraps (int64 -1 ↔ uint64 max) still fail it.
                exact_kinds = "iub"
                if (value.dtype.kind in exact_kinds or
                        (original.dtype.kind in exact_kinds and
                         original.dtype.kind != value.dtype.kind)) and \
                        not np.array_equal(value.astype(object),
                                           original.astype(object)):
                    raise ValueError(
                        f"state dict entry {name!r} does not round-trip "
                        f"through {expected_dtype} (overflow, wrap or "
                        "truncation); refusing to load")
            prepared[name] = value.copy()
        for name, parameter in parameters.items():
            parameter.data = prepared[name]
        for dotted, (owner, local) in buffer_owners.items():
            owner._buffers[local] = prepared[dotted]
            object.__setattr__(owner, local, prepared[dotted])

    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
