"""Module / Parameter abstractions (the ``torch.nn.Module`` analogue).

A :class:`Module` owns :class:`Parameter` tensors and child modules, exposes
them through :meth:`parameters` / :meth:`named_parameters`, and supports
``train()`` / ``eval()`` mode switching plus ``state_dict`` round-trips for
checkpointing.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from .tensor import Tensor


def _cast_parameter(parameter: "Parameter", dtype: np.dtype) -> np.ndarray:
    """Cast one parameter's data, memoized per parameter.

    The cast array is cached on the parameter and keyed by the identity of
    the source array, so repeated serving calls reuse one buffer; optimizer
    steps and ``load_state_dict`` reassign ``data`` (a new array object),
    which invalidates the cache automatically.
    """
    cached = parameter.__dict__.get("_cast_cache")
    if cached is not None and cached[0] is parameter.data and cached[1] == dtype.str:
        return cached[2]
    cast = parameter.data.astype(dtype)
    parameter.__dict__["_cast_cache"] = (parameter.data, dtype.str, cast)
    return cast


@contextmanager
def parameters_as(module: "Module", dtype):
    """Temporarily view every parameter of *module* in *dtype*.

    The serving fast path runs float32 forwards through models trained in
    float64: inside the block each parameter's ``data`` is a cast copy
    (memoized, so repeated predictions don't re-cast), and on exit the
    original float64 arrays are restored bit-exactly (a cast round-trip would
    lose precision).  Training must not run inside the block.
    """
    dtype = np.dtype(dtype)
    parameters = module.parameters()
    saved = [parameter.data for parameter in parameters]
    if all(data.dtype == dtype for data in saved):
        yield
        return
    try:
        for parameter in parameters:
            parameter.data = _cast_parameter(parameter, dtype)
        yield
    finally:
        for parameter, data in zip(parameters, saved):
            parameter.data = data


class Parameter(Tensor):
    """A trainable tensor (always ``requires_grad=True``)."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for every neural-network component."""

    def __init__(self) -> None:
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    # ------------------------------------------------------------------ #
    # attribute bookkeeping
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------ #
    # parameter access
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, parameter in self._parameters.items():
            yield (f"{prefix}{name}", parameter)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        return [parameter for _, parameter in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of trainable scalars."""
        return int(sum(parameter.size for parameter in self.parameters()))

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.grad = None

    # ------------------------------------------------------------------ #
    # mode switching
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------ #
    # (de)serialization
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: parameter.data.copy() for name, parameter in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(unexpected)}")
        for name, parameter in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != parameter.data.shape:
                raise ValueError(f"shape mismatch for {name}: "
                                 f"{value.shape} vs {parameter.data.shape}")
            parameter.data = value.copy()

    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
