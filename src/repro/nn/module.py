"""Module / Parameter abstractions (the ``torch.nn.Module`` analogue).

A :class:`Module` owns :class:`Parameter` tensors and child modules, exposes
them through :meth:`parameters` / :meth:`named_parameters`, and supports
``train()`` / ``eval()`` mode switching plus ``state_dict`` round-trips for
checkpointing.

Serving dtype views are **per-context**, not in-place: while a
:func:`parameters_as` (module-scoped) or
:class:`~repro.nn.context.InferenceContext` (context-wide) dtype overlay
is active, the affected :class:`Parameter` reads resolve to memoized,
read-only cast views of their stored arrays.  The stored (float64) arrays are
never touched by serving, so concurrent threads serving in different
dtypes — or training *a different model* — read exactly the parameters
they expect.  Optimizer steps reassign parameter arrays one at a time,
so training the *same* model that is being served concurrently yields
torn weight snapshots; serve from quiescent (trained) models.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from .context import _PARAM_DTYPE
from .tensor import Tensor

#: the ``data`` slot descriptor of :class:`Tensor`; :class:`Parameter`
#: shadows it with the overlay-aware property below but stores through it.
_TENSOR_DATA = Tensor.__dict__["data"]


def _cast_parameter(parameter: "Parameter", base: np.ndarray,
                    dtype: np.dtype) -> np.ndarray:
    """An immutable cast view of one parameter's array, memoized per dtype.

    Views are keyed by (dtype, identity of the stored array): optimizer
    steps and ``load_state_dict`` reassign ``data`` (a new array object),
    which invalidates the cached cast automatically.  Entries are written
    read-only so no caller can mutate a view other contexts share; racing
    builders produce identical arrays, so the unlocked dict is safe.
    """
    cache = parameter.__dict__.get("_cast_cache")
    if cache is None:
        cache = parameter.__dict__.setdefault("_cast_cache", {})
    entry = cache.get(dtype.str)
    if entry is not None and entry[0] is base:
        return entry[1]
    cast = base.astype(dtype)
    cast.setflags(write=False)
    cache[dtype.str] = (base, cast)
    return cast


@contextmanager
def parameters_as(module: "Module", dtype):
    """View every parameter of *module* in *dtype* for the current context.

    The serving fast path runs float32 forwards through models trained in
    float64: inside the block each of *module*'s parameters reads its
    ``data`` as a memoized read-only cast view, and the stored float64
    arrays are never modified — bit-exact restoration is structural, not a
    save/restore dance.  The overlay is contextvar-backed (thread/task
    local) and **module-scoped**: other modules used inside the block keep
    reading their stored arrays.  Nested overlays compose (inner modules
    add to — or re-dtype — the outer mapping).  Training must not run
    inside the block.
    """
    dtype = np.dtype(dtype)
    previous = _PARAM_DTYPE.get()
    default, per_param = previous if previous is not None else (None, {})
    merged = dict(per_param)
    merged.update((id(parameter), dtype) for parameter in module.parameters())
    token = _PARAM_DTYPE.set((default, merged))
    try:
        yield
    finally:
        _PARAM_DTYPE.reset(token)


class Parameter(Tensor):
    """A trainable tensor (always ``requires_grad=True``).

    ``data`` is overlay-aware: with no active dtype overlay it is the stored
    array (trainable in place, reassignable); under a
    :func:`parameters_as` / ``InferenceContext(dtype=...)`` overlay it reads
    as the context's immutable cast view.
    """

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)

    @property
    def data(self) -> np.ndarray:
        base = _TENSOR_DATA.__get__(self)
        overlay = _PARAM_DTYPE.get()
        if overlay is None:
            return base
        default, per_param = overlay
        dtype = per_param.get(id(self), default) if per_param else default
        if dtype is None or base.dtype == dtype:
            return base
        return _cast_parameter(self, base, dtype)

    @data.setter
    def data(self, value) -> None:
        _TENSOR_DATA.__set__(self, value)


class Module:
    """Base class for every neural-network component."""

    def __init__(self) -> None:
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    # ------------------------------------------------------------------ #
    # attribute bookkeeping
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------ #
    # parameter access
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, parameter in self._parameters.items():
            yield (f"{prefix}{name}", parameter)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        return [parameter for _, parameter in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of trainable scalars."""
        return int(sum(parameter.size for parameter in self.parameters()))

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.grad = None

    # ------------------------------------------------------------------ #
    # mode switching
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------ #
    # (de)serialization
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: parameter.data.copy() for name, parameter in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(unexpected)}")
        for name, parameter in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != parameter.data.shape:
                raise ValueError(f"shape mismatch for {name}: "
                                 f"{value.shape} vs {parameter.data.shape}")
            parameter.data = value.copy()

    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
