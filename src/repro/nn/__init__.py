"""``repro.nn`` — a NumPy reverse-mode autograd neural-network substrate.

Substitute for PyTorch: tensors with automatic differentiation, standard
layers (Linear/MLP/Dropout/Embedding), MSE loss and the Adam optimizer — the
pieces the ParaGraph GNN and the COMPOFF baseline are built from.

Inference fast path: :func:`no_grad` disables closure/graph recording,
:func:`default_dtype` switches serving forwards to float32, and
:func:`parameters_as` views a module's parameters in a cast dtype (the
stored float64 arrays are never touched).  All of that state is
**context-local** (contextvar-backed, :mod:`repro.nn.context`):
:class:`InferenceContext` bundles it into one scoped, re-entrant switch,
so concurrent serving workers need no external lock.  Segment reductions
(``scatter_add``) route through lock-protected cached sparse scatter
matrices when scipy is present.
"""

from . import functional
from .context import InferenceContext, serving_active, serving_scope
from .init import kaiming_uniform, xavier_normal, xavier_uniform
from .layers import MLP, Dropout, Embedding, Linear, ReLU, Sequential
from .losses import HuberLoss, MAELoss, MSELoss
from .module import Module, Parameter, parameters_as
from .optim import Adam, Optimizer, SGD
from .tensor import (
    Tensor,
    concatenate,
    default_dtype,
    get_default_dtype,
    is_grad_enabled,
    is_inference,
    no_grad,
    ones,
    set_default_dtype,
    stack,
    zeros,
)

__all__ = [
    "Adam",
    "Dropout",
    "Embedding",
    "HuberLoss",
    "InferenceContext",
    "Linear",
    "MAELoss",
    "MLP",
    "MSELoss",
    "Module",
    "Optimizer",
    "Parameter",
    "ReLU",
    "SGD",
    "Sequential",
    "Tensor",
    "concatenate",
    "default_dtype",
    "functional",
    "get_default_dtype",
    "is_grad_enabled",
    "is_inference",
    "kaiming_uniform",
    "no_grad",
    "ones",
    "parameters_as",
    "serving_active",
    "serving_scope",
    "set_default_dtype",
    "stack",
    "xavier_normal",
    "xavier_uniform",
    "zeros",
]
