"""``repro.nn`` — a NumPy reverse-mode autograd neural-network substrate.

Substitute for PyTorch: tensors with automatic differentiation, standard
layers (Linear/MLP/Dropout/Embedding), MSE loss and the Adam optimizer — the
pieces the ParaGraph GNN and the COMPOFF baseline are built from.
"""

from . import functional
from .init import kaiming_uniform, xavier_normal, xavier_uniform
from .layers import MLP, Dropout, Embedding, Linear, ReLU, Sequential
from .losses import HuberLoss, MAELoss, MSELoss
from .module import Module, Parameter
from .optim import Adam, Optimizer, SGD
from .tensor import Tensor, concatenate, ones, stack, zeros

__all__ = [
    "Adam",
    "Dropout",
    "Embedding",
    "HuberLoss",
    "Linear",
    "MAELoss",
    "MLP",
    "MSELoss",
    "Module",
    "Optimizer",
    "Parameter",
    "ReLU",
    "SGD",
    "Sequential",
    "Tensor",
    "concatenate",
    "functional",
    "kaiming_uniform",
    "ones",
    "stack",
    "xavier_normal",
    "xavier_uniform",
    "zeros",
]
