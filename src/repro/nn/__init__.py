"""``repro.nn`` — a NumPy reverse-mode autograd neural-network substrate.

Substitute for PyTorch: tensors with automatic differentiation, standard
layers (Linear/MLP/Dropout/Embedding), MSE loss and the Adam optimizer — the
pieces the ParaGraph GNN and the COMPOFF baseline are built from.

Inference fast path: :func:`no_grad` disables closure/graph recording,
:func:`default_dtype` switches serving forwards to float32, and
:func:`parameters_as` temporarily views a module's parameters in a cast
dtype (restoring the float64 originals bit-exactly).  Segment reductions
(``scatter_add``) route through cached sparse scatter matrices when scipy
is present.
"""

from . import functional
from .init import kaiming_uniform, xavier_normal, xavier_uniform
from .layers import MLP, Dropout, Embedding, Linear, ReLU, Sequential
from .losses import HuberLoss, MAELoss, MSELoss
from .module import Module, Parameter, parameters_as
from .optim import Adam, Optimizer, SGD
from .tensor import (
    Tensor,
    concatenate,
    default_dtype,
    get_default_dtype,
    is_grad_enabled,
    no_grad,
    ones,
    set_default_dtype,
    stack,
    zeros,
)

__all__ = [
    "Adam",
    "Dropout",
    "Embedding",
    "HuberLoss",
    "Linear",
    "MAELoss",
    "MLP",
    "MSELoss",
    "Module",
    "Optimizer",
    "Parameter",
    "ReLU",
    "SGD",
    "Sequential",
    "Tensor",
    "concatenate",
    "default_dtype",
    "functional",
    "get_default_dtype",
    "is_grad_enabled",
    "kaiming_uniform",
    "no_grad",
    "ones",
    "parameters_as",
    "set_default_dtype",
    "stack",
    "xavier_normal",
    "xavier_uniform",
    "zeros",
]
