"""Standard layers: Linear, MLP, Dropout, Embedding, Sequential.

These cover everything the ParaGraph model head and the COMPOFF baseline
need: fully-connected layers with ReLU activations (the paper uses two FC
layers after the graph convolutions, one FC layer to embed the teams/threads
features, and a final FC layer for the runtime prediction).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from . import functional as F
from . import init
from .module import Module, Parameter
from .tensor import Tensor, concatenate, is_inference


class Linear(Module):
    """Affine transformation ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        rng = rng or np.random.default_rng()
        self.weight = Parameter(init.kaiming_uniform((in_features, out_features), rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return f"Linear({self.in_features}, {self.out_features})"


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self.rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        # the inference fast path is always identity: the shared `training`
        # flag is not context-local, so a concurrent train()/eval() toggle
        # must not be able to switch dropout on under a serving forward
        if is_inference():
            return x
        return F.dropout(x, self.p, self.training, self.rng)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class Sequential(Module):
    """Apply child modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.layers: List[Module] = []
        for i, module in enumerate(modules):
            self.register_module(f"layer{i}", module)
            self.layers.append(module)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.layers:
            x = module(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)


class MLP(Module):
    """A stack of Linear + ReLU layers ending with a plain Linear.

    ``hidden_dims`` gives the widths of the hidden layers; the output layer
    maps to ``out_features`` without a non-linearity (regression head).
    """

    def __init__(
        self,
        in_features: int,
        hidden_dims: Sequence[int],
        out_features: int,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        dims = [in_features] + list(hidden_dims)
        modules: List[Module] = []
        for i in range(len(dims) - 1):
            modules.append(Linear(dims[i], dims[i + 1], rng=rng))
            modules.append(ReLU())
            if dropout > 0:
                modules.append(Dropout(dropout, rng=rng))
        modules.append(Linear(dims[-1], out_features, rng=rng))
        self.body = Sequential(*modules)

    def forward(self, x: Tensor) -> Tensor:
        return self.body(x)


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(rng.normal(0.0, 0.1, size=(num_embeddings, embedding_dim)))

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.min(initial=0) < 0 or indices.max(initial=0) >= self.num_embeddings:
            raise IndexError("embedding index out of range")
        return self.weight.index_select(indices)
