"""Scoped, re-entrant engine state: the :class:`InferenceContext` substrate.

Before this module existed the engine kept its inference state in process
globals (``Tensor.inference``, a module-level default dtype, and parameter
arrays mutated in place by ``parameters_as``), which made every serving
forward a critical section: two threads predicting concurrently would leak
dtype and no-grad state into each other.  All of that state now lives in
:mod:`contextvars` variables:

* **gradient recording** — ``no_grad`` flips a context-local flag, so one
  thread running an inference forward never disables autodiff for another
  thread training in parallel,
* **default dtype** — ``default_dtype(np.float32)`` overlays the dtype for
  the current context only; the process-wide *base* default (mutated by the
  legacy :func:`repro.nn.set_default_dtype`) is untouched,
* **parameter dtype overlay** — ``parameters_as`` publishes a dtype through
  :data:`_PARAM_DTYPE`; :class:`~repro.nn.module.Parameter` reads resolve to
  memoized, read-only cast views while the overlay is active and the stored
  float64 arrays are never modified,
* **serving scope** — :func:`serving_scope` marks "a serving runtime owns
  this context"; :func:`repro.nn.set_default_dtype` emits a
  ``DeprecationWarning`` when library code tries to mutate the process-wide
  default underneath it.

A newly started thread begins from every contextvar's *default* (no state
crosses thread boundaries), which is exactly the isolation the
:mod:`repro.serve` worker pool needs: every worker enters its own
:class:`InferenceContext` per micro-batch and no cross-worker state exists
at all.

This module is imported by :mod:`repro.nn.tensor` and must stay free of
``repro`` imports.
"""

from __future__ import annotations

import threading as _threading
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Optional

import numpy as np

__all__ = [
    "InferenceContext",
    "current_default_dtype",
    "grad_recording_enabled",
    "parameter_dtype",
    "serving_active",
    "serving_scope",
]

#: ``True`` while a :func:`repro.nn.no_grad` / :class:`InferenceContext`
#: block is active in the *current* context — ops then skip closure/graph
#: recording.  Context-local: other threads keep recording.
_INFERENCE: "ContextVar[bool]" = ContextVar("repro_nn_inference", default=False)

#: context-local default-dtype overlay (``None`` → fall back to the
#: process-wide base default below).
_DTYPE_OVERRIDE: "ContextVar[Optional[np.dtype]]" = ContextVar(
    "repro_nn_default_dtype", default=None)

#: context-local parameter-view overlay (``None`` → parameters read their
#: stored arrays).  The value is ``(default_dtype, per_param)``: the
#: context-wide dtype every Parameter resolves to (``None`` for "no blanket
#: cast") plus a mapping of ``id(parameter) -> dtype`` for module-scoped
#: :func:`repro.nn.module.parameters_as` overlays.  See
#: :class:`repro.nn.module.Parameter`.
_PARAM_DTYPE: "ContextVar[Optional[tuple]]" = ContextVar(
    "repro_nn_param_dtype", default=None)

#: nesting depth of active serving scopes in the current context.
_SERVING_DEPTH: "ContextVar[int]" = ContextVar("repro_nn_serving_depth", default=0)

#: the process-wide *base* default dtype; only the legacy, user-facing
#: :func:`repro.nn.set_default_dtype` mutates it.
_BASE_DTYPE: np.dtype = np.dtype(np.float64)


def _validate_float_dtype(dtype) -> np.dtype:
    dtype = np.dtype(dtype)
    if dtype.kind != "f":
        raise TypeError(f"default dtype must be a float dtype, got {dtype}")
    return dtype


def grad_recording_enabled() -> bool:
    """Whether ops record backward closures in the current context."""
    return not _INFERENCE.get()


def current_default_dtype() -> np.dtype:
    """The dtype new tensors default to in the current context."""
    override = _DTYPE_OVERRIDE.get()
    return override if override is not None else _BASE_DTYPE


def parameter_dtype() -> Optional[tuple]:
    """The active parameter-view overlay ``(default_dtype, per_param)``,
    or ``None`` when parameters read their stored arrays."""
    return _PARAM_DTYPE.get()


def set_base_dtype(dtype) -> np.dtype:
    """Mutate the process-wide base default dtype; returns the previous one."""
    global _BASE_DTYPE
    previous = _BASE_DTYPE
    _BASE_DTYPE = _validate_float_dtype(dtype)
    return previous


def serving_active() -> bool:
    """Whether a serving runtime owns the current context."""
    return _SERVING_DEPTH.get() > 0


@contextmanager
def serving_scope():
    """Mark the current context as serving-owned (re-entrant).

    The :mod:`repro.serve` workers and the :class:`repro.api.Session`
    serving facade wrap request execution in this scope; inside it,
    mutating process-global engine state (``set_default_dtype``) raises a
    ``DeprecationWarning`` because the scoped equivalents are the supported
    mechanism.
    """
    token = _SERVING_DEPTH.set(_SERVING_DEPTH.get() + 1)
    try:
        yield
    finally:
        _SERVING_DEPTH.reset(token)


class InferenceContext:
    """One scoped bundle of engine inference state (re-entrant, thread-safe).

    Entering the context switches the *current execution context only* to:

    * no-grad forwards (unless ``grad=True``),
    * *dtype* as the default for newly created tensors (when given),
    * *dtype* views for every :class:`~repro.nn.module.Parameter` read
      (when given) — immutable memoized casts, never in-place mutation,
    * optionally a serving scope (``serving=True``).

    ``InferenceContext(dtype=np.float32)`` is the serving configuration;
    ``InferenceContext()`` is plain float64 ``no_grad``.  Because every bit
    of state is contextvar-backed, any number of threads can hold distinct
    ``InferenceContext``\\ s at once and training code on other threads keeps
    recording gradients in float64.  One instance may be entered
    re-entrantly and even shared across threads (the enter/exit token
    stacks are thread-local — contextvar tokens must be reset in the
    thread that created them).
    """

    def __init__(self, dtype=None, grad: bool = False,
                 serving: bool = False) -> None:
        self.dtype = None if dtype is None else _validate_float_dtype(dtype)
        self.grad = bool(grad)
        self.serving = bool(serving)
        self._stacks = _threading.local()

    def __enter__(self) -> "InferenceContext":
        tokens = []
        if not self.grad:
            tokens.append((_INFERENCE, _INFERENCE.set(True)))
        if self.dtype is not None:
            tokens.append((_DTYPE_OVERRIDE, _DTYPE_OVERRIDE.set(self.dtype)))
            # blanket overlay: every Parameter read in this context resolves
            # to self.dtype (serving runs exactly one model per context)
            tokens.append((_PARAM_DTYPE, _PARAM_DTYPE.set((self.dtype, {}))))
        if self.serving:
            tokens.append((_SERVING_DEPTH, _SERVING_DEPTH.set(_SERVING_DEPTH.get() + 1)))
        stack = getattr(self._stacks, "tokens", None)
        if stack is None:
            stack = self._stacks.tokens = []
        stack.append(tokens)
        return self

    def __exit__(self, *exc) -> None:
        for var, token in reversed(self._stacks.tokens.pop()):
            var.reset(token)
