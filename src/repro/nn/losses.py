"""Loss functions as modules (the paper trains with Mean Squared Error)."""

from __future__ import annotations

from . import functional as F
from .module import Module
from .tensor import Tensor


class MSELoss(Module):
    """Mean squared error — the loss used to train the ParaGraph model."""

    def forward(self, prediction: Tensor, target: Tensor) -> Tensor:
        return F.mse_loss(prediction, target)


class MAELoss(Module):
    """Mean absolute error (used in some evaluation diagnostics)."""

    def forward(self, prediction: Tensor, target: Tensor) -> Tensor:
        return F.mae_loss(prediction, target)


class HuberLoss(Module):
    """Huber loss; robust alternative for heavy-tailed runtimes."""

    def __init__(self, delta: float = 1.0) -> None:
        super().__init__()
        self.delta = delta

    def forward(self, prediction: Tensor, target: Tensor) -> Tensor:
        return F.huber_loss(prediction, target, self.delta)
