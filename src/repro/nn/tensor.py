"""A small reverse-mode automatic-differentiation engine on NumPy arrays.

The original ParaGraph model is implemented with PyTorch / PyTorch-Geometric,
which are not available offline.  This module provides the subset of a tensor
library that the reproduction needs:

* :class:`Tensor` — wraps a ``numpy.ndarray``, records the operations applied
  to it and can back-propagate gradients through them,
* elementwise arithmetic with full broadcasting support,
* matrix multiplication, reductions, reshaping, concatenation,
* the gather / scatter-add primitives required by message-passing GNNs.

The engine is deliberately eager and single-threaded: graphs in this problem
have a few hundred nodes, so clarity and correctness win over micro-
optimization (per the HPC-Python guides: vectorize with NumPy, avoid copies,
profile before optimizing further).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union["Tensor", np.ndarray, float, int, Sequence]


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce *grad* so it matches *shape* (inverse of NumPy broadcasting)."""
    if grad.shape == shape:
        return grad
    # sum over leading broadcast dimensions
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # sum over axes that were broadcast from size 1
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A differentiable NumPy array."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "_op")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _children: Tuple["Tensor", ...] = (),
        _op: str = "",
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._backward: Callable[[], None] = lambda: None
        self._prev: Tuple[Tensor, ...] = _children
        self._op = _op

    # ------------------------------------------------------------------ #
    # basics
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size else 0.0

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad = self.grad + grad

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}, op={self._op!r})"

    # ------------------------------------------------------------------ #
    # autograd
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Back-propagate from this tensor (defaults to d(self)/d(self)=1)."""
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)
        # topological order over the recorded graph
        topo: List[Tensor] = []
        visited = set()

        def build(node: "Tensor") -> None:
            if id(node) in visited:
                return
            visited.add(id(node))
            for child in node._prev:
                build(child)
            topo.append(node)

        build(self)
        self._accumulate(grad)
        for node in reversed(topo):
            node._backward()

    @staticmethod
    def _wrap(value: ArrayLike) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(self, data: np.ndarray, children: Tuple["Tensor", ...], op: str) -> "Tensor":
        requires = any(c.requires_grad for c in children)
        return Tensor(data, requires_grad=requires, _children=children if requires else (), _op=op)

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)
        out = self._make(self.data + other.data, (self, other), "add")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(out.grad, other.shape))

        out._backward = _backward
        return out

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)
        out = self._make(self.data * other.data, (self, other), "mul")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(out.grad * self.data, other.shape))

        out._backward = _backward
        return out

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-self._wrap(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._wrap(other) + (-self)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        return self * self._wrap(other).pow(-1.0)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._wrap(other) * self.pow(-1.0)

    __radd__ = __add__
    __rmul__ = __mul__

    def pow(self, exponent: float) -> "Tensor":
        out = self._make(np.power(self.data, exponent), (self,), "pow")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * exponent * np.power(self.data, exponent - 1))

        out._backward = _backward
        return out

    def __pow__(self, exponent: float) -> "Tensor":
        return self.pow(exponent)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)
        out = self._make(self.data @ other.data, (self, other), "matmul")

        def _backward() -> None:
            if self.requires_grad:
                grad = out.grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                grad = np.swapaxes(self.data, -1, -2) @ out.grad
                other._accumulate(_unbroadcast(grad, other.shape))

        out._backward = _backward
        return out

    def matmul(self, other: ArrayLike) -> "Tensor":
        return self @ other

    # ------------------------------------------------------------------ #
    # elementwise non-linearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out = self._make(np.exp(self.data), (self,), "exp")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * out.data)

        out._backward = _backward
        return out

    def log(self, eps: float = 1e-12) -> "Tensor":
        out = self._make(np.log(self.data + eps), (self,), "log")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad / (self.data + eps))

        out._backward = _backward
        return out

    def relu(self) -> "Tensor":
        out = self._make(np.maximum(self.data, 0.0), (self,), "relu")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * (self.data > 0))

        out._backward = _backward
        return out

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        out = self._make(
            np.where(self.data > 0, self.data, negative_slope * self.data),
            (self,), "leaky_relu",
        )

        def _backward() -> None:
            if self.requires_grad:
                factor = np.where(self.data > 0, 1.0, negative_slope)
                self._accumulate(out.grad * factor)

        out._backward = _backward
        return out

    def sigmoid(self) -> "Tensor":
        value = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60, 60)))
        out = self._make(value, (self,), "sigmoid")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * out.data * (1.0 - out.data))

        out._backward = _backward
        return out

    def tanh(self) -> "Tensor":
        value = np.tanh(self.data)
        out = self._make(value, (self,), "tanh")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * (1.0 - out.data ** 2))

        out._backward = _backward
        return out

    def abs(self) -> "Tensor":
        out = self._make(np.abs(self.data), (self,), "abs")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * np.sign(self.data))

        out._backward = _backward
        return out

    def clip(self, low: float, high: float) -> "Tensor":
        out = self._make(np.clip(self.data, low, high), (self,), "clip")

        def _backward() -> None:
            if self.requires_grad:
                inside = (self.data >= low) & (self.data <= high)
                self._accumulate(out.grad * inside)

        out._backward = _backward
        return out

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = self._make(self.data.sum(axis=axis, keepdims=keepdims), (self,), "sum")

        def _backward() -> None:
            if not self.requires_grad:
                return
            grad = out.grad
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(grad, self.shape).copy())

        out._backward = _backward
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        denom = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / denom)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = self._make(self.data.max(axis=axis, keepdims=keepdims), (self,), "max")

        def _backward() -> None:
            if not self.requires_grad:
                return
            grad = out.grad
            value = out.data
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
                value = np.expand_dims(value, axis)
            mask = (self.data == value)
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(grad * mask / np.maximum(counts, 1))

        out._backward = _backward
        return out

    # ------------------------------------------------------------------ #
    # shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = self._make(self.data.reshape(shape), (self,), "reshape")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad.reshape(self.shape))

        out._backward = _backward
        return out

    def transpose(self, axes: Optional[Tuple[int, ...]] = None) -> "Tensor":
        out = self._make(np.transpose(self.data, axes), (self,), "transpose")

        def _backward() -> None:
            if self.requires_grad:
                if axes is None:
                    self._accumulate(np.transpose(out.grad))
                else:
                    inverse = np.argsort(axes)
                    self._accumulate(np.transpose(out.grad, inverse))

        out._backward = _backward
        return out

    def __getitem__(self, index) -> "Tensor":
        out = self._make(self.data[index], (self,), "getitem")

        def _backward() -> None:
            if self.requires_grad:
                grad = np.zeros_like(self.data)
                np.add.at(grad, index, out.grad)
                self._accumulate(grad)

        out._backward = _backward
        return out

    # ------------------------------------------------------------------ #
    # graph primitives
    # ------------------------------------------------------------------ #
    def index_select(self, indices: np.ndarray) -> "Tensor":
        """Gather rows (first axis) at integer *indices* (differentiable)."""
        indices = np.asarray(indices, dtype=np.int64)
        out = self._make(self.data[indices], (self,), "index_select")

        def _backward() -> None:
            if self.requires_grad:
                grad = np.zeros_like(self.data)
                np.add.at(grad, indices, out.grad)
                self._accumulate(grad)

        out._backward = _backward
        return out

    def scatter_add(self, indices: np.ndarray, num_segments: int) -> "Tensor":
        """Sum rows of ``self`` into ``num_segments`` buckets given by *indices*.

        ``out[k] = sum_{i : indices[i] == k} self[i]`` — the aggregation step
        of message passing and of global pooling.
        """
        indices = np.asarray(indices, dtype=np.int64)
        out_shape = (num_segments,) + self.data.shape[1:]
        data = np.zeros(out_shape, dtype=np.float64)
        np.add.at(data, indices, self.data)
        out = self._make(data, (self,), "scatter_add")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad[indices])

        out._backward = _backward
        return out


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation along *axis*."""
    tensors = [Tensor._wrap(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    requires = any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires,
                 _children=tuple(tensors) if requires else (), _op="concat")

    def _backward() -> None:
        offset = 0
        for tensor in tensors:
            length = tensor.data.shape[axis]
            slicer = [slice(None)] * data.ndim
            slicer[axis] = slice(offset, offset + length)
            if tensor.requires_grad:
                tensor._accumulate(out.grad[tuple(slicer)])
            offset += length

    out._backward = _backward
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stack along a new axis."""
    tensors = [Tensor._wrap(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)
    requires = any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires,
                 _children=tuple(tensors) if requires else (), _op="stack")

    def _backward() -> None:
        grads = np.split(out.grad, len(tensors), axis=axis)
        for tensor, grad in zip(tensors, grads):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(grad, axis=axis))

    out._backward = _backward
    return out


def zeros(shape: Tuple[int, ...], requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(shape: Tuple[int, ...], requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)
