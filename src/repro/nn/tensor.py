"""A small reverse-mode automatic-differentiation engine on NumPy arrays.

The original ParaGraph model is implemented with PyTorch / PyTorch-Geometric,
which are not available offline.  This module provides the subset of a tensor
library that the reproduction needs:

* :class:`Tensor` — wraps a ``numpy.ndarray``, records the operations applied
  to it and can back-propagate gradients through them,
* elementwise arithmetic with full broadcasting support,
* matrix multiplication (with batched/broadcast operands, which is what the
  stacked per-relation GNN projections ride on), reductions, reshaping,
  concatenation,
* the gather / scatter-add primitives required by message-passing GNNs,
* an **inference fast path**: inside :func:`no_grad` no operation records a
  backward closure or keeps references to its inputs, so a forward pass
  allocates only its output arrays, and :func:`default_dtype` switches newly
  created tensors to ``float32`` for serving (training stays ``float64`` for
  numerical parity with the reference results).

The engine is eager, and the hot paths are tuned: the backward pass orders
the graph with an iterative topological sort (no recursion limit on deep
graphs), gradients accumulate into preallocated buffers in place, and the
gather/scatter primitives write straight into their destination buffers
instead of materialising intermediate copies.

All inference/dtype state is **context-local** (contextvar-backed, see
:mod:`repro.nn.context`): ``no_grad`` and ``default_dtype`` scope to the
current thread/task, so any number of serving workers can run concurrent
forwards — in different dtypes — while a training loop keeps recording
float64 gradients on another thread (on its own model: weights of a model
being actively optimized are not a stable snapshot to serve from).  The
process-wide caches (the scatter matrices below) are lock-protected.
"""

from __future__ import annotations

import hashlib
import threading
import warnings
from collections import OrderedDict
from typing import (Callable, Iterable, List, NamedTuple, Optional, Sequence,
                    Tuple, Union)

import numpy as np

from .context import (
    _DTYPE_OVERRIDE,
    _INFERENCE,
    current_default_dtype,
    serving_active,
    set_base_dtype,
)

try:                                    # scipy is optional: scatter_add falls
    from scipy import sparse as _sparse  # back to np.add.at without it
except ImportError:                     # pragma: no cover - env without scipy
    _sparse = None

ArrayLike = Union["Tensor", np.ndarray, float, int, Sequence]


# --------------------------------------------------------------------- #
# engine state: gradient recording and default dtype (context-local; the
# contextvars themselves live in repro.nn.context)
# --------------------------------------------------------------------- #
def get_default_dtype() -> np.dtype:
    """The dtype newly created tensors are coerced to in this context."""
    return current_default_dtype()


def set_default_dtype(dtype) -> np.dtype:
    """Set the **process-wide** base default dtype; returns the previous one.

    Legacy, user-facing shim.  It mutates global state, which is exactly
    what the scoped engine exists to avoid: library code must use
    :class:`default_dtype` / :class:`~repro.nn.context.InferenceContext`
    instead, and calling this while a serving runtime owns the current
    context emits a ``DeprecationWarning`` (the mutation still happens, but
    active context overlays keep taking precedence over it).
    """
    if serving_active():
        warnings.warn(
            "set_default_dtype mutates the process-wide default dtype inside "
            "an active serving context; use the scoped repro.nn.default_dtype "
            "/ InferenceContext instead — the serving runtime's own dtype "
            "overlay takes precedence over this call",
            DeprecationWarning, stacklevel=2)
    return set_base_dtype(dtype)


class default_dtype:
    """Context manager that switches the default tensor dtype *in context*.

    ``with default_dtype(np.float32): ...`` makes every tensor created inside
    the block (inputs, wrapped constants, masks) float32, which is the
    serving configuration.  The switch is contextvar-backed: it scopes to
    the current thread/task only, so concurrent training code elsewhere
    stays float64.
    """

    def __init__(self, dtype) -> None:
        self.dtype = np.dtype(dtype)
        if self.dtype.kind != "f":
            raise TypeError(f"default dtype must be a float dtype, got {self.dtype}")
        # per-thread token stacks: contextvar tokens must be reset by the
        # thread that created them, and one instance may be shared
        self._stacks = threading.local()

    def __enter__(self) -> "default_dtype":
        stack = getattr(self._stacks, "tokens", None)
        if stack is None:
            stack = self._stacks.tokens = []
        stack.append(_DTYPE_OVERRIDE.set(self.dtype))
        return self

    def __exit__(self, *exc) -> None:
        _DTYPE_OVERRIDE.reset(self._stacks.tokens.pop())


def is_grad_enabled() -> bool:
    """Whether operations record backward closures in the current context."""
    return not _INFERENCE.get()


def is_inference() -> bool:
    """Whether the current context is on the no-grad inference fast path."""
    return _INFERENCE.get()


class no_grad:
    """Context manager disabling autodiff recording (the inference fast path).

    Inside the block every operation skips closure/graph recording: outputs
    carry ``requires_grad=False``, keep no references to their inputs, and
    ``backward()`` on them is a no-op.  Nesting is supported, and the flag
    is context-local — other threads keep recording gradients.
    """

    def __init__(self) -> None:
        self._stacks = threading.local()

    def __enter__(self) -> "no_grad":
        stack = getattr(self._stacks, "tokens", None)
        if stack is None:
            stack = self._stacks.tokens = []
        stack.append(_INFERENCE.set(True))
        return self

    def __exit__(self, *exc) -> None:
        _INFERENCE.reset(self._stacks.tokens.pop())


def _noop() -> None:
    return None


# --------------------------------------------------------------------- #
# cached scatter matrices: segment-sum as a sparse matmul
# --------------------------------------------------------------------- #
#: LRU of CSR matrices mapping per-row indices to segment sums.  ``np.add.at``
#: is unbuffered and an order of magnitude slower than a sparse matmul for the
#: (edges × features) messages the GNN aggregates; the matrix for a given
#: index vector is built once and reused across layers/epochs/predictions.
#: Shared across serving workers, so every access holds the lock.
_SCATTER_MATRIX_CACHE: "OrderedDict[tuple, object]" = OrderedDict()
_SCATTER_MATRIX_CAPACITY = 64
_SCATTER_MATRIX_LOCK = threading.Lock()
# hit/miss/eviction accounting (mutated under the lock) — surfaced by
# scatter_matrix_cache_info() and the repro.obs snapshot document
_SCATTER_MATRIX_STATS = {"hits": 0, "misses": 0, "evictions": 0}


class ScatterMatrixCacheInfo(NamedTuple):
    """Hit/miss/eviction statistics of the scatter-matrix LRU."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int


def scatter_matrix_cache_info() -> ScatterMatrixCacheInfo:
    """A coherent snapshot of the process-wide scatter-matrix cache."""
    with _SCATTER_MATRIX_LOCK:
        return ScatterMatrixCacheInfo(
            hits=_SCATTER_MATRIX_STATS["hits"],
            misses=_SCATTER_MATRIX_STATS["misses"],
            evictions=_SCATTER_MATRIX_STATS["evictions"],
            size=len(_SCATTER_MATRIX_CACHE),
            capacity=_SCATTER_MATRIX_CAPACITY)

#: minimum number of scattered elements before the sparse-matmul path kicks
#: in — below this np.add.at wins because the matmul setup dominates.
_SCATTER_MATMUL_THRESHOLD = 16384


def scatter_matrix(indices: np.ndarray, num_segments: int, dtype) -> Optional[object]:
    """A cached ``(num_segments, len(indices))`` CSR summation matrix.

    ``scatter_matrix(i, S, d) @ values`` equals ``np.add.at``-style segment
    summation of ``values`` (2-D, one row per index).  Returns ``None`` when
    scipy is unavailable.  Keys are content digests, so equal index vectors
    share one matrix regardless of array identity.
    """
    if _sparse is None:
        return None
    dtype = np.dtype(dtype)
    digest = hashlib.blake2b(np.ascontiguousarray(indices, dtype=np.int64).tobytes(),
                             digest_size=16).digest()
    key = (digest, int(num_segments), dtype.str)
    with _SCATTER_MATRIX_LOCK:
        matrix = _SCATTER_MATRIX_CACHE.get(key)
        if matrix is not None:
            _SCATTER_MATRIX_CACHE.move_to_end(key)
            _SCATTER_MATRIX_STATS["hits"] += 1
            return matrix
        _SCATTER_MATRIX_STATS["misses"] += 1
    # build outside the lock: concurrent misses duplicate the (idempotent)
    # construction instead of serialising every worker behind one builder
    num_rows = int(indices.shape[0])
    matrix = _sparse.csr_matrix(
        (np.ones(num_rows, dtype=dtype), (indices, np.arange(num_rows))),
        shape=(int(num_segments), num_rows))
    with _SCATTER_MATRIX_LOCK:
        existing = _SCATTER_MATRIX_CACHE.get(key)
        if existing is not None:
            _SCATTER_MATRIX_CACHE.move_to_end(key)
            return existing
        _SCATTER_MATRIX_CACHE[key] = matrix
        while len(_SCATTER_MATRIX_CACHE) > _SCATTER_MATRIX_CAPACITY:
            _SCATTER_MATRIX_CACHE.popitem(last=False)
            _SCATTER_MATRIX_STATS["evictions"] += 1
    return matrix


def segment_sum_data(values: np.ndarray, indices: np.ndarray,
                     num_segments: int) -> np.ndarray:
    """Segment-sum a plain array: ``out[k] = sum_{i: indices[i]==k} values[i]``.

    Uses the cached sparse matmul for large inputs and ``np.add.at`` for
    small ones (or when scipy is missing).
    """
    out_shape = (int(num_segments),) + values.shape[1:]
    if values.size >= _SCATTER_MATMUL_THRESHOLD and values.ndim >= 2 and values.shape[0]:
        matrix = scatter_matrix(indices, num_segments, values.dtype)
        if matrix is not None:
            flat = values.reshape(values.shape[0], -1)
            return np.asarray(matrix @ flat).reshape(out_shape)
    out = np.zeros(out_shape, dtype=values.dtype)
    np.add.at(out, indices, values)
    return out


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce *grad* so it matches *shape* (inverse of NumPy broadcasting)."""
    if grad.shape == shape:
        return grad
    # sum over leading broadcast dimensions
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # sum over axes that were broadcast from size 1
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class _TensorMeta(type):
    """Routes the legacy ``Tensor.inference`` class flag to the contextvar.

    Pre-refactor code (and tests) read/wrote ``Tensor.inference`` as a
    process-global switch; the property keeps that spelling working while
    the actual state is context-local.
    """

    @property
    def inference(cls) -> bool:
        return _INFERENCE.get()

    @inference.setter
    def inference(cls, value: bool) -> None:
        _INFERENCE.set(bool(value))


class Tensor(metaclass=_TensorMeta):
    """A differentiable NumPy array."""

    __slots__ = ("data", "grad", "requires_grad", "_backward_fn", "_prev", "_op")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _children: Tuple["Tensor", ...] = (),
        _op: str = "",
        dtype=None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=dtype or current_default_dtype())
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._backward_fn: Callable[[], None] = _noop
        self._prev: Tuple[Tensor, ...] = _children
        self._op = _op

    @property
    def _backward(self) -> Callable[[], None]:
        return self._backward_fn

    @_backward.setter
    def _backward(self, fn: Callable[[], None]) -> None:
        # ops assign their backward closure unconditionally; recording is
        # decided here, so non-recording tensors (inference mode / constant
        # subgraphs) never keep a closure — and therefore no reference to
        # their inputs — alive
        if self._prev:
            self._backward_fn = fn

    # ------------------------------------------------------------------ #
    # basics
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size else 0.0

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False, dtype=self.data.dtype)

    def zero_grad(self) -> None:
        self.grad = None

    def _accumulate(self, grad: np.ndarray) -> None:
        # grads accumulate into one preallocated buffer (no copy per op);
        # callers pass grads broadcastable to self.shape
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        np.add(self.grad, grad, out=self.grad)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}, op={self._op!r})"

    # ------------------------------------------------------------------ #
    # autograd
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Back-propagate from this tensor (defaults to d(self)/d(self)=1)."""
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
        # iterative topological sort over the recorded graph — deep chains
        # (long training graphs) must not hit the Python recursion limit
        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for child in node._prev:
                if id(child) not in visited:
                    stack.append((child, False))
        self._accumulate(grad)
        for node in reversed(topo):
            node._backward()

    @staticmethod
    def _wrap(value: ArrayLike) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(self, data: np.ndarray, children: Tuple["Tensor", ...], op: str) -> "Tensor":
        if _INFERENCE.get():
            return Tensor(data, dtype=data.dtype)
        requires = any(c.requires_grad for c in children)
        return Tensor(data, requires_grad=requires, _children=children if requires else (),
                      _op=op, dtype=data.dtype)

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)
        out = self._make(self.data + other.data, (self, other), "add")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(out.grad, other.shape))

        out._backward = _backward
        return out

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)
        out = self._make(self.data * other.data, (self, other), "mul")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(out.grad * self.data, other.shape))

        out._backward = _backward
        return out

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-self._wrap(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._wrap(other) + (-self)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        return self * self._wrap(other).pow(-1.0)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._wrap(other) * self.pow(-1.0)

    __radd__ = __add__
    __rmul__ = __mul__

    def pow(self, exponent: float) -> "Tensor":
        out = self._make(np.power(self.data, exponent), (self,), "pow")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * exponent * np.power(self.data, exponent - 1))

        out._backward = _backward
        return out

    def __pow__(self, exponent: float) -> "Tensor":
        return self.pow(exponent)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)
        out = self._make(self.data @ other.data, (self, other), "matmul")

        def _backward() -> None:
            if self.requires_grad:
                grad = out.grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                grad = np.swapaxes(self.data, -1, -2) @ out.grad
                other._accumulate(_unbroadcast(grad, other.shape))

        out._backward = _backward
        return out

    def matmul(self, other: ArrayLike) -> "Tensor":
        return self @ other

    # ------------------------------------------------------------------ #
    # elementwise non-linearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out = self._make(np.exp(self.data), (self,), "exp")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * out.data)

        out._backward = _backward
        return out

    def log(self, eps: float = 1e-12) -> "Tensor":
        out = self._make(np.log(self.data + eps), (self,), "log")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad / (self.data + eps))

        out._backward = _backward
        return out

    def relu(self) -> "Tensor":
        out = self._make(np.maximum(self.data, 0.0), (self,), "relu")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * (self.data > 0))

        out._backward = _backward
        return out

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        out = self._make(
            np.where(self.data > 0, self.data, negative_slope * self.data),
            (self,), "leaky_relu",
        )

        def _backward() -> None:
            if self.requires_grad:
                factor = np.where(self.data > 0, 1.0, negative_slope)
                self._accumulate(out.grad * factor)

        out._backward = _backward
        return out

    def sigmoid(self) -> "Tensor":
        value = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60, 60)))
        out = self._make(value, (self,), "sigmoid")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * out.data * (1.0 - out.data))

        out._backward = _backward
        return out

    def tanh(self) -> "Tensor":
        value = np.tanh(self.data)
        out = self._make(value, (self,), "tanh")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * (1.0 - out.data ** 2))

        out._backward = _backward
        return out

    def abs(self) -> "Tensor":
        out = self._make(np.abs(self.data), (self,), "abs")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * np.sign(self.data))

        out._backward = _backward
        return out

    def clip(self, low: float, high: float) -> "Tensor":
        out = self._make(np.clip(self.data, low, high), (self,), "clip")

        def _backward() -> None:
            if self.requires_grad:
                inside = (self.data >= low) & (self.data <= high)
                self._accumulate(out.grad * inside)

        out._backward = _backward
        return out

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = self._make(self.data.sum(axis=axis, keepdims=keepdims), (self,), "sum")

        def _backward() -> None:
            if not self.requires_grad:
                return
            grad = out.grad
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
            # np.add broadcasts the view into the buffer — no materialised copy
            self._accumulate(np.broadcast_to(grad, self.shape))

        out._backward = _backward
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        denom = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / denom)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = self._make(self.data.max(axis=axis, keepdims=keepdims), (self,), "max")

        def _backward() -> None:
            if not self.requires_grad:
                return
            grad = out.grad
            value = out.data
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
                value = np.expand_dims(value, axis)
            mask = (self.data == value)
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(grad * mask / np.maximum(counts, 1))

        out._backward = _backward
        return out

    # ------------------------------------------------------------------ #
    # shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = self._make(self.data.reshape(shape), (self,), "reshape")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad.reshape(self.shape))

        out._backward = _backward
        return out

    def transpose(self, axes: Optional[Tuple[int, ...]] = None) -> "Tensor":
        out = self._make(np.transpose(self.data, axes), (self,), "transpose")

        def _backward() -> None:
            if self.requires_grad:
                if axes is None:
                    self._accumulate(np.transpose(out.grad))
                else:
                    inverse = np.argsort(axes)
                    self._accumulate(np.transpose(out.grad, inverse))

        out._backward = _backward
        return out

    def __getitem__(self, index) -> "Tensor":
        out = self._make(self.data[index], (self,), "getitem")

        def _backward() -> None:
            if self.requires_grad:
                if self.grad is None:
                    self.grad = np.zeros_like(self.data)
                # scatter straight into the accumulation buffer
                np.add.at(self.grad, index, out.grad)

        out._backward = _backward
        return out

    # ------------------------------------------------------------------ #
    # graph primitives
    # ------------------------------------------------------------------ #
    def index_select(self, indices: np.ndarray) -> "Tensor":
        """Gather rows (first axis) at integer *indices* (differentiable)."""
        indices = np.asarray(indices, dtype=np.int64)
        out = self._make(self.data[indices], (self,), "index_select")

        def _backward() -> None:
            if self.requires_grad:
                if self.grad is None:
                    self.grad = np.zeros_like(self.data)
                # scatter straight into the accumulation buffer
                np.add.at(self.grad, indices, out.grad)

        out._backward = _backward
        return out

    def scatter_add(self, indices: np.ndarray, num_segments: int) -> "Tensor":
        """Sum rows of ``self`` into ``num_segments`` buckets given by *indices*.

        ``out[k] = sum_{i : indices[i] == k} self[i]`` — the aggregation step
        of message passing and of global pooling.
        """
        indices = np.asarray(indices, dtype=np.int64)
        data = segment_sum_data(self.data, indices, num_segments)
        out = self._make(data, (self,), "scatter_add")

        def _backward() -> None:
            if self.requires_grad:
                if self.grad is None:
                    # fancy indexing already yields a fresh buffer we can own
                    self.grad = out.grad[indices]
                else:
                    np.add(self.grad, out.grad[indices], out=self.grad)

        out._backward = _backward
        return out


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation along *axis*."""
    tensors = [Tensor._wrap(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    requires = is_grad_enabled() and any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires,
                 _children=tuple(tensors) if requires else (), _op="concat",
                 dtype=data.dtype)

    def _backward() -> None:
        offset = 0
        for tensor in tensors:
            length = tensor.data.shape[axis]
            slicer = [slice(None)] * data.ndim
            slicer[axis] = slice(offset, offset + length)
            if tensor.requires_grad:
                tensor._accumulate(out.grad[tuple(slicer)])
            offset += length

    out._backward = _backward
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stack along a new axis."""
    tensors = [Tensor._wrap(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)
    requires = is_grad_enabled() and any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires,
                 _children=tuple(tensors) if requires else (), _op="stack",
                 dtype=data.dtype)

    def _backward() -> None:
        grads = np.split(out.grad, len(tensors), axis=axis)
        for tensor, grad in zip(tensors, grads):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(grad, axis=axis))

    out._backward = _backward
    return out


def zeros(shape: Tuple[int, ...], requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(shape: Tuple[int, ...], requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)
