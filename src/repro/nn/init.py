"""Weight-initialization schemes (Glorot/Xavier, Kaiming/He, uniform)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def xavier_uniform(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None,
                   gain: float = 1.0) -> np.ndarray:
    """Glorot uniform initialization, appropriate before tanh/linear layers."""
    rng = rng or np.random.default_rng()
    fan_in, fan_out = _fans(shape)
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def xavier_normal(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None,
                  gain: float = 1.0) -> np.ndarray:
    """Glorot normal initialization."""
    rng = rng or np.random.default_rng()
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """He uniform initialization, appropriate before ReLU layers."""
    rng = rng or np.random.default_rng()
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / max(fan_in, 1))
    return rng.uniform(-limit, limit, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[:-1]))
    fan_out = int(shape[-1])
    return max(fan_in, 1), max(fan_out, 1)
