"""Optimizers: SGD (with momentum) and Adam (the paper's optimizer)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from .module import Parameter


class Optimizer:
    """Base class holding the parameter list and the zero-grad helper."""

    def __init__(self, parameters: Iterable[Parameter]) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.grad = None

    def step(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def _grad(self, parameter: Parameter) -> np.ndarray:
        return parameter.grad if parameter.grad is not None else np.zeros_like(parameter.data)


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-2,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for parameter in self.parameters:
            grad = self._grad(parameter)
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            if self.momentum:
                velocity = self._velocity.get(id(parameter))
                if velocity is None:
                    velocity = np.zeros_like(parameter.data)
                velocity = self.momentum * velocity + grad
                self._velocity[id(parameter)] = velocity
                grad = velocity
            parameter.data = parameter.data - self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) — the optimizer used in the paper (§IV-B)."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        for parameter in self.parameters:
            grad = self._grad(parameter)
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            m = self._m.get(id(parameter))
            v = self._v.get(id(parameter))
            if m is None:
                m = np.zeros_like(parameter.data)
                v = np.zeros_like(parameter.data)
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * (grad * grad)
            self._m[id(parameter)] = m
            self._v[id(parameter)] = v
            m_hat = m / (1 - self.beta1 ** t)
            v_hat = v / (1 - self.beta2 ** t)
            parameter.data = parameter.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
