"""``repro.api`` — the composable public surface of the reproduction.

The session layer redesigns the monolithic ``run_workflow`` driver into
staged, typed, registry-driven components:

* :class:`~repro.api.session.Session` — train once, predict many times;
  :meth:`~repro.api.session.Session.predict_batch` is the serving hot path
  with an LRU graph-construction cache,
* :class:`~repro.api.pipeline.Pipeline` and the stages in
  :mod:`repro.api.stages` — chainable ``ParseStage`` / ``GraphStage`` /
  ``EncodeStage`` / ``DatasetStage`` / ``TrainStage`` / ``PredictStage``,
* :class:`~repro.api.config.ReproConfig` — per-stage config dataclasses
  with validation and dict round-tripping,
* the registries in :mod:`repro.api.registries` — pluggable convolutions,
  kernels and platforms (``@register_conv`` & co).

Quickstart::

    from repro.api import ReproConfig, Session

    session = Session(ReproConfig())
    print(session.workflow().metrics_table())
    runtimes = session.predict_batch(sources, platform="v100")

Everything is exported lazily (PEP 562), so ``import repro.api`` is cheap.
"""

import importlib

_EXPORTS = {
    # session facade
    "Session": ".session",
    "CacheInfo": ".session",
    # pipeline & stages
    "Pipeline": ".pipeline",
    "PipelineContext": ".pipeline",
    "PipelineError": ".pipeline",
    "Stage": ".stages",
    "SourceSpec": ".stages",
    "ParseStage": ".stages",
    "GraphStage": ".stages",
    "EncodeStage": ".stages",
    "DatasetStage": ".stages",
    "TrainStage": ".stages",
    "PredictStage": ".stages",
    # configuration
    "ReproConfig": ".config",
    "DataConfig": ".config",
    "GraphConfig": ".config",
    "ModelConfig": ".config",
    "READOUTS": ".config",
    "config_from_dict": ".serialization",
    "config_to_dict": ".serialization",
    "sweep_from_dict": ".serialization",
    "sweep_to_dict": ".serialization",
    # registries
    "Registry": ".registries",
    "RegistryError": ".registries",
    "conv_registry": ".registries",
    "kernel_registry": ".registries",
    "platform_registry": ".registries",
    "register_conv": ".registries",
    "register_kernel": ".registries",
    "register_platform": ".registries",
    "get_conv": ".registries",
    "get_kernel": ".registries",
    "get_platform": ".registries",
    "resolve_platform": ".registries",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(importlib.import_module(module_name, __name__), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
