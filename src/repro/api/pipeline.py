"""Composable stage chaining: ``Pipeline([...]).run(**inputs)``.

A :class:`Pipeline` executes its stages in order over one shared
:class:`PipelineContext` (a dict of named artifacts).  Before each stage
runs, its declared ``requires`` keys are checked against the context and a
:class:`PipelineError` names exactly what is missing and what is available;
after it runs, its ``provides`` keys are verified, so stage contracts are
enforced rather than documented.
"""

from __future__ import annotations

from typing import List, Sequence

from ..obs.profile import stage_scope
from .stages import Stage

__all__ = ["Pipeline", "PipelineContext", "PipelineError"]


class PipelineError(RuntimeError):
    """A stage contract was violated (missing input or unfulfilled output)."""


class PipelineContext(dict):
    """The named artifacts flowing through a pipeline run."""

    def require(self, key: str, stage: str = "?") -> object:
        if key not in self:
            raise PipelineError(
                f"stage {stage} requires {key!r} but the context only has "
                f"{sorted(self)}")
        return self[key]


class Pipeline:
    """An ordered chain of :class:`~repro.api.stages.Stage` objects."""

    def __init__(self, stages: Sequence[Stage]) -> None:
        stages = list(stages)
        if not stages:
            raise PipelineError("a Pipeline needs at least one stage")
        for stage in stages:
            if not isinstance(stage, Stage):
                raise PipelineError(
                    f"{stage!r} is not a Stage; pass instances such as "
                    "ParseStage() or TrainStage(config)")
        self.stages: List[Stage] = stages

    # ------------------------------------------------------------------ #
    def __add__(self, other: "Pipeline") -> "Pipeline":
        """Concatenate two pipelines into one longer chain."""
        return Pipeline(self.stages + other.stages)

    def describe(self) -> str:
        """Human-readable summary of the stage chain and its contracts."""
        return " -> ".join(
            f"{stage.name}({', '.join(stage.requires) or '∅'} => "
            f"{', '.join(stage.provides) or '∅'})"
            for stage in self.stages)

    # ------------------------------------------------------------------ #
    def run(self, **inputs) -> PipelineContext:
        """Execute every stage; returns the final context of artifacts."""
        context = PipelineContext(inputs)
        for stage in self.stages:
            missing = [key for key in stage.requires if key not in context]
            if missing:
                raise PipelineError(
                    f"stage {stage.name} requires {missing} but the context "
                    f"only has {sorted(context)}; pass the missing keys to "
                    "Pipeline.run(...) or add a stage that provides them first")
            with stage_scope(stage, context):
                stage.run(context)
            unfulfilled = [key for key in stage.provides if key not in context]
            if unfulfilled:
                raise PipelineError(
                    f"stage {stage.name} declared provides={list(stage.provides)} "
                    f"but did not set {unfulfilled}")
        return context

    def __repr__(self) -> str:
        return f"Pipeline([{', '.join(stage.name for stage in self.stages)}])"
