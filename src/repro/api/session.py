"""The :class:`Session` facade: train once, predict many times.

A session owns one :class:`~repro.api.config.ReproConfig`, lazily builds the
per-platform datasets and trained models through the stage pipeline, and
exposes the hot path a serving tier calls:
:meth:`Session.predict_batch` — batched source→runtime prediction with an
LRU cache over graph construction (parse + analyze + build + encode), which
dominates the cost of a single prediction.

Warm predictions additionally run the GNN inference fast path: the model's
relational kernels consume a content-addressed cached edge layout (sorted
once per distinct graph — see :mod:`repro.gnn.edge_layout`), record no
autodiff graph, and default to float32 arithmetic (``dtype=None`` restores
float64 training parity).  ``benchmarks/test_perf_gnn_forward.py`` measures
the forward-pass speedup and writes ``benchmarks/BENCH_pr2.json``.

The facade itself is a thin client of :class:`repro.serve.Server`: every
``predict`` / ``predict_batch`` call routes through an embedded server
(inline by default; ``REPRO_SERVE_WORKERS`` or an explicit
:class:`~repro.serve.ServerConfig` turn on the worker pool).  All session
state a request touches — the graph-construction cache, the lazily trained
models, the engine's inference/dtype switches — is lock-protected or
context-local, so concurrent callers need no external synchronization; see
``SERVING.md`` for the architecture and reproducibility contract.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from ..hardware.specs import HardwareSpec
from ..ml.trainer import Trainer
from ..paragraph.encoders import EncodedGraph
from ..pipeline.dataset_builder import DatasetBuildResult
from ..pipeline.workflow import PlatformResult, WorkflowResult
from ..serve.server import Server, ServerConfig
from .config import ReproConfig
from .pipeline import Pipeline
from .registries import resolve_platform
from .stages import (
    DatasetStage,
    EncodeStage,
    GraphStage,
    ParseStage,
    SourceSpec,
    TrainStage,
)

__all__ = ["CacheInfo", "Session"]


class CacheInfo(NamedTuple):
    """Hit/miss/eviction statistics of the session's graph-construction
    cache (``evictions`` is appended with a default, keeping the tuple
    positionally compatible with its pre-observability shape)."""

    hits: int
    misses: int
    size: int
    capacity: int
    evictions: int = 0


class _GraphCache:
    """A small LRU cache from source-spec keys to encoded graphs.

    Lock-protected: one instance is shared by every :class:`repro.serve`
    worker thread, so lookups, inserts, eviction and the hit/miss counters
    all mutate under the lock and :meth:`info` returns one coherent
    snapshot instead of counters read at different instants.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = max(int(capacity), 0)
        self._entries: "OrderedDict[tuple, EncodedGraph]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: tuple) -> Optional[EncodedGraph]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: tuple, value: EncodedGraph) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self, reset_stats: bool = False) -> None:
        """Drop every entry; optionally also zero the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            if reset_stats:
                self.hits = 0
                self.misses = 0
                self.evictions = 0

    def reset_stats(self) -> None:
        """Zero the hit/miss counters without touching the cached graphs."""
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def info(self) -> CacheInfo:
        with self._lock:
            return CacheInfo(hits=self.hits, misses=self.misses,
                             size=len(self._entries), capacity=self.capacity,
                             evictions=self.evictions)


class Session:
    """One configured instance of the whole system (Fig. 3 as an object).

    Dataset building and training are lazy and memoized: the first call to
    :meth:`train` / :meth:`workflow` / :meth:`predict_batch` pays for them,
    later calls reuse the results.  Memoization is lock-protected, so
    concurrent first callers (e.g. serving workers) train exactly once.

    Parameters
    ----------
    config:
        The :class:`ReproConfig`; defaults reproduce the paper's setup.
    graph_cache_size:
        Capacity of the lock-protected LRU graph-construction cache used by
        the predict facade (0 disables caching).
    serve_config:
        Configuration of the embedded :class:`repro.serve.Server` the
        predict facade routes through.  Defaults to
        :meth:`~repro.serve.ServerConfig.from_env` — inline execution
        unless ``REPRO_SERVE_WORKERS`` asks for a worker pool.
    """

    def __init__(self, config: Optional[ReproConfig] = None,
                 graph_cache_size: int = 256,
                 serve_config: Optional[ServerConfig] = None) -> None:
        self.config = config or ReproConfig()
        self.encoder = self.config.make_encoder()
        self._cache = _GraphCache(graph_cache_size)
        self._build: Optional[DatasetBuildResult] = None
        self._platform_results: Optional[Dict[str, PlatformResult]] = None
        self._train_lock = threading.RLock()
        self._serve_config = serve_config
        self._server: Optional[Server] = None
        self._server_lock = threading.Lock()
        #: artifact provenance when this session was warm-started from a
        #: ``repro.store`` artifact instead of trained in-process.
        self._provenance: Optional[dict] = None

    # ------------------------------------------------------------------ #
    @property
    def platforms(self) -> Tuple[HardwareSpec, ...]:
        """The resolved target platforms, in configured order."""
        return self.config.platform_specs()

    # ------------------------------------------------------------------ #
    # training side
    # ------------------------------------------------------------------ #
    def build_dataset(self) -> DatasetBuildResult:
        """Build (once) the per-platform datasets of the configured sweep."""
        with self._train_lock:
            if self._build is None:
                context = Pipeline([DatasetStage(self.config,
                                                 encoder=self.encoder)]).run()
                self._build = context["build"]
            return self._build

    def train(self) -> Dict[str, PlatformResult]:
        """Train (once) one model per platform; returns the per-platform results."""
        with self._train_lock:
            if self._platform_results is None:
                if self._build is None:
                    context = Pipeline([DatasetStage(self.config, encoder=self.encoder),
                                        TrainStage(self.config)]).run()
                    self._build = context["build"]
                else:
                    context = Pipeline([TrainStage(self.config)]).run(
                        build=self._build, encoder=self.encoder)
                self._platform_results = context["platform_results"]
            return self._platform_results

    def workflow(self) -> WorkflowResult:
        """The legacy one-call result shape (datasets + trained platforms)."""
        platform_results = self.train()
        if self._build is None:
            raise RuntimeError(
                "this session was warm-started from a stored artifact and "
                "carries no dataset build; serve with predict/predict_batch, "
                "or construct a fresh Session to run the training workflow")
        return WorkflowResult(build=self._build, platforms=platform_results)

    def trainer_for(self, platform) -> Trainer:
        """The trained :class:`Trainer` for *platform* (name, alias or spec)."""
        spec = resolve_platform(platform)
        results = self.train()
        if spec.name not in results:
            raise KeyError(
                f"no trained model for platform {spec.name!r}; trained platforms: "
                f"{sorted(results)} (is it in config.data.platforms, and did its "
                "dataset reach config.data.min_platform_samples samples?)")
        return results[spec.name].trainer

    # ------------------------------------------------------------------ #
    # serving side
    # ------------------------------------------------------------------ #
    def _cache_key(self, spec: SourceSpec, snippet: bool) -> tuple:
        return (
            spec.source,
            tuple(sorted((str(k), int(v)) for k, v in spec.sizes.items())),
            int(spec.num_teams),
            int(spec.num_threads),
            self.config.graph.variant.value,
            bool(snippet),
        )

    def encode_source(self, source, sizes=None, num_teams: int = 1,
                      num_threads: int = 1, snippet: bool = False) -> EncodedGraph:
        """Parse/build/encode one source, going through the LRU cache."""
        spec = SourceSpec.of(source, sizes=sizes, num_teams=num_teams,
                             num_threads=num_threads)
        return self._encode_specs([spec], snippet=snippet)[0]

    def _encode_specs(self, specs: Sequence[SourceSpec],
                      snippet: bool = False) -> List[EncodedGraph]:
        encoded: List[Optional[EncodedGraph]] = [None] * len(specs)
        # deduplicate by cache key so repeated sources in one cold batch pay
        # for a single graph construction
        misses: "OrderedDict[tuple, List[int]]" = OrderedDict()
        miss_specs: Dict[tuple, SourceSpec] = {}
        for index, spec in enumerate(specs):
            key = self._cache_key(spec, snippet)
            hit = self._cache.get(key)
            if hit is not None:
                encoded[index] = hit
            else:
                misses.setdefault(key, []).append(index)
                miss_specs.setdefault(key, spec)
        if misses:
            pipeline = Pipeline([
                ParseStage(snippet=snippet),
                GraphStage(self.config.graph),
                EncodeStage(self.encoder),
            ])
            context = pipeline.run(specs=[miss_specs[key] for key in misses])
            for (key, indices), graph in zip(misses.items(), context["encoded"]):
                self._cache.put(key, graph)
                for index in indices:
                    encoded[index] = graph
        return encoded  # type: ignore[return-value]

    def server(self) -> Server:
        """The embedded :class:`repro.serve.Server` the facade serves through.

        Created lazily (once) from ``serve_config`` — inline execution by
        default, a worker pool when ``REPRO_SERVE_WORKERS`` (or an explicit
        config) asks for one.  For a standalone runtime with its own knobs,
        construct ``repro.serve.Server(session, ServerConfig(...))``
        directly; any number of servers can share one session.
        """
        with self._server_lock:
            if self._server is None:
                self._server = Server(
                    self, self._serve_config or ServerConfig.from_env())
            return self._server

    def predict_batch(self, sources: Sequence, platform, *,
                      sizes=None, num_teams: int = 64, num_threads: int = 64,
                      snippet: bool = False, dtype=np.float32) -> np.ndarray:
        """Predict runtimes (µs) for a batch of sources on one platform.

        ``sources`` may mix raw C strings, :class:`SourceSpec` objects and
        kernel variants (anything with a ``.source``).  Shared ``sizes`` /
        ``num_teams`` / ``num_threads`` apply to entries that don't carry
        their own.  Graph construction is cached per session, so repeated
        sources only pay for one batched GNN forward pass.

        The GNN forward runs on the inference fast path: vectorized
        relational kernels over a cached edge layout, no autodiff graph
        (``repro.nn.no_grad``), and — by default — float32 arithmetic.
        Pass ``dtype=None`` for full float64 parity with training-time
        evaluation (predictions differ by well under one part in 1e-4).
        Empty batches return an empty array in the serving dtype
        (float64 when ``dtype=None``).

        Thread-safe: this is a thin client of the embedded
        :class:`repro.serve.Server` (see :meth:`server`), all engine
        inference/dtype state is context-local, and every shared cache is
        lock-protected — concurrent callers need no external lock.  The
        request list executes as one job with its composition preserved,
        so for a fixed list the results are bit-reproducible regardless of
        concurrent traffic.
        """
        specs = [SourceSpec.of(source, sizes=sizes, num_teams=num_teams,
                               num_threads=num_threads) for source in sources]
        return self.server().predict_specs(specs, platform, snippet=snippet,
                                           dtype=dtype)

    def predict(self, source, platform, *, sizes=None, num_teams: int = 64,
                num_threads: int = 64, snippet: bool = False,
                dtype=np.float32) -> float:
        """Predict the runtime (µs) of a single source on one platform."""
        return float(self.predict_batch(
            [source], platform, sizes=sizes, num_teams=num_teams,
            num_threads=num_threads, snippet=snippet, dtype=dtype)[0])

    # ------------------------------------------------------------------ #
    # persistence (repro.store)
    # ------------------------------------------------------------------ #
    def save(self, path, *, name: str = "session", overwrite: bool = False) -> str:
        """Persist the trained model set as a ``repro.store`` artifact.

        Trains first if needed, then writes ``manifest.json`` (config,
        vocabulary, encoder settings, scaler state, provenance) plus one
        ``.npz`` state dict per platform under *path*.  A session loaded
        back with :meth:`Session.load` serves ``dtype=None`` predictions
        bit-identical to this one.  See ``STORE.md``.
        """
        from ..store.artifact import save_session
        return save_session(self, path, name=name, overwrite=overwrite)

    @classmethod
    def load(cls, path, *, serve_config: Optional[ServerConfig] = None,
             graph_cache_size: int = 256, verify: bool = True) -> "Session":
        """Warm-start a session from an artifact — zero retraining.

        The returned session's :meth:`train` is a no-op returning the
        restored per-platform results, and :meth:`predict_batch` goes
        straight to the serving path: float64 (``dtype=None``) predictions
        are bit-identical to the session that produced the artifact.
        ``verify=True`` (default) enforces payload checksums; corrupt or
        version-mismatched artifacts raise ``repro.store`` errors naming
        the offending field.  Subclasses reconstruct as themselves (their
        ``__init__`` must keep this signature).
        """
        from ..store.artifact import load_session
        return load_session(path, serve_config=serve_config,
                            graph_cache_size=graph_cache_size, verify=verify,
                            session_cls=cls)

    def _install_restored_results(self, results: Dict[str, PlatformResult],
                                  provenance: dict) -> None:
        """Adopt artifact-restored platform results (``repro.store`` only)."""
        with self._train_lock:
            if self._platform_results is not None:
                raise RuntimeError(
                    "cannot install restored models into a session that "
                    "already trained")
            self._platform_results = dict(results)
            self._provenance = dict(provenance)

    @property
    def warm_started(self) -> bool:
        """True when the model set came from an artifact, not training."""
        return self._provenance is not None

    @property
    def provenance(self) -> Optional[dict]:
        """Artifact provenance of a warm-started session (else ``None``)."""
        return None if self._provenance is None else dict(self._provenance)

    # ------------------------------------------------------------------ #
    def cache_info(self) -> CacheInfo:
        """One coherent snapshot of the graph-construction cache counters."""
        return self._cache.info()

    def clear_cache(self, reset_stats: bool = False) -> None:
        """Drop every cached encoded graph; ``reset_stats=True`` also zeroes
        the hit/miss counters (they are kept by default)."""
        self._cache.clear(reset_stats=reset_stats)

    def reset_cache_stats(self) -> None:
        """Zero the cache hit/miss counters without dropping cached graphs."""
        self._cache.reset_stats()

    def close(self) -> None:
        """Shut down the embedded server's worker pool, if one was started."""
        with self._server_lock:
            if self._server is not None:
                self._server.close()
                self._server = None
