"""Per-stage configuration dataclasses unified under :class:`ReproConfig`.

Every stage of the pipeline owns one small config — :class:`DataConfig`
(sweep, platforms, noise), :class:`GraphConfig` (representation variant,
trip counts, encoder options), :class:`ModelConfig` (GNN architecture) and
the existing :class:`~repro.ml.trainer.TrainingConfig` — and
:class:`ReproConfig` composes them with the split fraction and the global
seed.  All fields validate eagerly with actionable messages, and the whole
tree round-trips through plain dicts (``to_dict`` / ``from_dict``) so a
service deployment can ship configs as JSON.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple, Union

from ..hardware.specs import ALL_PLATFORMS, HardwareSpec
from ..ml.trainer import TrainingConfig
from ..paragraph.encoders import GraphEncoder
from ..paragraph.variants import GraphVariant
from ..pipeline.variant_generation import SweepConfig
from .registries import conv_registry, platform_registry, resolve_platform

__all__ = [
    "DataConfig",
    "GraphConfig",
    "ModelConfig",
    "READOUTS",
    "ReproConfig",
    "coerce_graph_variant",
]

#: Valid graph-level readouts of :class:`~repro.gnn.models.ParaGraphModel`.
READOUTS: Tuple[str, ...] = ("mean", "sum", "mean_max")


def coerce_graph_variant(value: Union[str, GraphVariant]) -> GraphVariant:
    """Accept a :class:`GraphVariant` or its string value, with a helpful error."""
    if isinstance(value, GraphVariant):
        return value
    try:
        return GraphVariant(str(value).lower())
    except ValueError:
        valid = [variant.value for variant in GraphVariant]
        raise ValueError(
            f"unknown graph variant {value!r}; valid variants: {valid}") from None


def _check_conv(conv: str) -> None:
    if conv not in conv_registry:
        raise ValueError(
            f"unknown convolution {conv!r}; registered convolutions: "
            f"{conv_registry.keys()} (add your own with repro.api.register_conv)")


def _check_train_fraction(train_fraction: float) -> None:
    if not 0.0 < float(train_fraction) < 1.0:
        raise ValueError(
            f"train_fraction must be strictly between 0 and 1 (exclusive), got "
            f"{train_fraction!r}; the paper's 9:1 split corresponds to 0.9")


# --------------------------------------------------------------------- #
@dataclass
class DataConfig:
    """What to measure: the configuration sweep and the target platforms."""

    sweep: SweepConfig = field(default_factory=SweepConfig)
    #: platform names / aliases (or :class:`HardwareSpec` objects) to build
    #: datasets for; defaults to the paper's four accelerators.
    platforms: Tuple[Union[str, HardwareSpec], ...] = tuple(
        spec.name for spec in ALL_PLATFORMS)
    noisy_runtimes: bool = True
    #: platforms whose dataset ends up smaller than this are skipped.
    min_platform_samples: int = 4

    def __post_init__(self) -> None:
        self.platforms = tuple(self.platforms)
        for name in self.platforms:
            if isinstance(name, HardwareSpec):
                continue
            if name not in platform_registry:
                raise ValueError(
                    f"unknown platform {name!r}; registered platforms: "
                    f"{platform_registry.keys()} (aliases like 'v100' also work)")
        if self.min_platform_samples < 2:
            raise ValueError("min_platform_samples must be >= 2 (the split needs "
                             "at least one train and one validation sample)")

    def platform_specs(self) -> Tuple[HardwareSpec, ...]:
        """The resolved :class:`HardwareSpec` objects, in configured order."""
        return tuple(resolve_platform(name) for name in self.platforms)


# --------------------------------------------------------------------- #
@dataclass
class GraphConfig:
    """How sources become graphs: representation variant and encoder options."""

    variant: Union[str, GraphVariant] = GraphVariant.PARAGRAPH
    default_trip_count: int = 16
    include_terminal_flag: bool = True
    log_scale_weights: bool = True

    def __post_init__(self) -> None:
        self.variant = coerce_graph_variant(self.variant)
        if self.default_trip_count < 1:
            raise ValueError(
                f"default_trip_count must be >= 1, got {self.default_trip_count}")

    def make_encoder(self) -> GraphEncoder:
        return GraphEncoder(include_terminal_flag=self.include_terminal_flag,
                            log_scale_weights=self.log_scale_weights)

    @property
    def use_edge_weight(self) -> bool:
        """Edge weights are only meaningful for the full ParaGraph variant."""
        return self.variant is GraphVariant.PARAGRAPH


# --------------------------------------------------------------------- #
@dataclass
class ModelConfig:
    """The GNN architecture (convolution kind resolved via the registry)."""

    hidden_dim: int = 32
    conv: str = "rgat"
    readout: str = "mean_max"
    num_conv_layers: int = 3
    heads: int = 1
    dropout: float = 0.0

    def __post_init__(self) -> None:
        if self.hidden_dim < 1:
            raise ValueError(f"hidden_dim must be >= 1, got {self.hidden_dim}")
        if self.num_conv_layers < 1:
            raise ValueError(
                f"num_conv_layers must be >= 1, got {self.num_conv_layers}")
        if self.heads < 1:
            raise ValueError(f"heads must be >= 1, got {self.heads}")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError(f"dropout must be in [0, 1), got {self.dropout}")
        if self.readout not in READOUTS:
            raise ValueError(
                f"unknown readout {self.readout!r}; valid readouts: {list(READOUTS)}")
        _check_conv(self.conv)

    def build(self, node_feature_dim: int, use_edge_weight: bool = True,
              seed: Optional[int] = None):
        """Instantiate a :class:`~repro.gnn.models.ParaGraphModel`."""
        from ..gnn.models import ParaGraphModel
        return ParaGraphModel(
            node_feature_dim=node_feature_dim,
            hidden_dim=self.hidden_dim,
            conv=self.conv,
            readout=self.readout,
            num_conv_layers=self.num_conv_layers,
            heads=self.heads,
            dropout=self.dropout,
            use_edge_weight=use_edge_weight,
            seed=seed,
        )


# --------------------------------------------------------------------- #
@dataclass
class ReproConfig:
    """One config tree for the whole pipeline, stage by stage."""

    data: DataConfig = field(default_factory=DataConfig)
    graph: GraphConfig = field(default_factory=GraphConfig)
    model: ModelConfig = field(default_factory=ModelConfig)
    training: TrainingConfig = field(default_factory=TrainingConfig)
    train_fraction: float = 0.9
    seed: int = 0

    def __post_init__(self) -> None:
        _check_train_fraction(self.train_fraction)

    # ------------------------------------------------------------------ #
    def platform_specs(self) -> Tuple[HardwareSpec, ...]:
        return self.data.platform_specs()

    def make_encoder(self) -> GraphEncoder:
        return self.graph.make_encoder()

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Plain-dict form (JSON-safe; kernels/platforms stored by name)."""
        from .serialization import config_to_dict
        return config_to_dict(self)

    @classmethod
    def from_dict(cls, payload) -> "ReproConfig":
        """Inverse of :meth:`to_dict`; missing keys fall back to defaults."""
        from .serialization import config_from_dict
        return config_from_dict(payload)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_workflow_config(cls, config, platforms: Optional[Sequence] = None) -> "ReproConfig":
        """Adapt a legacy :class:`~repro.pipeline.workflow.WorkflowConfig`."""
        from ..pipeline.workflow import WorkflowConfig
        if not isinstance(config, WorkflowConfig):
            raise TypeError(f"expected WorkflowConfig, got {type(config).__name__}")
        platform_names: Tuple[Union[str, HardwareSpec], ...]
        if platforms is None:
            platform_names = tuple(spec.name for spec in ALL_PLATFORMS)
        else:
            platform_names = tuple(platforms)
        return cls(
            data=DataConfig(sweep=config.sweep, platforms=platform_names,
                            noisy_runtimes=config.noisy_runtimes),
            graph=GraphConfig(variant=config.graph_variant),
            model=ModelConfig(hidden_dim=config.hidden_dim, conv=config.conv),
            training=config.training,
            train_fraction=config.train_fraction,
            seed=config.seed,
        )
