"""String-keyed registries for the pluggable pieces of the system.

The original code selected GNN convolutions with hard-coded ``if conv ==
"rgat"`` branches, enumerated benchmark kernels through a fixed tuple and
looked hardware platforms up in a private dict.  The three registries here
make those axes discoverable and extensible through one mechanism:

* :data:`conv_registry` — graph-convolution factories (``rgat``, ``rgcn``,
  ``gat``), extensible with :func:`register_conv`,
* :data:`kernel_registry` — the Table I benchmark kernels, extensible with
  :func:`register_kernel`,
* :data:`platform_registry` — the hardware platforms (with short aliases
  such as ``v100``), extensible with :func:`register_platform`.

Registries populate lazily on first lookup, so importing this module stays
cheap and the circular dependency between ``repro.gnn`` (which registers its
convolutions here) and the registry is resolved naturally.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Registry",
    "RegistryError",
    "conv_registry",
    "get_conv",
    "get_kernel",
    "get_platform",
    "kernel_registry",
    "platform_registry",
    "register_conv",
    "register_kernel",
    "register_platform",
    "resolve_platform",
]


class RegistryError(ValueError):
    """Raised on conflicting registrations (duplicate keys without override)."""


def _normalize(name: str) -> str:
    """Case/space/dash-insensitive lookup key (``"NVIDIA V100"`` ≡ ``"nvidia-v100"``)."""
    return name.replace(" ", "").replace("-", "").replace("_", "").lower()


class Registry:
    """A string-keyed registry with decorator registration and aliases.

    Parameters
    ----------
    kind:
        Human-readable name of what is registered (used in error messages).
    populate:
        Optional callable invoked once, lazily, before the first lookup.
        Default entries register themselves from inside it (typically by
        importing the module that carries the ``@register_*`` decorators).
    """

    def __init__(self, kind: str, populate: Optional[Callable[["Registry"], None]] = None) -> None:
        self.kind = kind
        self._entries: Dict[str, object] = {}
        self._lookup: Dict[str, str] = {}      # normalized key/alias -> canonical name
        self._populate = populate
        self._populated = populate is None

    # ------------------------------------------------------------------ #
    def _ensure_populated(self) -> None:
        if not self._populated:
            self._populated = True  # set first: populate() itself registers entries
            self._populate(self)  # type: ignore[misc]

    # ------------------------------------------------------------------ #
    def register(self, name: str, obj: object = None, *,
                 aliases: Iterable[str] = (), override: bool = False):
        """Register *obj* under *name*; usable directly or as a decorator::

            @registry.register("rgat")
            def make_rgat(...): ...
        """
        if obj is None:
            def decorator(target):
                self.register(name, target, aliases=aliases, override=override)
                return target
            return decorator
        key = _normalize(name)
        if not override and key in self._lookup:
            raise RegistryError(
                f"{self.kind} {name!r} is already registered "
                f"(as {self._lookup[key]!r}); pass override=True to replace it")
        previous = self._lookup.get(key)
        if previous is not None and previous != name:
            # replacing under an equivalent spelling: drop the old entry and
            # every alias still pointing at it, so nothing dangles
            self._entries.pop(previous, None)
            self._lookup = {k: v for k, v in self._lookup.items() if v != previous}
        self._entries[name] = obj
        self._lookup[key] = name
        for alias in aliases:
            self.alias(alias, name, override=override)
        return obj

    def alias(self, alias: str, target: str, *, override: bool = False) -> None:
        """Make *alias* resolve to the already-registered *target* name."""
        key = _normalize(alias)
        if not override and key in self._lookup and self._lookup[key] != target:
            raise RegistryError(
                f"{self.kind} alias {alias!r} already points at {self._lookup[key]!r}")
        self._lookup[key] = target

    def unregister(self, name: str) -> None:
        """Remove an entry and every alias pointing at it (test/plugin cleanup)."""
        self._ensure_populated()
        canonical = self._lookup.get(_normalize(name))
        if canonical is None:
            return
        self._entries.pop(canonical, None)
        self._lookup = {k: v for k, v in self._lookup.items() if v != canonical}

    # ------------------------------------------------------------------ #
    def get(self, name: str) -> object:
        """Look up an entry; raises ``KeyError`` naming the valid keys."""
        self._ensure_populated()
        canonical = self._lookup.get(_normalize(name))
        if canonical is None or canonical not in self._entries:
            raise KeyError(
                f"unknown {self.kind} {name!r}; registered {self.kind}s: {self.keys()}")
        return self._entries[canonical]

    def keys(self) -> List[str]:
        self._ensure_populated()
        return sorted(self._entries)

    def items(self) -> List[Tuple[str, object]]:
        self._ensure_populated()
        return sorted(self._entries.items())

    def __contains__(self, name: str) -> bool:
        self._ensure_populated()
        return self._lookup.get(_normalize(name)) in self._entries

    def __len__(self) -> int:
        self._ensure_populated()
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Registry({self.kind!r}, keys={self.keys()!r})"


# --------------------------------------------------------------------- #
# default populations (lazy imports keep this module dependency-free)
# --------------------------------------------------------------------- #
def _populate_convs(registry: Registry) -> None:
    # the @register_conv decorators in repro.gnn.models run on import
    from .. import gnn  # noqa: F401


def _populate_kernels(registry: Registry) -> None:
    from ..kernels.registry import all_kernels
    for kernel in all_kernels():
        registry.register(kernel.kernel_name, kernel,
                          aliases=(f"{kernel.application}/{kernel.kernel_name}",),
                          override=True)


def _populate_platforms(registry: Registry) -> None:
    from ..hardware import specs
    aliases_by_name: Dict[str, List[str]] = {}
    for alias, full_name in specs._ALIASES.items():
        aliases_by_name.setdefault(full_name, []).append(alias)
    for spec in specs.ALL_PLATFORMS:
        registry.register(spec.name, spec,
                          aliases=aliases_by_name.get(spec.name, ()),
                          override=True)


#: Graph-convolution factories keyed by kind (``rgat`` / ``rgcn`` / ``gat``).
conv_registry = Registry("convolution", populate=_populate_convs)
#: Benchmark kernels keyed by kernel name (``matmul``, ``pf_normalize``, …).
kernel_registry = Registry("kernel", populate=_populate_kernels)
#: Hardware platforms keyed by name or alias (``v100``, ``AMD MI50``, …).
platform_registry = Registry("platform", populate=_populate_platforms)

register_conv = conv_registry.register
register_kernel = kernel_registry.register
register_platform = platform_registry.register


def get_conv(name: str):
    """Factory for the convolution kind *name* (see :func:`register_conv`)."""
    return conv_registry.get(name)


def get_kernel(name: str):
    """Benchmark kernel definition for *name* (``matmul``, ``Matmul/matmul``, …)."""
    return kernel_registry.get(name)


def get_platform(name: str):
    """Hardware spec for *name* (full name or alias such as ``v100``)."""
    return platform_registry.get(name)


def resolve_platform(value):
    """Accept a :class:`~repro.hardware.specs.HardwareSpec` or a registry key."""
    from ..hardware.specs import HardwareSpec
    if isinstance(value, HardwareSpec):
        return value
    return platform_registry.get(value)
