"""Typed, composable pipeline stages (the Fig. 3 boxes as objects).

Each :class:`Stage` declares the context keys it ``requires`` and
``provides`` and transforms a shared :class:`~repro.api.pipeline.PipelineContext`.
The stages mirror the paper's workflow:

* :class:`ParseStage` — C/OpenMP source → analyzed Clang-style AST,
* :class:`GraphStage` — AST → :class:`~repro.paragraph.graph.ParaGraph`
  (variant-aware: Raw AST / Augmented AST / ParaGraph),
* :class:`EncodeStage` — ParaGraph → numeric :class:`EncodedGraph` arrays,
* :class:`DatasetStage` — configuration sweep → per-platform datasets,
* :class:`TrainStage` — datasets → trained per-platform models,
* :class:`PredictStage` — encoded graphs + trained model → runtimes (µs).

``Pipeline([ParseStage(), GraphStage(), EncodeStage(), PredictStage()])`` is
the serving path; ``Pipeline([DatasetStage(cfg), TrainStage(cfg)])`` is the
training path.  :class:`~repro.api.session.Session` wires both together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..clang import analyze, parse_snippet, parse_source
from ..clang.semantics import ConstantEnvironment
from ..ml.dataset import GraphDataset
from ..ml.split import train_val_split
from ..ml.trainer import Trainer
from ..paragraph.builder import build_paragraph
from ..paragraph.encoders import GraphEncoder
from ..pipeline.dataset_builder import DatasetBuilder
from ..pipeline.variant_generation import generate_configurations
from ..pipeline.workflow import PlatformResult
from .config import GraphConfig, ReproConfig

__all__ = [
    "DatasetStage",
    "EncodeStage",
    "GraphStage",
    "ParseStage",
    "PredictStage",
    "SourceSpec",
    "Stage",
    "TrainStage",
]


@dataclass
class SourceSpec:
    """One prediction request: a source plus its execution context."""

    source: str
    sizes: Mapping[str, int] = field(default_factory=dict)
    num_teams: int = 1
    num_threads: int = 1
    name: str = ""

    @classmethod
    def of(cls, source, sizes: Optional[Mapping[str, int]] = None,
           num_teams: int = 1, num_threads: int = 1, name: str = "") -> "SourceSpec":
        """Coerce a str, :class:`SourceSpec` or any object with a ``.source``
        attribute (e.g. a :class:`~repro.advisor.transformations.KernelVariant`)."""
        if isinstance(source, cls):
            return source
        if isinstance(source, str):
            return cls(source=source, sizes=dict(sizes or {}),
                       num_teams=num_teams, num_threads=num_threads, name=name)
        text = getattr(source, "source", None)
        if isinstance(text, str):
            return cls(source=text, sizes=dict(sizes or {}),
                       num_teams=num_teams, num_threads=num_threads,
                       name=name or getattr(source, "name", ""))
        raise TypeError(
            f"cannot build a SourceSpec from {type(source).__name__}; expected "
            "a source string, a SourceSpec, or an object with a .source attribute")


class Stage:
    """Base class: a named transformation over the pipeline context."""

    #: context keys that must exist before the stage runs
    requires: Tuple[str, ...] = ()
    #: context keys the stage guarantees to set
    provides: Tuple[str, ...] = ()

    @property
    def name(self) -> str:
        return type(self).__name__

    def run(self, context) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return (f"{self.name}(requires={list(self.requires)}, "
                f"provides={list(self.provides)})")


# --------------------------------------------------------------------- #
class ParseStage(Stage):
    """``specs`` (list of :class:`SourceSpec`) → analyzed ``asts``."""

    requires = ("specs",)
    provides = ("asts",)

    def __init__(self, snippet: bool = False) -> None:
        #: parse bare statement snippets instead of full translation units
        self.snippet = snippet

    def run(self, context) -> None:
        asts = []
        for spec in context["specs"]:
            if self.snippet:
                ast = parse_snippet(spec.source)
            else:
                ast = parse_source(spec.source, filename=spec.name or "<repro.api>")
            analyze(ast)
            asts.append(ast)
        context["asts"] = asts


class GraphStage(Stage):
    """``asts`` + ``specs`` → ``graphs`` (variant-aware ParaGraphs)."""

    requires = ("specs", "asts")
    provides = ("graphs",)

    def __init__(self, config: Optional[GraphConfig] = None) -> None:
        self.config = config or GraphConfig()

    def run(self, context) -> None:
        graphs = []
        for spec, ast in zip(context["specs"], context["asts"]):
            env = ConstantEnvironment(dict(spec.sizes))
            graphs.append(build_paragraph(
                ast,
                variant=self.config.variant,
                num_threads=spec.num_threads,
                num_teams=spec.num_teams,
                env=env,
                default_trip_count=self.config.default_trip_count,
                name=spec.name,
            ))
        context["graphs"] = graphs


class EncodeStage(Stage):
    """``graphs`` + ``specs`` → ``encoded`` (numeric arrays for the GNN)."""

    requires = ("specs", "graphs")
    provides = ("encoded",)

    def __init__(self, encoder: Optional[GraphEncoder] = None) -> None:
        self.encoder = encoder or GraphEncoder()

    def run(self, context) -> None:
        context["encoded"] = [
            self.encoder.encode(graph, num_teams=spec.num_teams,
                                num_threads=spec.num_threads, name=spec.name)
            for spec, graph in zip(context["specs"], context["graphs"])
        ]


# --------------------------------------------------------------------- #
class DatasetStage(Stage):
    """Configuration sweep → per-platform datasets (``build``).

    Consumes pre-generated ``configurations`` from the context when present
    (the ablation drivers share one sweep across graph variants), otherwise
    enumerates the config's sweep.  Also publishes the shared ``encoder`` so
    downstream stages agree on the feature dimensionality.
    """

    provides = ("build", "configurations", "encoder")

    def __init__(self, config: Optional[ReproConfig] = None,
                 encoder: Optional[GraphEncoder] = None) -> None:
        self.config = config or ReproConfig()
        self.encoder = encoder or self.config.make_encoder()

    def run(self, context) -> None:
        configurations = context.get("configurations")
        if configurations is None:
            configurations = generate_configurations(self.config.data.sweep)
        builder = DatasetBuilder(
            platforms=self.config.platform_specs(),
            graph_variant=self.config.graph.variant,
            encoder=self.encoder,
            noisy=self.config.data.noisy_runtimes,
            default_trip_count=self.config.graph.default_trip_count,
        )
        context["configurations"] = list(configurations)
        context["encoder"] = self.encoder
        context["build"] = builder.build(configurations=configurations)


class TrainStage(Stage):
    """``build`` + ``encoder`` → trained ``platform_results``."""

    requires = ("build", "encoder")
    provides = ("platform_results",)

    def __init__(self, config: Optional[ReproConfig] = None) -> None:
        self.config = config or ReproConfig()

    def run(self, context) -> None:
        config = self.config
        build = context["build"]
        encoder = context["encoder"]
        results: Dict[str, PlatformResult] = {}
        for platform in config.platform_specs():
            dataset = build.datasets[platform.name]
            if len(dataset) < config.data.min_platform_samples:
                continue
            train, validation = train_val_split(
                dataset, config.train_fraction, seed=config.seed)
            model = config.model.build(
                node_feature_dim=encoder.feature_dim,
                use_edge_weight=config.graph.use_edge_weight,
                seed=config.seed,
            )
            trainer = Trainer(model, config.training)
            history = trainer.fit(train, validation)
            metrics = trainer.evaluate(validation)
            results[platform.name] = PlatformResult(
                platform=platform,
                dataset=dataset,
                train=train,
                validation=validation,
                trainer=trainer,
                history=history,
                metrics=metrics,
            )
        context["platform_results"] = results


class PredictStage(Stage):
    """``encoded`` + ``trainer`` → ``predictions`` (runtimes in µs).

    *dtype* selects the forward-pass precision: ``None`` keeps float64
    parity with training-time evaluation, ``numpy.float32`` runs the serving
    fast path (no autodiff graph, float32 kernels) — see
    :meth:`repro.ml.trainer.Trainer.predict`.

    *packed* routes the whole request list through one block-diagonal
    packed forward (:meth:`repro.ml.trainer.Trainer.predict_packed`) —
    the serving configuration — instead of the per-batch dataset loop.
    Trainers (or registered models) without a packed kernel transparently
    fall back to the loop either way.
    """

    requires = ("encoded", "trainer")
    provides = ("predictions",)

    def __init__(self, dtype=None, packed: bool = False) -> None:
        self.dtype = dtype
        self.packed = packed

    def run(self, context) -> None:
        trainer = context["trainer"]
        encoded = list(context["encoded"])
        if self.packed and hasattr(trainer, "predict_packed"):
            context["predictions"] = trainer.predict_packed(encoded,
                                                            dtype=self.dtype)
            return
        dataset = GraphDataset(encoded, name="predict")
        context["predictions"] = trainer.predict(dataset, dtype=self.dtype)
