"""Dict round-tripping for :class:`~repro.api.config.ReproConfig`.

A config serialized with :func:`config_to_dict` contains only JSON-safe
values: enums become their string values, kernel definitions their registry
names and hardware specs their platform names, so a serving deployment can
ship configs over the wire and rebuild them with :func:`config_from_dict`.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Mapping, Optional

from ..advisor.transformations import VariantKind
from ..hardware.specs import HardwareSpec
from ..ml.trainer import TrainingConfig
from ..pipeline.variant_generation import SweepConfig
from .config import DataConfig, GraphConfig, ModelConfig, ReproConfig
from .registries import kernel_registry

__all__ = ["config_from_dict", "config_to_dict", "sweep_from_dict", "sweep_to_dict"]


def sweep_to_dict(sweep: SweepConfig) -> dict:
    """JSON-safe form of a sweep (kernels by registry name, kinds by value)."""
    return {
        "size_scales": [float(scale) for scale in sweep.size_scales],
        "team_counts": [int(teams) for teams in sweep.team_counts],
        "thread_counts": [int(threads) for threads in sweep.thread_counts],
        "repetitions": int(sweep.repetitions),
        "variant_kinds": [kind.value for kind in sweep.variant_kinds],
        "kernels": None if sweep.kernels is None
        else [kernel.kernel_name for kernel in sweep.kernels],
        "minimum_size": int(sweep.minimum_size),
    }


def sweep_from_dict(payload: Optional[Mapping]) -> SweepConfig:
    """Rebuild a :class:`SweepConfig`; kernel names resolve via the registry."""
    payload = dict(payload or {})
    sweep = SweepConfig()
    if "size_scales" in payload:
        sweep.size_scales = tuple(float(scale) for scale in payload["size_scales"])
    if "team_counts" in payload:
        sweep.team_counts = tuple(int(teams) for teams in payload["team_counts"])
    if "thread_counts" in payload:
        sweep.thread_counts = tuple(int(threads) for threads in payload["thread_counts"])
    if "repetitions" in payload:
        sweep.repetitions = int(payload["repetitions"])
    if "variant_kinds" in payload:
        sweep.variant_kinds = tuple(
            kind if isinstance(kind, VariantKind) else VariantKind(kind)
            for kind in payload["variant_kinds"])
    if "kernels" in payload:
        names = payload["kernels"]
        sweep.kernels = None if names is None else [
            kernel if not isinstance(kernel, str) else kernel_registry.get(kernel)
            for kernel in names]
    if "minimum_size" in payload:
        sweep.minimum_size = int(payload["minimum_size"])
    return sweep


def _platform_name(platform) -> str:
    """Canonical platform name (aliases like ``v100`` serialize canonically)."""
    from .registries import resolve_platform
    if isinstance(platform, HardwareSpec):
        return platform.name
    return resolve_platform(platform).name


def config_to_dict(config: ReproConfig) -> dict:
    """See :meth:`ReproConfig.to_dict`."""
    return {
        "data": {
            "sweep": sweep_to_dict(config.data.sweep),
            "platforms": [_platform_name(p) for p in config.data.platforms],
            "noisy_runtimes": bool(config.data.noisy_runtimes),
            "min_platform_samples": int(config.data.min_platform_samples),
        },
        "graph": {
            "variant": config.graph.variant.value,
            "default_trip_count": int(config.graph.default_trip_count),
            "include_terminal_flag": bool(config.graph.include_terminal_flag),
            "log_scale_weights": bool(config.graph.log_scale_weights),
        },
        "model": asdict(config.model),
        "training": asdict(config.training),
        "train_fraction": float(config.train_fraction),
        "seed": int(config.seed),
    }


def config_from_dict(payload: Mapping) -> ReproConfig:
    """See :meth:`ReproConfig.from_dict`."""
    if not isinstance(payload, Mapping):
        raise TypeError(f"expected a mapping, got {type(payload).__name__}")
    payload = dict(payload)
    data_payload = dict(payload.get("data") or {})
    if "sweep" in data_payload:
        data_payload["sweep"] = sweep_from_dict(data_payload["sweep"])
    if "platforms" in data_payload:
        data_payload["platforms"] = tuple(data_payload["platforms"])
    defaults = ReproConfig()
    return ReproConfig(
        data=DataConfig(**data_payload) if data_payload else defaults.data,
        graph=GraphConfig(**(payload.get("graph") or {})),
        model=ModelConfig(**(payload.get("model") or {})),
        training=TrainingConfig(**(payload.get("training") or {})),
        train_fraction=float(payload.get("train_fraction", 0.9)),
        seed=int(payload.get("seed", 0)),
    )
