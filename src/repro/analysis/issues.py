"""Issue and report data model of the static-analysis subsystem.

Every checker emits :class:`Issue` objects; the :class:`AnalyzerRunner`
aggregates them into a :class:`Report` that renders either as compiler-style
text (``file:line:col: severity: [checker] message``) or as JSON with a
stable, versioned schema (see ``ANALYSIS.md``).  The JSON form is the
interchange format: ``Report.from_dict(report.to_dict())`` is a fixpoint and
the planted-defect scenario round-trips every report through it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["Issue", "Report", "ReportError", "SCHEMA_VERSION", "Severity"]

#: Version of the JSON report schema; bump on breaking layout changes.
SCHEMA_VERSION = 1


class ReportError(ValueError):
    """Raised when a serialized report does not match the schema."""


class Severity(Enum):
    """How bad a finding is.  Orderable: ``ERROR > WARNING > INFO``."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 2, "warning": 1, "info": 0}[self.value]

    def __lt__(self, other: "Severity") -> bool:
        return self.rank < other.rank

    def __le__(self, other: "Severity") -> bool:
        return self.rank <= other.rank

    def __gt__(self, other: "Severity") -> bool:
        return self.rank > other.rank

    def __ge__(self, other: "Severity") -> bool:
        return self.rank >= other.rank


@dataclass(frozen=True)
class Issue:
    """One finding of one checker, anchored to a source location."""

    checker: str                 # registered checker name (or "frontend")
    severity: Severity
    message: str
    file: str = "<source>"
    line: int = 0
    column: int = 0
    function: str = ""           # enclosing function name, when known
    variable: str = ""           # primary variable/array the finding is about
    fix_hint: str = ""           # actionable suggestion, free text

    # ------------------------------------------------------------------ #
    def render(self) -> str:
        """Compiler-style one-line rendering."""
        anchor = f"{self.file}:{self.line}:{self.column}"
        text = f"{anchor}: {self.severity.value}: [{self.checker}] {self.message}"
        if self.fix_hint:
            text += f" (hint: {self.fix_hint})"
        return text

    def to_dict(self) -> Dict[str, object]:
        return {
            "checker": self.checker,
            "severity": self.severity.value,
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "column": self.column,
            "function": self.function,
            "variable": self.variable,
            "fix_hint": self.fix_hint,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Issue":
        try:
            severity = Severity(str(payload["severity"]))
        except (KeyError, ValueError) as error:
            raise ReportError(f"issue has a bad 'severity' field: {error}")
        missing = [key for key in ("checker", "message") if key not in payload]
        if missing:
            raise ReportError(f"issue is missing required fields {missing}")
        return cls(
            checker=str(payload["checker"]),
            severity=severity,
            message=str(payload["message"]),
            file=str(payload.get("file", "<source>")),
            line=int(payload.get("line", 0)),
            column=int(payload.get("column", 0)),
            function=str(payload.get("function", "")),
            variable=str(payload.get("variable", "")),
            fix_hint=str(payload.get("fix_hint", "")),
        )

    def sort_key(self) -> Tuple:
        return (self.file, self.line, self.column, -self.severity.rank,
                self.checker, self.message)


@dataclass(frozen=True)
class Report:
    """Aggregated findings of one analyzer run over one or more files."""

    issues: Tuple[Issue, ...] = ()
    files: Tuple[str, ...] = ()
    checkers: Tuple[str, ...] = ()

    # ------------------------------------------------------------------ #
    @property
    def ok(self) -> bool:
        """True when no issue reaches error severity."""
        return not any(i.severity is Severity.ERROR for i in self.issues)

    def count(self, severity: Optional[Severity] = None) -> int:
        if severity is None:
            return len(self.issues)
        return sum(1 for issue in self.issues if issue.severity is severity)

    def by_checker(self) -> Dict[str, List[Issue]]:
        grouped: Dict[str, List[Issue]] = {}
        for issue in self.issues:
            grouped.setdefault(issue.checker, []).append(issue)
        return grouped

    def for_checker(self, checker: str) -> List[Issue]:
        return [issue for issue in self.issues if issue.checker == checker]

    def merged(self, other: "Report") -> "Report":
        """Combine two reports (multi-file CLI runs)."""
        checkers = tuple(dict.fromkeys(self.checkers + other.checkers))
        return Report(
            issues=tuple(sorted(self.issues + other.issues,
                                key=Issue.sort_key)),
            files=tuple(dict.fromkeys(self.files + other.files)),
            checkers=checkers,
        )

    # ------------------------------------------------------------------ #
    def render(self) -> str:
        """Human-readable multi-line report."""
        lines = [issue.render() for issue in self.issues]
        by_sev = {sev.value: self.count(sev) for sev in Severity}
        summary = ", ".join(f"{count} {name}{'s' if count != 1 else ''}"
                            for name, count in by_sev.items() if count)
        lines.append(
            f"{len(self.files)} file{'s' if len(self.files) != 1 else ''} "
            f"analyzed, {len(self.issues)} issue"
            f"{'s' if len(self.issues) != 1 else ''}"
            + (f" ({summary})" if summary else ""))
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": SCHEMA_VERSION,
            "generator": "repro.analysis",
            "files": list(self.files),
            "checkers": list(self.checkers),
            "issues": [issue.to_dict() for issue in self.issues],
            "summary": {
                "total": len(self.issues),
                "by_severity": {sev.value: self.count(sev) for sev in Severity},
                "by_checker": {name: len(found)
                               for name, found in sorted(self.by_checker().items())},
            },
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Report":
        if not isinstance(payload, Mapping):
            raise ReportError(f"report payload must be a mapping, got {type(payload).__name__}")
        version = payload.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ReportError(
                f"unsupported report schema_version {version!r} "
                f"(this build reads version {SCHEMA_VERSION})")
        raw_issues = payload.get("issues", [])
        if not isinstance(raw_issues, Sequence) or isinstance(raw_issues, str):
            raise ReportError("report 'issues' must be a list")
        issues = tuple(Issue.from_dict(item) for item in raw_issues)
        return cls(
            issues=issues,
            files=tuple(str(f) for f in payload.get("files", [])),
            checkers=tuple(str(c) for c in payload.get("checkers", [])),
        )

    @classmethod
    def from_json(cls, text: str) -> "Report":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ReportError(f"report is not valid JSON: {error}")
        return cls.from_dict(payload)
