"""The built-in checkers.

Each checker is intentionally conservative: it reports only when the facts
prove (or very strongly indicate) a defect, because the planted-defect
scenario scores every checker for **zero false positives** on clean
generated kernels and on the seed benchmark kernels.  Heuristics that would
trade precision for recall belong in new, separately-registered checkers.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..clang.ast_nodes import (
    ASTNode,
    BinaryOperator,
    DeclRefExpr,
    ForStmt,
    OMPAtomicDirective,
    OMPCriticalDirective,
    OMPExecutableDirective,
    VarDecl,
)
from ..clang.semantics import counter_range, evaluate_constant, loop_counter_name
from ..clang.traversal import (
    enclosing_loops,
    iter_for_loops,
    iter_omp_directives,
    perfectly_nested_for_loops,
)
from .base import AnalysisContext, Checker, register_checker
from .dataflow import (
    Access,
    AccessKind,
    affine_counter_offset,
    is_array_like,
    names_in,
    unwrap,
)
from .issues import Issue, Severity

__all__ = [
    "ArrayBoundsChecker",
    "DeadStoreChecker",
    "LoopCarriedDependenceChecker",
    "OMPSharedWriteRaceChecker",
    "UninitReadChecker",
]

#: OpenMP loop directives that distribute iterations over threads/teams
#: (``simd`` vectorizes within one thread, so it cannot race by itself).
_THREADED_LOOP_KINDS = frozenset({
    "OMPParallelForDirective",
    "OMPForDirective",
    "OMPTeamsDistributeParallelForDirective",
    "OMPTargetTeamsDistributeParallelForDirective",
})

#: Clauses whose argument list privatizes (or reduces) the named variables.
_PRIVATIZING_CLAUSES = ("private", "firstprivate", "lastprivate", "linear",
                       "reduction")


def _is_inside(node: Optional[ASTNode], root: ASTNode) -> bool:
    while node is not None:
        if node is root:
            return True
        node = node.parent
    return False


def _privatized_names(directive: OMPExecutableDirective) -> Set[str]:
    """Variable names covered by private/firstprivate/lastprivate/linear/
    reduction clauses of *directive*."""
    names: Set[str] = set()
    for clause in directive.clauses:
        if clause.clause_name not in _PRIVATIZING_CLAUSES:
            continue
        text = clause.arguments_text
        if clause.clause_name == "reduction" and ":" in text:
            text = text.split(":", 1)[1]          # "+:s, t" -> "s, t"
        if clause.clause_name == "linear" and ":" in text:
            text = text.split(":", 1)[0]          # "i:2" -> "i"
        for part in text.split(","):
            name = part.strip()
            if name:
                names.add(name)
    return names


def _parallel_counters(directive: OMPExecutableDirective) -> Set[str]:
    """Induction variables whose iterations the directive distributes.

    ``collapse(n)`` widens the set to the first *n* perfectly-nested loops.
    """
    body = directive.body
    while isinstance(body, OMPExecutableDirective):  # e.g. parallel -> for
        body = body.body
    if not isinstance(body, ForStmt):
        return set()
    collapse = directive.clause_int("collapse", 1) or 1
    chain = perfectly_nested_for_loops(body)[:max(1, collapse)]
    counters = {loop_counter_name(loop) for loop in chain}
    counters.discard(None)
    return counters  # type: ignore[return-value]


def _in_synchronized_region(ref: ASTNode, directive: ASTNode) -> bool:
    """True when *ref* sits under a critical/atomic nested in *directive*."""
    node = ref.parent
    while node is not None and node is not directive:
        if isinstance(node, (OMPCriticalDirective, OMPAtomicDirective)):
            return True
        node = node.parent
    return False


# --------------------------------------------------------------------- #
@register_checker("uninit-read")
class UninitReadChecker(Checker):
    """Local scalar read before any value is stored into it."""

    name = "uninit-read"
    description = ("local scalar variables whose first use in evaluation "
                   "order is a read, with no initializer")
    default_severity = Severity.ERROR

    def check(self, ctx: AnalysisContext) -> Iterator[Issue]:
        for decl in ctx.facts.local_decls:
            if decl.init is not None or is_array_like(decl):
                continue
            for access in ctx.facts.accesses_of(decl):
                if access.kind is AccessKind.ADDRESS:
                    break        # escaped: the address may be written through
                if access.kind is AccessKind.WRITE:
                    break        # initialized before any read
                if access.kind.reads:
                    yield ctx.issue(
                        self,
                        f"variable {decl.name!r} is read before it is "
                        f"assigned a value",
                        location=access.location,
                        variable=decl.name,
                        fix_hint=f"initialize {decl.name!r} at its "
                                 f"declaration (line {decl.location[0]})",
                    )
                    break


# --------------------------------------------------------------------- #
@register_checker("array-bounds")
class ArrayBoundsChecker(Checker):
    """Subscripts provably outside the declared extent of a local array.

    Constant indexes are folded directly; counter-based indexes of the form
    ``c``, ``c + k``, ``c - k`` are bounded through
    :func:`repro.clang.semantics.counter_range` on the enclosing loop.
    Arrays declared as pointers (the seed kernels' calling convention) have
    no extent, so the checker stays silent for them.
    """

    name = "array-bounds"
    description = ("constant-foldable subscripts outside declared array "
                   "extents")
    default_severity = Severity.ERROR

    def check(self, ctx: AnalysisContext) -> Iterator[Issue]:
        reported: Set[Tuple[str, int, int]] = set()
        for access in ctx.facts.accesses:
            decl = access.decl
            if not access.is_element or not isinstance(decl, VarDecl):
                continue
            if not decl.array_dims:
                continue
            for dim, index in enumerate(access.indices):
                if dim >= len(decl.array_dims):
                    break
                size = evaluate_constant(decl.array_dims[dim], ctx.env)
                if size is None:
                    continue
                bounds = self._index_bounds(index, ctx)
                if bounds is None:
                    continue
                low, high = bounds
                if 0 <= low and high < int(size):
                    continue
                key = (decl.name, dim, access.location[0])
                if key in reported:
                    continue
                reported.add(key)
                shape = "below zero" if low < 0 else \
                    f"up to {high} but the extent is {int(size)}"
                yield ctx.issue(
                    self,
                    f"index into dimension {dim} of array {decl.name!r} "
                    f"reaches {shape}",
                    location=access.location,
                    variable=decl.name,
                    fix_hint=f"keep the subscript within "
                             f"[0, {int(size) - 1}]",
                )

    @staticmethod
    def _index_bounds(index: ASTNode,
                      ctx: AnalysisContext) -> Optional[Tuple[int, int]]:
        """Inclusive (min, max) the subscript can take, or None."""
        counters: Dict[str, Tuple[int, int]] = {}
        for loop in enclosing_loops(index):
            if not isinstance(loop, ForStmt):
                continue
            name = loop_counter_name(loop)
            if name is None:
                continue
            span = counter_range(loop, ctx.env)
            if span is not None:
                counters[name] = span
        hit = affine_counter_offset(index, list(counters))
        if hit is not None:
            counter, offset = hit
            low, high = counters[counter]
            return (low + offset, high + offset)
        # Constant folding sees through initializers, which is unsound for
        # variables that are ever reassigned (loop counters included) — only
        # fold indexes whose referenced variables are never written.
        for node in index.walk():
            if isinstance(node, DeclRefExpr) and node.referenced_decl is not None:
                accesses = ctx.facts.accesses_of(node.referenced_decl)
                if any(a.kind.writes for a in accesses):
                    return None
        value = evaluate_constant(index, ctx.env)
        if value is not None and float(value).is_integer():
            return (int(value), int(value))
        return None


# --------------------------------------------------------------------- #
@register_checker("dead-store")
class DeadStoreChecker(Checker):
    """Local variables that are never read: dead stores and unused decls.

    Two loop-safe cases only — a declaration with no references at all
    (unused variable), and one whose references are exclusively plain
    writes (every stored value is discarded).  Compound assignments count
    as reads, so accumulators never trigger.
    """

    name = "dead-store"
    description = "locals never read: unused variables and dead stores"
    default_severity = Severity.WARNING

    def check(self, ctx: AnalysisContext) -> Iterator[Issue]:
        for decl in ctx.facts.local_decls:
            if id(decl) in ctx.facts.escaped:
                continue
            accesses = ctx.facts.accesses_of(decl)
            if any(a.kind is not AccessKind.WRITE for a in accesses):
                continue    # something reads it (or takes its address)
            if not accesses and decl.init is None and not decl.array_dims:
                yield ctx.issue(
                    self,
                    f"variable {decl.name!r} is declared but never used",
                    location=decl.location,
                    variable=decl.name,
                    fix_hint=f"remove the declaration of {decl.name!r}",
                )
                continue
            if accesses:
                last = accesses[-1]
                yield ctx.issue(
                    self,
                    f"value stored to {decl.name!r} is never read",
                    location=last.location,
                    variable=decl.name,
                    fix_hint=f"drop the stores to {decl.name!r} or use its "
                             f"value",
                )


# --------------------------------------------------------------------- #
@register_checker("omp-race")
class OMPSharedWriteRaceChecker(Checker):
    """Unsynchronized writes to shared data inside threaded OpenMP loops.

    Flags (a) writes to shared scalars that are neither privatized nor
    reduced, and (b) writes to array elements whose subscripts involve none
    of the parallel induction variables — every thread then hits the same
    elements.  Writes under ``critical``/``atomic`` and variables named in
    ``private``/``firstprivate``/``lastprivate``/``linear``/``reduction``
    clauses are exempt.
    """

    name = "omp-race"
    description = ("writes to shared variables in OpenMP worksharing loops "
                   "without privatization, reduction or synchronization")
    default_severity = Severity.ERROR

    def check(self, ctx: AnalysisContext) -> Iterator[Issue]:
        for directive in iter_omp_directives(ctx.function):
            if directive.kind not in _THREADED_LOOP_KINDS:
                continue
            yield from self._check_directive(ctx, directive)

    def _check_directive(self, ctx: AnalysisContext,
                         directive: OMPExecutableDirective) -> Iterator[Issue]:
        counters = _parallel_counters(directive)
        privatized = _privatized_names(directive)
        reported: Set[Tuple[str, int]] = set()
        for access in ctx.facts.accesses_within(directive):
            if not access.kind.writes:
                continue
            decl = access.decl
            name = getattr(decl, "name", "")
            if name in privatized or name in counters:
                continue
            if _is_inside(decl, directive):
                continue    # declared inside the parallel region: private
            if _in_synchronized_region(access.ref, directive):
                continue
            if access.is_element:
                index_names = set()
                for index in access.indices:
                    index_names |= names_in(index)
                if index_names & counters:
                    continue    # distinct iterations touch distinct elements
                message = (f"array {name!r} is written at indices independent "
                           f"of the parallel loop counters "
                           f"({', '.join(sorted(counters)) or 'none'})")
                hint = (f"index {name!r} with the parallel counter, or guard "
                        f"the update with '#pragma omp atomic'")
            else:
                message = (f"shared variable {name!r} is written by every "
                           f"thread of the parallel loop")
                if self._is_reduction_style(access):
                    hint = (f"add 'reduction(...:{name})' to the pragma")
                else:
                    hint = (f"add 'private({name})' to the pragma, or make "
                            f"the write atomic")
            key = (name, access.location[0])
            if key in reported:
                continue
            reported.add(key)
            yield ctx.issue(self, message, location=access.location,
                            variable=name, fix_hint=hint)

    @staticmethod
    def _is_reduction_style(access: Access) -> bool:
        """True for ``s += e``, ``s++`` and ``s = s op e`` update shapes."""
        if access.kind is AccessKind.READWRITE:
            return True
        parent = access.ref.parent
        while parent is not None and not isinstance(parent, BinaryOperator):
            parent = parent.parent
        if isinstance(parent, BinaryOperator) and parent.opcode == "=":
            target = unwrap(parent.lhs)
            if isinstance(target, DeclRefExpr):
                return target.name in names_in(parent.rhs)
        return False


# --------------------------------------------------------------------- #
@register_checker("loop-carried-dep")
class LoopCarriedDependenceChecker(Checker):
    """Reads and writes of one array at different counter offsets.

    When a loop over ``c`` writes ``A[c + w]`` and reads ``A[c + r]`` with
    ``w != r``, iterations communicate through ``A`` — the classic
    recurrence (``A[i] = A[i-1] + …``) that makes naive parallelization
    wrong.  Only plain affine shifts of the loop counter are compared;
    flattened indexes such as ``i*M + j`` are left alone.  The finding is a
    warning when the loop is actually parallelized and a note otherwise.
    """

    name = "loop-carried-dep"
    description = ("arrays written and read at different offsets of the "
                   "same loop counter")
    default_severity = Severity.WARNING

    def check(self, ctx: AnalysisContext) -> Iterator[Issue]:
        for loop in iter_for_loops(ctx.function):
            counter = loop_counter_name(loop)
            if counter is None or loop.body is None:
                continue
            yield from self._check_loop(ctx, loop, counter)

    def _check_loop(self, ctx: AnalysisContext, loop: ForStmt,
                    counter: str) -> Iterator[Issue]:
        # (decl name, dim) -> offsets seen in writes / reads
        writes: Dict[Tuple[str, int], Dict[int, Access]] = {}
        reads: Dict[Tuple[str, int], Set[int]] = {}
        for access in ctx.facts.accesses_within(loop.body):
            if not access.is_element:
                continue
            name = getattr(access.decl, "name", "")
            for dim, index in enumerate(access.indices):
                hit = affine_counter_offset(index, (counter,))
                if hit is None:
                    continue
                offset = hit[1]
                if access.kind.writes:
                    writes.setdefault((name, dim), {}).setdefault(
                        offset, access)
                if access.kind.reads:
                    reads.setdefault((name, dim), set()).add(offset)
        parallel = self._is_parallelized(loop, counter)
        for key, write_offsets in writes.items():
            name, dim = key
            read_offsets = reads.get(key, set())
            conflicts = {(w, r) for w in write_offsets for r in read_offsets
                         if w != r}
            if not conflicts:
                continue
            w, r = sorted(conflicts)[0]
            access = write_offsets[w]
            severity = Severity.WARNING if parallel else Severity.INFO
            prefix = ("parallelized loop carries a dependence"
                      if parallel else "loop carries a dependence")
            yield ctx.issue(
                self,
                f"{prefix}: {name!r} is written at offset {w:+d} and read "
                f"at offset {r:+d} of counter {counter!r}",
                severity=severity,
                location=access.location,
                variable=name,
                fix_hint="iterations are not independent; keep this loop "
                         "serial or restructure the recurrence",
            )

    @staticmethod
    def _is_parallelized(loop: ForStmt, counter: str) -> bool:
        node = loop.parent
        while node is not None:
            if isinstance(node, OMPExecutableDirective) \
                    and node.kind in _THREADED_LOOP_KINDS:
                if counter in _parallel_counters(node):
                    return True
            node = node.parent
        return False
