"""The :class:`AnalyzerRunner` — parse once, fan out to every checker.

The runner owns the per-translation-unit pipeline (lex → parse →
``set_parents`` → ``resolve_references``), computes the shared
:class:`~repro.analysis.dataflow.FunctionFacts` once per function, then
hands the same :class:`~repro.analysis.base.AnalysisContext` to each
selected checker.  Frontend failures (lexer, parser, pragma errors) never
raise out of the analysis API: they surface as ``checker="frontend"``
issues of error severity, so batch runs over a directory always produce a
report.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Mapping, Optional, Sequence, Union

from ..clang.ast_nodes import FunctionDecl, set_parents
from ..clang.lexer import LexError
from ..clang.parser import ParseError, parse_source
from ..clang.pragmas import PragmaError
from ..clang.semantics import ConstantEnvironment, resolve_references
from .base import AnalysisContext, Checker, make_checkers
from .dataflow import collect_function_facts
from .issues import Issue, Report, Severity

__all__ = ["AnalyzerRunner"]

#: Pseudo-checker name carried by parse-failure issues.
FRONTEND = "frontend"


class AnalyzerRunner:
    """Run a set of checkers over C/OpenMP sources.

    Parameters
    ----------
    checkers:
        Checker names to run (default: every registered checker), or
        ready-made :class:`Checker` instances.
    env:
        Optional mapping of problem-size names to values (``{"N": 256}``)
        folded into trip counts and array extents, mirroring how the
        advisor seeds its loop analysis.
    """

    def __init__(
        self,
        checkers: Optional[Sequence[Union[str, Checker]]] = None,
        env: Optional[Union[ConstantEnvironment, Mapping[str, int]]] = None,
    ) -> None:
        if checkers is not None and any(isinstance(c, Checker) for c in checkers):
            self.checkers: List[Checker] = [
                c if isinstance(c, Checker) else make_checkers([c])[0]
                for c in checkers
            ]
        else:
            self.checkers = make_checkers(checkers)  # type: ignore[arg-type]
        if env is None:
            self.env = ConstantEnvironment()
        elif isinstance(env, ConstantEnvironment):
            self.env = env
        else:
            self.env = ConstantEnvironment(dict(env))

    @property
    def checker_names(self) -> List[str]:
        return [checker.name for checker in self.checkers]

    # ------------------------------------------------------------------ #
    def analyze_source(self, source: str, file: str = "<source>") -> Report:
        """Analyze one translation unit given as a string."""
        try:
            tu = parse_source(source, filename=file)
        except (LexError, ParseError, PragmaError) as error:
            issue = Issue(
                checker=FRONTEND,
                severity=Severity.ERROR,
                message=f"{type(error).__name__}: {error}",
                file=file,
            )
            return Report(issues=(issue,), files=(file,),
                          checkers=tuple(self.checker_names))
        set_parents(tu)
        resolve_references(tu, strict=False)
        issues: List[Issue] = []
        for function in tu.children:
            if not isinstance(function, FunctionDecl) or function.body is None:
                continue
            facts = collect_function_facts(function)
            ctx = AnalysisContext(tu=tu, function=function, facts=facts,
                                  file=file, env=self.env)
            for checker in self.checkers:
                issues.extend(checker.check(ctx))
        return Report(
            issues=tuple(sorted(issues, key=Issue.sort_key)),
            files=(file,),
            checkers=tuple(self.checker_names),
        )

    def analyze_file(self, path: Union[str, os.PathLike]) -> Report:
        """Analyze one file on disk; unreadable files become frontend issues."""
        name = os.fspath(path)
        try:
            with open(name, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as error:
            issue = Issue(checker=FRONTEND, severity=Severity.ERROR,
                          message=f"cannot read file: {error}", file=name)
            return Report(issues=(issue,), files=(name,),
                          checkers=tuple(self.checker_names))
        return self.analyze_source(source, file=name)

    def analyze_paths(self, paths: Iterable[Union[str, os.PathLike]]) -> Report:
        """Analyze several files and merge their reports."""
        merged = Report(checkers=tuple(self.checker_names))
        for path in paths:
            merged = merged.merged(self.analyze_file(path))
        return merged
