"""Command-line front end: ``python -m repro.analysis [options] files...``

Examples::

    python -m repro.analysis examples/kernels/*.c
    python -m repro.analysis --json --sizes N=256,M=128 kernel.c
    python -m repro.analysis --checkers omp-race,uninit-read kernel.c
    python -m repro.analysis --list-checkers

Exit status: 0 on a completed run, 1 with ``--strict`` when any
error-severity issue was found, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from .base import checker_registry, default_checker_names
from .issues import Severity
from .runner import AnalyzerRunner

__all__ = ["build_parser", "main"]


def _parse_sizes(text: str) -> Dict[str, int]:
    """Parse ``N=256,M=128`` into a constant-environment mapping."""
    sizes: Dict[str, int] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        name, sep, value = part.partition("=")
        if not sep or not name.strip():
            raise argparse.ArgumentTypeError(
                f"expected NAME=INT, got {part!r}")
        try:
            sizes[name.strip()] = int(value.strip())
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"size {name.strip()!r} has a non-integer value {value!r}")
    return sizes


def _parse_checkers(text: str) -> List[str]:
    names = [name.strip() for name in text.split(",") if name.strip()]
    if not names:
        raise argparse.ArgumentTypeError("empty checker list")
    return names


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analysis of C/OpenMP kernels: pluggable AST "
                    "checkers over the repro.clang frontend.",
    )
    parser.add_argument("files", nargs="*", metavar="FILE",
                        help="C source files to analyze")
    parser.add_argument("--json", action="store_true",
                        help="emit the JSON report instead of text")
    parser.add_argument("--checkers", type=_parse_checkers, default=None,
                        metavar="A,B,...",
                        help="comma-separated checker names "
                             "(default: all registered)")
    parser.add_argument("--sizes", type=_parse_sizes, default=None,
                        metavar="N=256,M=128",
                        help="problem-size bindings folded into trip counts "
                             "and array extents")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when any error-severity issue is found")
    parser.add_argument("--list-checkers", action="store_true",
                        help="list registered checkers and exit")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_checkers:
        for name in default_checker_names():
            cls = checker_registry.get(name)
            description = getattr(cls, "description", "")
            print(f"{name:20s} {description}")
        return 0

    if not args.files:
        parser.error("no input files (or use --list-checkers)")

    try:
        runner = AnalyzerRunner(checkers=args.checkers, env=args.sizes)
    except KeyError as error:
        parser.error(str(error.args[0]) if error.args else str(error))

    report = runner.analyze_paths(args.files)
    if args.json:
        print(report.to_json())
    else:
        print(report.render())
    if args.strict and not report.ok:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
