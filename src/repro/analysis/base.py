"""Checker abstraction and registry.

Checkers plug into the analyzer exactly the way GNN convolutions plug into
the trainer: a string-keyed :class:`~repro.api.registries.Registry` populated
lazily by importing the module that carries the ``@register_checker``
decorators.  The runner parses each translation unit once, computes the
shared :class:`~repro.analysis.dataflow.FunctionFacts`, and fans the result
out to every selected checker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Tuple

from ..api.registries import Registry
from ..clang.ast_nodes import FunctionDecl, TranslationUnitDecl
from ..clang.semantics import ConstantEnvironment
from .dataflow import FunctionFacts
from .issues import Issue, Severity

__all__ = [
    "AnalysisContext",
    "Checker",
    "checker_registry",
    "default_checker_names",
    "get_checker",
    "register_checker",
]


@dataclass
class AnalysisContext:
    """Per-function view handed to each checker by the runner.

    The expensive work — parsing, reference resolution, access linearization
    — happens once in the runner; checkers only read from here.
    """

    tu: TranslationUnitDecl
    function: FunctionDecl
    facts: FunctionFacts
    file: str = "<source>"
    #: constant environment seeded with any ``--sizes`` bindings, used for
    #: trip-count and array-extent folding.
    env: ConstantEnvironment = field(default_factory=ConstantEnvironment)

    def issue(self, checker: "Checker", message: str, *,
              severity: Optional[Severity] = None,
              location: Tuple[int, int] = (0, 0),
              variable: str = "", fix_hint: str = "") -> Issue:
        """Build an :class:`Issue` pre-filled with file/function context."""
        line, column = location
        return Issue(
            checker=checker.name,
            severity=severity if severity is not None else checker.default_severity,
            message=message,
            file=self.file,
            line=line,
            column=column,
            function=self.function.name,
            variable=variable,
            fix_hint=fix_hint,
        )


class Checker:
    """Base class for one analysis.

    Subclasses set :attr:`name` / :attr:`description` and implement
    :meth:`check`, yielding :class:`Issue` objects for one function at a
    time.  Checkers must be stateless across functions — the runner reuses
    one instance per run.
    """

    name: str = ""
    description: str = ""
    default_severity: Severity = Severity.WARNING

    def check(self, ctx: AnalysisContext) -> Iterator[Issue]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"


# --------------------------------------------------------------------- #
def _populate_checkers(registry: Registry) -> None:
    # the @register_checker decorators in repro.analysis.checkers run on import
    from . import checkers  # noqa: F401


#: Checker classes keyed by checker name (``uninit-read``, ``omp-race``, …).
checker_registry = Registry("checker", populate=_populate_checkers)
register_checker = checker_registry.register


def get_checker(name: str) -> Checker:
    """Instantiate the registered checker class for *name*."""
    cls = checker_registry.get(name)
    return cls()  # type: ignore[operator]


def default_checker_names() -> List[str]:
    """All registered checker names, sorted — the runner's default set."""
    return checker_registry.keys()


def make_checkers(names: Optional[Iterable[str]] = None) -> List[Checker]:
    """Instantiate the selected (or all) checkers, validating names."""
    selected = list(names) if names is not None else default_checker_names()
    return [get_checker(name) for name in selected]
