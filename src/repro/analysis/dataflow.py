"""Shared dataflow facts the checkers consume.

The :class:`~repro.analysis.runner.AnalyzerRunner` parses each translation
unit once and resolves references once; this module then linearizes every
function body into an ordered sequence of variable :class:`Access`\\ es that
approximates C evaluation order (assignment right-hand sides before their
targets, loop init → condition → body → increment), classifying each
``DeclRefExpr`` as a read, a write, a read-modify-write or an address-taking.
Array element accesses are collapsed onto the array declaration and carry
their subscript chain so the bounds / race / dependence checkers can reason
about index expressions without re-walking the tree.

Everything here is computed once per function and handed to every checker —
the fan-out architecture the related static-analyzer repos use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..clang.ast_nodes import (
    ASTNode,
    ArraySubscriptExpr,
    BinaryOperator,
    CStyleCastExpr,
    CallExpr,
    CompoundAssignOperator,
    DeclRefExpr,
    DeclStmt,
    DoStmt,
    ForStmt,
    FunctionDecl,
    ImplicitCastExpr,
    MemberExpr,
    ParenExpr,
    ParmVarDecl,
    UnaryOperator,
    VarDecl,
    WhileStmt,
)
from ..clang.traversal import preorder

__all__ = [
    "Access",
    "AccessKind",
    "FunctionFacts",
    "affine_counter_offset",
    "collect_function_facts",
    "is_array_like",
    "is_local_scalar",
    "names_in",
    "unwrap",
]


class AccessKind(Enum):
    """How a ``DeclRefExpr`` uses its declaration."""

    READ = "read"
    WRITE = "write"
    READWRITE = "readwrite"      # ++/--, compound assignment targets
    ADDRESS = "address"          # &x — the variable escapes

    @property
    def reads(self) -> bool:
        return self in (AccessKind.READ, AccessKind.READWRITE)

    @property
    def writes(self) -> bool:
        return self in (AccessKind.WRITE, AccessKind.READWRITE)


@dataclass(frozen=True)
class Access:
    """One use of a declared variable inside a function body."""

    ref: DeclRefExpr
    decl: ASTNode                       # VarDecl / ParmVarDecl / FunctionDecl
    kind: AccessKind
    order: int                          # evaluation-order sequence number
    #: subscript chain for element accesses (dim 0 first); empty for scalars
    #: and for whole-array references (``foo(A)``).
    indices: Tuple[ASTNode, ...] = ()
    #: opcode of the assignment/unary operator driving a write, e.g. "=",
    #: "+=", "++" — empty for plain reads.
    opcode: str = ""

    @property
    def is_element(self) -> bool:
        return bool(self.indices)

    @property
    def location(self) -> Tuple[int, int]:
        return self.ref.location


def unwrap(node: Optional[ASTNode]) -> Optional[ASTNode]:
    """Strip parentheses and (implicit or C-style) casts."""
    while isinstance(node, (ParenExpr, ImplicitCastExpr, CStyleCastExpr)):
        node = node.children[0] if node.children else None
    return node


def is_array_like(decl: Optional[ASTNode]) -> bool:
    """True for declarations of arrays or pointers (element storage)."""
    if isinstance(decl, VarDecl):
        return bool(decl.array_dims) or "*" in decl.type_name
    if isinstance(decl, ParmVarDecl):
        return "*" in decl.type_name
    return False


def is_local_scalar(decl: Optional[ASTNode], function: FunctionDecl) -> bool:
    """True for scalar ``VarDecl``\\ s declared inside *function*."""
    if not isinstance(decl, VarDecl) or is_array_like(decl):
        return False
    node: Optional[ASTNode] = decl.parent
    while node is not None:
        if node is function:
            return True
        node = node.parent
    return False


def names_in(node: Optional[ASTNode]) -> Set[str]:
    """All identifier spellings referenced inside an expression subtree."""
    if node is None:
        return set()
    return {n.name for n in preorder(node) if isinstance(n, DeclRefExpr)}


def affine_counter_offset(
    expr: Optional[ASTNode],
    counters: Sequence[str],
) -> Optional[Tuple[str, int]]:
    """Recognize indexes of the form ``c``, ``c + k``, ``c - k`` or ``k + c``.

    Returns ``(counter_name, constant_offset)`` when *expr* is an affine
    shift of one of the given loop counters, ``None`` otherwise.  This is
    exactly the index shape the loop-carried-dependence heuristic compares.
    """
    expr = unwrap(expr)
    if isinstance(expr, DeclRefExpr):
        return (expr.name, 0) if expr.name in counters else None
    if isinstance(expr, BinaryOperator) and expr.opcode in {"+", "-"}:
        lhs, rhs = unwrap(expr.lhs), unwrap(expr.rhs)
        from ..clang.semantics import evaluate_constant
        if isinstance(lhs, DeclRefExpr) and lhs.name in counters:
            offset = evaluate_constant(rhs)
            if offset is not None and float(offset).is_integer():
                k = int(offset)
                return (lhs.name, k if expr.opcode == "+" else -k)
        if expr.opcode == "+" and isinstance(rhs, DeclRefExpr) and rhs.name in counters:
            offset = evaluate_constant(lhs)
            if offset is not None and float(offset).is_integer():
                return (rhs.name, int(offset))
    return None


@dataclass
class FunctionFacts:
    """Everything the checkers need to know about one function, computed once."""

    function: FunctionDecl
    accesses: List[Access] = field(default_factory=list)
    by_decl: Dict[int, List[Access]] = field(default_factory=dict)
    local_decls: List[VarDecl] = field(default_factory=list)
    escaped: Set[int] = field(default_factory=set)     # id(decl) of &-taken vars

    def accesses_of(self, decl: ASTNode) -> List[Access]:
        return self.by_decl.get(id(decl), [])

    def accesses_within(self, root: ASTNode) -> List[Access]:
        """The accesses whose reference node lies inside *root*'s subtree."""
        inside = {id(node) for node in root.walk()}
        return [access for access in self.accesses if id(access.ref) in inside]


_COMPOUND_OPS = frozenset({"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
                           "<<=", ">>="})


class _AccessCollector:
    """Single pass turning a function body into an ordered access sequence."""

    def __init__(self, function: FunctionDecl) -> None:
        self.function = function
        self.facts = FunctionFacts(function=function)
        self._order = 0

    # ------------------------------------------------------------------ #
    def _record(self, ref: DeclRefExpr, kind: AccessKind,
                indices: Tuple[ASTNode, ...] = (), opcode: str = "") -> None:
        decl = ref.referenced_decl
        if decl is None:
            return
        access = Access(ref=ref, decl=decl, kind=kind, order=self._order,
                        indices=indices, opcode=opcode)
        self._order += 1
        self.facts.accesses.append(access)
        self.facts.by_decl.setdefault(id(decl), []).append(access)
        if kind is AccessKind.ADDRESS:
            self.facts.escaped.add(id(decl))

    def _subscript_chain(
        self, node: ArraySubscriptExpr,
    ) -> Tuple[Optional[DeclRefExpr], Tuple[ASTNode, ...]]:
        """Resolve ``A[i][j]`` to the base reference and dim-ordered indexes."""
        indices: List[ASTNode] = []
        current: Optional[ASTNode] = node
        while isinstance(current, ArraySubscriptExpr):
            indices.append(current.index)
            current = unwrap(current.base)
        indices.reverse()
        if isinstance(current, DeclRefExpr):
            return current, tuple(indices)
        return None, tuple(indices)

    # ------------------------------------------------------------------ #
    def _visit_lvalue(self, node: Optional[ASTNode], kind: AccessKind,
                      opcode: str) -> None:
        """Record the write side of an assignment target."""
        node = unwrap(node)
        if isinstance(node, DeclRefExpr):
            self._record(node, kind, opcode=opcode)
            return
        if isinstance(node, ArraySubscriptExpr):
            base, indices = self._subscript_chain(node)
            for index in indices:           # index expressions are reads
                self.visit(index)
            if base is not None:
                self._record(base, kind, indices=indices, opcode=opcode)
            return
        if isinstance(node, UnaryOperator) and node.opcode == "*":
            # *p = ... writes through the pointer: an element write with an
            # unknown index
            target = unwrap(node.operand)
            if isinstance(target, DeclRefExpr):
                self._record(target, kind, indices=(node,), opcode=opcode)
                return
        # member expressions and anything fancier: fall back to generic reads
        if node is not None:
            self.visit(node)

    def visit(self, node: Optional[ASTNode]) -> None:
        if node is None:
            return
        if isinstance(node, BinaryOperator) and node.is_assignment:
            # C evaluates the value before storing it
            self.visit(node.rhs)
            kind = AccessKind.READWRITE if node.opcode in _COMPOUND_OPS \
                else AccessKind.WRITE
            self._visit_lvalue(node.lhs, kind, node.opcode)
            return
        if isinstance(node, UnaryOperator):
            if node.opcode in {"++", "--"}:
                self._visit_lvalue(node.operand, AccessKind.READWRITE, node.opcode)
                return
            if node.opcode == "&":
                target = unwrap(node.operand)
                while isinstance(target, ArraySubscriptExpr):
                    self.visit(target.index)
                    target = unwrap(target.base)
                if isinstance(target, DeclRefExpr):
                    self._record(target, AccessKind.ADDRESS, opcode="&")
                return
            self.visit(node.operand)
            return
        if isinstance(node, ArraySubscriptExpr):
            base, indices = self._subscript_chain(node)
            for index in indices:
                self.visit(index)
            if base is not None:
                self._record(base, AccessKind.READ, indices=indices)
            else:
                self.visit(unwrap(node.base))
            return
        if isinstance(node, DeclRefExpr):
            self._record(node, AccessKind.READ)
            return
        if isinstance(node, CallExpr):
            # a pointer/array handed to a callee may be written there: treat
            # it as escaping so the local-only checkers stand down
            for arg in node.args:
                plain = unwrap(arg)
                if isinstance(plain, DeclRefExpr) and is_array_like(plain.referenced_decl):
                    self._record(plain, AccessKind.ADDRESS, opcode="call")
                else:
                    self.visit(arg)
            return
        if isinstance(node, VarDecl):
            for dim in node.array_dims:
                self.visit(dim)
            if node.init is not None:
                self.visit(node.init)
            return
        if isinstance(node, (ForStmt, WhileStmt, DoStmt, DeclStmt)):
            for child in node.children:   # child order matches execution order
                self.visit(child)
            return
        if isinstance(node, MemberExpr):
            self.visit(node.base)
            return
        for child in node.children:
            self.visit(child)

    # ------------------------------------------------------------------ #
    def run(self) -> FunctionFacts:
        body = self.function.body
        if body is not None:
            self.visit(body)
        for node in preorder(self.function):
            if isinstance(node, VarDecl) and node is not self.function:
                if is_local_scalar(node, self.function) or is_array_like(node):
                    if self._declared_inside(node):
                        self.facts.local_decls.append(node)
        return self.facts

    def _declared_inside(self, decl: VarDecl) -> bool:
        node: Optional[ASTNode] = decl.parent
        while node is not None:
            if node is self.function:
                return True
            node = node.parent
        return False


def collect_function_facts(function: FunctionDecl) -> FunctionFacts:
    """Linearize *function* into the shared fact base (references must be
    resolved first — the runner guarantees this)."""
    return _AccessCollector(function).run()
