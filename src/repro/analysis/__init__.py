"""``repro.analysis`` — pluggable static analysis for C/OpenMP kernels.

The subsystem parses each translation unit once through the
:mod:`repro.clang` frontend and fans the AST out to independent
:class:`Checker` plugins held in a string-keyed registry (the same
mechanism that registers GNN convolutions and benchmark kernels).  Findings
are :class:`Issue` objects aggregated into a :class:`Report` with both a
compiler-style text rendering and a versioned JSON schema; see
``ANALYSIS.md`` for the architecture and ``python -m repro.analysis`` for
the command-line front end.

Built-in checkers: ``uninit-read``, ``array-bounds``, ``dead-store``,
``omp-race`` and ``loop-carried-dep``.
"""

from .base import (
    AnalysisContext,
    Checker,
    checker_registry,
    default_checker_names,
    get_checker,
    make_checkers,
    register_checker,
)
from .dataflow import (
    Access,
    AccessKind,
    FunctionFacts,
    affine_counter_offset,
    collect_function_facts,
    is_array_like,
    is_local_scalar,
    names_in,
    unwrap,
)
from .issues import SCHEMA_VERSION, Issue, Report, ReportError, Severity
from .runner import AnalyzerRunner

__all__ = [
    "Access",
    "AccessKind",
    "AnalysisContext",
    "AnalyzerRunner",
    "Checker",
    "FunctionFacts",
    "Issue",
    "Report",
    "ReportError",
    "SCHEMA_VERSION",
    "Severity",
    "affine_counter_offset",
    "checker_registry",
    "collect_function_facts",
    "default_checker_names",
    "get_checker",
    "is_array_like",
    "is_local_scalar",
    "make_checkers",
    "names_in",
    "register_checker",
    "unwrap",
]
