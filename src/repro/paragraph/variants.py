"""Graph-representation variants used in the ablation study (§V-C).

The paper compares three levels of the representation:

* **Raw AST** — only the AST nodes and ``Child`` edges, no weights (all 1),
* **Augmented AST** — all eight edge types, still no weights,
* **ParaGraph** — all edge types plus the execution-count edge weights.

:class:`GraphVariant` names those levels and is consumed by
:func:`repro.paragraph.builder.build_paragraph` and by the ablation
experiment drivers.
"""

from __future__ import annotations

from enum import Enum


class GraphVariant(Enum):
    """Ablation level of the graph representation."""

    RAW_AST = "raw_ast"
    AUGMENTED_AST = "augmented_ast"
    PARAGRAPH = "paragraph"

    @property
    def includes_augmentation_edges(self) -> bool:
        """Whether NextToken/NextSib/Ref/ForExec/ForNext/ConTrue/ConFalse are added."""
        return self is not GraphVariant.RAW_AST

    @property
    def includes_weights(self) -> bool:
        """Whether Child edges carry execution-count weights."""
        return self is GraphVariant.PARAGRAPH

    @property
    def display_name(self) -> str:
        return {
            GraphVariant.RAW_AST: "Raw AST",
            GraphVariant.AUGMENTED_AST: "Augmented AST",
            GraphVariant.PARAGRAPH: "ParaGraph",
        }[self]


#: The order used in the paper's Table IV / Fig. 7.
ABLATION_ORDER = (GraphVariant.RAW_AST, GraphVariant.AUGMENTED_AST, GraphVariant.PARAGRAPH)
