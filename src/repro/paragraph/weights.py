"""Edge-weight computation for ParaGraph (§III-A.3 of the paper).

Weights are attached to ``Child`` edges only and encode how many times the
target node is expected to execute:

* the default weight is 1 (each statement executes once),
* statements inside a loop body inherit the loop's iteration count as a
  multiplicative factor; when the loop is statically scheduled across OpenMP
  threads the iteration count is divided by the number of threads (the
  paper's 100-iterations / 4-threads → weight-25 example),
* the two branches of an ``if`` statement are each assumed to execute with
  probability 1/2, so weights below a branch are halved.

The computation is purely static.  Loop trip counts come from
:func:`repro.clang.semantics.estimate_trip_count` with the kernel's
problem-size bindings supplied through a
:class:`~repro.clang.semantics.ConstantEnvironment`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from ..clang.ast_nodes import (
    ASTNode,
    DoStmt,
    ForStmt,
    IfStmt,
    OMPExecutableDirective,
    OMP_LOOP_DIRECTIVE_KINDS,
    WhileStmt,
)
from ..clang.semantics import ConstantEnvironment, estimate_trip_count
from ..clang.traversal import perfectly_nested_for_loops


@dataclass
class WeightConfig:
    """Parameters of the static weight model.

    Attributes
    ----------
    num_threads:
        Threads sharing a statically-scheduled parallel loop (OpenMP
        ``parallel for``); the parallelized iteration space is divided by
        this value.
    num_teams:
        Teams for target offloading directives; for
        ``target teams distribute parallel for`` the iteration space is
        divided by ``num_teams * num_threads``.
    default_trip_count:
        Iteration count assumed for loops whose bounds cannot be determined
        statically (``while`` loops, data-dependent ``for`` bounds).
    branch_probability:
        Probability assigned to each branch of an ``if`` (the paper fixes
        this to 1/2).
    env:
        Problem-size variable bindings used by the trip-count analysis.
    """

    num_threads: int = 1
    num_teams: int = 1
    default_trip_count: int = 16
    branch_probability: float = 0.5
    env: ConstantEnvironment = field(default_factory=ConstantEnvironment)

    def parallelism_for(self, directive: OMPExecutableDirective) -> int:
        """Degree of parallelism a loop directive distributes iterations over."""
        kind = directive.kind
        if kind == "OMPTargetTeamsDistributeParallelForDirective" or \
                kind == "OMPTeamsDistributeParallelForDirective":
            teams = directive.clause_int("num_teams", self.num_teams) or self.num_teams
            threads = directive.clause_int("thread_limit", self.num_threads) or self.num_threads
            return max(1, teams * threads)
        if kind in OMP_LOOP_DIRECTIVE_KINDS:
            threads = directive.clause_int("num_threads", self.num_threads) or self.num_threads
            return max(1, threads)
        return 1


#: minimum multiplier so Child-edge weights stay strictly positive.
_MIN_WEIGHT = 1e-6


def compute_execution_counts(
    root: ASTNode,
    config: Optional[WeightConfig] = None,
) -> Dict[int, float]:
    """Return a map ``id(ast node) -> expected execution count``.

    The count of a node is the product of the iteration counts of its
    enclosing loops (adjusted for OpenMP work sharing) and the branch
    probabilities of its enclosing ``if`` branches.  The Child edge pointing
    *to* a node carries that node's count as its weight.
    """
    config = config or WeightConfig()
    counts: Dict[int, float] = {}

    def loop_trip(loop: ASTNode) -> float:
        if isinstance(loop, ForStmt):
            trips = estimate_trip_count(loop, config.env, config.default_trip_count)
        else:
            trips = config.default_trip_count
        return float(max(trips, 1))

    def visit(node: ASTNode, multiplier: float,
              pending_divisor: float, pending_levels: int) -> None:
        """Traverse assigning counts.

        ``pending_divisor``/``pending_levels`` carry the OpenMP work-sharing
        division across a ``collapse(n)`` loop nest: the divisor is applied
        to the first ``pending_levels`` loops encountered on this path (once
        in total — applied at the outermost pending loop).
        """
        counts[id(node)] = max(multiplier, _MIN_WEIGHT)

        if isinstance(node, OMPExecutableDirective):
            divisor = float(config.parallelism_for(node))
            levels = node.clause_int("collapse", 1) or 1
            for child in node.children:
                if child is node.body and divisor > 1.0:
                    visit(child, multiplier, divisor, levels)
                else:
                    visit(child, multiplier, 1.0, 0)
            return

        if isinstance(node, ForStmt):
            trips = loop_trip(node)
            body_multiplier = multiplier * trips
            child_divisor = 1.0
            child_levels = 0
            if pending_divisor > 1.0 and pending_levels > 0:
                # Work sharing across the collapsed nest: the total iteration
                # space of the collapsed loops is divided by the parallelism
                # degree.  Applying the full divisor at the outermost loop is
                # equivalent (weights multiply down the nest).
                body_multiplier = body_multiplier / pending_divisor
                if pending_levels > 1:
                    # keep propagating collapse bookkeeping (no further division)
                    child_levels = pending_levels - 1
            body_multiplier = max(body_multiplier, _MIN_WEIGHT)
            # child order: init, cond, body, inc
            visit(node.init, multiplier, 1.0, 0)
            visit(node.cond, body_multiplier, 1.0, 0)
            visit(node.body, body_multiplier, child_divisor, child_levels)
            visit(node.inc, body_multiplier, 1.0, 0)
            return

        if isinstance(node, (WhileStmt, DoStmt)):
            trips = loop_trip(node)
            body_multiplier = max(multiplier * trips, _MIN_WEIGHT)
            if isinstance(node, WhileStmt):
                visit(node.cond, body_multiplier, 1.0, 0)
                visit(node.body, body_multiplier, 1.0, 0)
            else:
                visit(node.body, body_multiplier, 1.0, 0)
                visit(node.cond, body_multiplier, 1.0, 0)
            return

        if isinstance(node, IfStmt):
            visit(node.cond, multiplier, 1.0, 0)
            branch_multiplier = max(multiplier * config.branch_probability, _MIN_WEIGHT)
            if node.then_branch is not None:
                visit(node.then_branch, branch_multiplier, 1.0, 0)
            if node.else_branch is not None:
                visit(node.else_branch, branch_multiplier, 1.0, 0)
            return

        for child in node.children:
            visit(child, multiplier, pending_divisor, pending_levels)

    visit(root, 1.0, 1.0, 0)
    return counts


def child_edge_weight(counts: Mapping[int, float], child: ASTNode) -> float:
    """Weight of the Child edge pointing at *child* (its execution count)."""
    return float(counts.get(id(child), 1.0))
