"""Construction of ParaGraph from a Clang-style AST (paper §III-A).

Given an analyzed AST (references resolved, implicit casts inserted) the
builder emits:

* one graph node per AST node,
* ``Child`` edges for every parent→child relation, weighted with the child's
  statically-estimated execution count,
* ``NextToken`` edges chaining the syntax tokens left-to-right,
* ``NextSib`` edges chaining the children of each node left-to-right,
* ``Ref`` edges from each ``DeclRefExpr`` to the declaration it references,
* ``ForExec`` edges (loop init → condition, condition → body) and
  ``ForNext`` edges (body → increment, increment → condition),
* ``ConTrue`` / ``ConFalse`` edges from an ``if`` condition to its branches.

The :class:`~repro.paragraph.variants.GraphVariant` argument selects the
ablation level: the Raw AST keeps only unweighted Child edges, the Augmented
AST adds the seven new edge types, and full ParaGraph also adds the weights.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..clang.ast_nodes import ASTNode, DeclRefExpr, ForStmt, IfStmt
from ..clang.semantics import ConstantEnvironment
from ..clang.traversal import preorder, terminals_in_token_order
from .edges import EdgeType
from .graph import ParaGraph
from .variants import GraphVariant
from .weights import WeightConfig, compute_execution_counts


class ParaGraphBuilder:
    """Stateful builder turning one AST into one :class:`ParaGraph`."""

    def __init__(
        self,
        variant: GraphVariant = GraphVariant.PARAGRAPH,
        weight_config: Optional[WeightConfig] = None,
        name: str = "",
    ) -> None:
        self.variant = variant
        self.weight_config = weight_config or WeightConfig()
        self.name = name

    # ------------------------------------------------------------------ #
    def build(self, root: ASTNode) -> ParaGraph:
        """Build the graph for the subtree rooted at *root*."""
        graph = ParaGraph(name=self.name)
        node_ids: Dict[int, int] = {}

        # 1. nodes (pre-order so parents get smaller ids than children)
        for ast_node in preorder(root):
            node_ids[id(ast_node)] = graph.add_node(
                label=ast_node.kind,
                spelling=ast_node.spelling,
                is_terminal=ast_node.is_terminal,
                ast_node=ast_node,
            )

        # 2. Child edges (weighted for the full ParaGraph variant)
        if self.variant.includes_weights:
            counts = compute_execution_counts(root, self.weight_config)
        else:
            counts = {}
        for ast_node in preorder(root):
            parent_id = node_ids[id(ast_node)]
            for child in ast_node.children:
                weight = counts.get(id(child), 1.0) if self.variant.includes_weights else 1.0
                graph.add_edge(parent_id, node_ids[id(child)], EdgeType.CHILD, weight)

        if not self.variant.includes_augmentation_edges:
            return graph

        # 3. NextToken edges over the syntax tokens, left to right
        terminals = terminals_in_token_order(root)
        for left, right in zip(terminals, terminals[1:]):
            graph.add_edge(node_ids[id(left)], node_ids[id(right)], EdgeType.NEXT_TOKEN)

        # 4. NextSib edges between consecutive children of each node
        for ast_node in preorder(root):
            children = ast_node.children
            for left, right in zip(children, children[1:]):
                graph.add_edge(node_ids[id(left)], node_ids[id(right)], EdgeType.NEXT_SIB)

        # 5. Ref edges from variable uses to their declarations
        for ast_node in preorder(root):
            if isinstance(ast_node, DeclRefExpr) and ast_node.referenced_decl is not None:
                decl_id = node_ids.get(id(ast_node.referenced_decl))
                if decl_id is not None:
                    graph.add_edge(node_ids[id(ast_node)], decl_id, EdgeType.REF)

        # 6. loop execution-order edges
        for ast_node in preorder(root):
            if isinstance(ast_node, ForStmt):
                init_id = node_ids[id(ast_node.init)]
                cond_id = node_ids[id(ast_node.cond)]
                body_id = node_ids[id(ast_node.body)]
                inc_id = node_ids[id(ast_node.inc)]
                # ForExec: flow into the next execution of the loop body
                graph.add_edge(init_id, cond_id, EdgeType.FOR_EXEC)
                graph.add_edge(cond_id, body_id, EdgeType.FOR_EXEC)
                # ForNext: flow deciding/starting the next iteration
                graph.add_edge(body_id, inc_id, EdgeType.FOR_NEXT)
                graph.add_edge(inc_id, cond_id, EdgeType.FOR_NEXT)

        # 7. if-branch edges
        for ast_node in preorder(root):
            if isinstance(ast_node, IfStmt):
                cond_id = node_ids[id(ast_node.cond)]
                if ast_node.then_branch is not None:
                    graph.add_edge(cond_id, node_ids[id(ast_node.then_branch)],
                                   EdgeType.CON_TRUE)
                if ast_node.else_branch is not None:
                    graph.add_edge(cond_id, node_ids[id(ast_node.else_branch)],
                                   EdgeType.CON_FALSE)

        return graph


def build_paragraph(
    root: ASTNode,
    variant: GraphVariant = GraphVariant.PARAGRAPH,
    num_threads: int = 1,
    num_teams: int = 1,
    env: Optional[ConstantEnvironment] = None,
    default_trip_count: int = 16,
    name: str = "",
) -> ParaGraph:
    """Convenience wrapper around :class:`ParaGraphBuilder`.

    Parameters mirror the pieces of the paper's pipeline: the ablation
    *variant*, the OpenMP parallelism (*num_threads*, *num_teams*) used both
    for the weight division and as auxiliary model features, and the
    problem-size environment *env* used for the loop trip-count analysis.
    """
    config = WeightConfig(
        num_threads=num_threads,
        num_teams=num_teams,
        default_trip_count=default_trip_count,
        env=env or ConstantEnvironment(),
    )
    return ParaGraphBuilder(variant, config, name=name).build(root)
