"""Edge vocabulary of the ParaGraph representation.

The paper (§III-A.2) augments the Clang AST with seven new edge types on top
of the plain parent-child (``Child``) edges:

========== =====================================================================
Edge type  Meaning
========== =====================================================================
Child      AST parent → child edge (the only weighted edge type)
NextToken  left-to-right order between consecutive syntax tokens
NextSib    order between consecutive children of the same parent
Ref        use of a variable (``DeclRefExpr``) → its declaration
ForExec    loop init → loop condition, and loop condition → loop body
ForNext    loop body → loop increment, and loop increment → loop condition
ConTrue    if condition → then-branch
ConFalse   if condition → else-branch
========== =====================================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Tuple


class EdgeType(IntEnum):
    """Integer edge-type labels (the ``T`` component of ParaGraph)."""

    CHILD = 0
    NEXT_TOKEN = 1
    NEXT_SIB = 2
    REF = 3
    FOR_EXEC = 4
    FOR_NEXT = 5
    CON_TRUE = 6
    CON_FALSE = 7

    @property
    def display_name(self) -> str:
        """The camel-case name used in the paper's figures."""
        return _DISPLAY_NAMES[self]


_DISPLAY_NAMES = {
    EdgeType.CHILD: "Child",
    EdgeType.NEXT_TOKEN: "NextToken",
    EdgeType.NEXT_SIB: "NextSib",
    EdgeType.REF: "Ref",
    EdgeType.FOR_EXEC: "ForExec",
    EdgeType.FOR_NEXT: "ForNext",
    EdgeType.CON_TRUE: "ConTrue",
    EdgeType.CON_FALSE: "ConFalse",
}

#: Number of distinct edge types (the Augmented AST of the ablation study
#: "contains 8 different types of edges").
NUM_EDGE_TYPES = len(EdgeType)

#: Edge types added by the augmentation step (everything except Child).
AUGMENTATION_EDGE_TYPES = tuple(t for t in EdgeType if t is not EdgeType.CHILD)


@dataclass(frozen=True)
class Edge:
    """A single directed, typed, weighted edge of a ParaGraph.

    ``weight`` is non-zero only for :data:`EdgeType.CHILD` edges, matching the
    paper's definition ``W ∈ Z+ … zero for any edge type other than Child``.
    """

    src: int
    dst: int
    edge_type: EdgeType
    weight: float = 0.0

    def as_tuple(self) -> Tuple[int, int, int, float]:
        return (self.src, self.dst, int(self.edge_type), self.weight)
