"""Numeric encoding of ParaGraphs for the GNN (the dataset's ``x`` side).

A :class:`ParaGraph` is converted into an :class:`EncodedGraph` holding the
arrays the model consumes:

* ``node_features`` — one-hot node-kind matrix (optionally with an extra
  is-terminal column),
* ``edge_index`` — 2×E array of (source, destination) vertex ids,
* ``edge_type`` — per-edge relation index for the relational convolutions,
* ``edge_weight`` — per-edge Child weights (log-scaled option available
  because trip counts span many orders of magnitude),
* ``aux_features`` — the two auxiliary scalars the paper feeds next to the
  graph embedding: the number of teams and the number of threads.

Mini-batching follows the PyTorch-Geometric convention of concatenating the
graphs into one block-diagonal graph with a ``batch`` vector mapping every
node to its graph index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from .graph import ParaGraph
from .vocab import Vocabulary, default_vocabulary


@dataclass
class EncodedGraph:
    """Arrays describing one ParaGraph instance for the model."""

    node_features: np.ndarray          # (num_nodes, feature_dim) float64
    edge_index: np.ndarray             # (2, num_edges) int64
    edge_type: np.ndarray              # (num_edges,) int64
    edge_weight: np.ndarray            # (num_edges,) float64
    aux_features: np.ndarray           # (num_aux,) float64  [teams, threads]
    target: float = 0.0                # runtime (label); 0 when unknown
    name: str = ""
    metadata: dict = field(default_factory=dict)

    @property
    def num_nodes(self) -> int:
        return int(self.node_features.shape[0])

    @property
    def num_edges(self) -> int:
        return int(self.edge_index.shape[1])


@dataclass
class GraphBatch:
    """A block-diagonal batch of encoded graphs."""

    node_features: np.ndarray
    edge_index: np.ndarray
    edge_type: np.ndarray
    edge_weight: np.ndarray
    aux_features: np.ndarray           # (batch, num_aux)
    batch: np.ndarray                  # (num_nodes,) graph id per node
    targets: np.ndarray                # (batch,)
    num_graphs: int


class GraphEncoder:
    """Encodes :class:`ParaGraph` objects into numeric arrays."""

    def __init__(
        self,
        vocabulary: Optional[Vocabulary] = None,
        include_terminal_flag: bool = True,
        log_scale_weights: bool = True,
    ) -> None:
        self.vocabulary = vocabulary or default_vocabulary()
        self.include_terminal_flag = include_terminal_flag
        self.log_scale_weights = log_scale_weights

    # ------------------------------------------------------------------ #
    @property
    def feature_dim(self) -> int:
        """Dimensionality of the node-feature vectors."""
        return self.vocabulary.size + (1 if self.include_terminal_flag else 0)

    def encode(
        self,
        graph: ParaGraph,
        num_teams: int = 1,
        num_threads: int = 1,
        target: float = 0.0,
        name: str = "",
        metadata: Optional[dict] = None,
    ) -> EncodedGraph:
        """Encode one graph together with its auxiliary features and label."""
        features = self.vocabulary.one_hot(graph.node_labels())
        if self.include_terminal_flag:
            terminal = np.array([[1.0 if n.is_terminal else 0.0] for n in graph.nodes])
            if features.shape[0] == 0:
                terminal = np.zeros((0, 1))
            features = np.concatenate([features, terminal], axis=1)
        weights = graph.edge_weights()
        if self.log_scale_weights:
            weights = np.log1p(np.maximum(weights, 0.0))
        return EncodedGraph(
            node_features=features,
            edge_index=graph.edge_index(),
            edge_type=graph.edge_types(),
            edge_weight=weights,
            aux_features=np.array([float(num_teams), float(num_threads)]),
            target=float(target),
            name=name or graph.name,
            metadata=dict(metadata or {}),
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def collate(graphs: Sequence[EncodedGraph]) -> GraphBatch:
        """Concatenate encoded graphs into a single block-diagonal batch."""
        if not graphs:
            raise ValueError("cannot collate an empty list of graphs")
        node_features: List[np.ndarray] = []
        edge_indices: List[np.ndarray] = []
        edge_types: List[np.ndarray] = []
        edge_weights: List[np.ndarray] = []
        aux: List[np.ndarray] = []
        batch_ids: List[np.ndarray] = []
        targets: List[float] = []
        offset = 0
        for graph_id, graph in enumerate(graphs):
            node_features.append(graph.node_features)
            edge_indices.append(graph.edge_index + offset)
            edge_types.append(graph.edge_type)
            edge_weights.append(graph.edge_weight)
            aux.append(graph.aux_features)
            batch_ids.append(np.full(graph.num_nodes, graph_id, dtype=np.int64))
            targets.append(graph.target)
            offset += graph.num_nodes
        return GraphBatch(
            node_features=np.concatenate(node_features, axis=0),
            edge_index=np.concatenate(edge_indices, axis=1)
            if edge_indices else np.zeros((2, 0), dtype=np.int64),
            edge_type=np.concatenate(edge_types),
            edge_weight=np.concatenate(edge_weights),
            aux_features=np.stack(aux, axis=0),
            batch=np.concatenate(batch_ids) if batch_ids else np.zeros(0, dtype=np.int64),
            targets=np.array(targets, dtype=np.float64),
            num_graphs=len(graphs),
        )
