"""The ParaGraph data structure.

The paper formalizes ParaGraph as ``ParaGraph = (V, E, T, W)`` (Eq. 2): a set
of nodes, an adjacency structure, per-edge types and per-edge weights.  This
module provides the container used throughout the library:

* nodes carry a label (the AST node kind), the token spelling (if any) and a
  back-reference to the originating AST node,
* edges are :class:`~repro.paragraph.edges.Edge` records,
* conversion helpers produce NumPy arrays (for the GNN) and ``networkx``
  graphs (for analysis / visualization / property tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..clang.ast_nodes import ASTNode
from .edges import Edge, EdgeType, NUM_EDGE_TYPES


@dataclass
class GraphNode:
    """A vertex of the ParaGraph."""

    node_id: int
    label: str
    spelling: str = ""
    is_terminal: bool = False
    ast_node: Optional[ASTNode] = field(default=None, repr=False, compare=False)


class ParaGraph:
    """Container for the weighted, typed program graph.

    Nodes are added through :meth:`add_node` (which assigns consecutive ids)
    and edges through :meth:`add_edge`.  The builder in
    :mod:`repro.paragraph.builder` is the canonical producer.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.nodes: List[GraphNode] = []
        self.edges: List[Edge] = []
        self._ast_to_id: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_node(
        self,
        label: str,
        spelling: str = "",
        is_terminal: bool = False,
        ast_node: Optional[ASTNode] = None,
    ) -> int:
        """Add a vertex and return its id."""
        node_id = len(self.nodes)
        self.nodes.append(GraphNode(node_id, label, spelling, is_terminal, ast_node))
        if ast_node is not None:
            self._ast_to_id[id(ast_node)] = node_id
        return node_id

    def add_edge(
        self,
        src: int,
        dst: int,
        edge_type: EdgeType,
        weight: float = 0.0,
    ) -> Edge:
        """Add a directed edge.  Non-Child edges always get weight 0."""
        if edge_type is not EdgeType.CHILD:
            weight = 0.0
        if not (0 <= src < len(self.nodes)) or not (0 <= dst < len(self.nodes)):
            raise IndexError(f"edge ({src}, {dst}) references unknown node")
        edge = Edge(src, dst, edge_type, float(weight))
        self.edges.append(edge)
        return edge

    def node_id_for(self, ast_node: ASTNode) -> Optional[int]:
        """Return the vertex id created for *ast_node*, if any."""
        return self._ast_to_id.get(id(ast_node))

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def edges_of_type(self, edge_type: EdgeType) -> List[Edge]:
        """Every edge with the given type."""
        return [e for e in self.edges if e.edge_type is edge_type]

    def edge_type_counts(self) -> Dict[EdgeType, int]:
        """Histogram of edge types."""
        counts: Dict[EdgeType, int] = {t: 0 for t in EdgeType}
        for edge in self.edges:
            counts[edge.edge_type] += 1
        return counts

    def out_edges(self, node_id: int) -> List[Edge]:
        return [e for e in self.edges if e.src == node_id]

    def in_edges(self, node_id: int) -> List[Edge]:
        return [e for e in self.edges if e.dst == node_id]

    def node_labels(self) -> List[str]:
        return [n.label for n in self.nodes]

    def __iter__(self) -> Iterator[GraphNode]:
        return iter(self.nodes)

    def __len__(self) -> int:
        return self.num_nodes

    def __repr__(self) -> str:
        return (
            f"ParaGraph(name={self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges})"
        )

    # ------------------------------------------------------------------ #
    # exports
    # ------------------------------------------------------------------ #
    def edge_index(self) -> np.ndarray:
        """Return the 2×E edge-index array (source row, destination row)."""
        if not self.edges:
            return np.zeros((2, 0), dtype=np.int64)
        return np.array([[e.src for e in self.edges],
                         [e.dst for e in self.edges]], dtype=np.int64)

    def edge_types(self) -> np.ndarray:
        """Return the per-edge type array (E,)."""
        return np.array([int(e.edge_type) for e in self.edges], dtype=np.int64)

    def edge_weights(self) -> np.ndarray:
        """Return the per-edge weight array (E,)."""
        return np.array([e.weight for e in self.edges], dtype=np.float64)

    def adjacency_matrix(self, edge_type: Optional[EdgeType] = None) -> np.ndarray:
        """Dense adjacency matrix (optionally restricted to one edge type)."""
        matrix = np.zeros((self.num_nodes, self.num_nodes), dtype=np.float64)
        for edge in self.edges:
            if edge_type is not None and edge.edge_type is not edge_type:
                continue
            matrix[edge.src, edge.dst] = 1.0
        return matrix

    def to_networkx(self):
        """Convert to a ``networkx.MultiDiGraph`` with node/edge attributes."""
        import networkx as nx

        graph = nx.MultiDiGraph(name=self.name)
        for node in self.nodes:
            graph.add_node(node.node_id, label=node.label, spelling=node.spelling,
                           is_terminal=node.is_terminal)
        for edge in self.edges:
            graph.add_edge(edge.src, edge.dst,
                           edge_type=edge.edge_type.display_name,
                           weight=edge.weight)
        return graph

    def validate(self) -> None:
        """Check structural invariants; raise ``ValueError`` on violation.

        Invariants:
        * every edge endpoint is a valid node id,
        * non-Child edges have zero weight,
        * Child edges have strictly positive weight,
        * node ids are consecutive.
        """
        for i, node in enumerate(self.nodes):
            if node.node_id != i:
                raise ValueError("node ids must be consecutive")
        for edge in self.edges:
            if not (0 <= edge.src < self.num_nodes and 0 <= edge.dst < self.num_nodes):
                raise ValueError(f"dangling edge {edge}")
            if edge.edge_type is EdgeType.CHILD:
                if edge.weight <= 0:
                    raise ValueError(f"Child edge with non-positive weight: {edge}")
            elif edge.weight != 0.0:
                raise ValueError(f"non-Child edge with non-zero weight: {edge}")

    def summary(self) -> str:
        """Human-readable one-paragraph description of the graph."""
        counts = self.edge_type_counts()
        parts = [f"{t.display_name}={counts[t]}" for t in EdgeType if counts[t]]
        return (
            f"{self.name or 'ParaGraph'}: {self.num_nodes} nodes, "
            f"{self.num_edges} edges ({', '.join(parts)})"
        )
