"""Node-label vocabulary for encoding ParaGraph vertices as feature vectors.

The GNN consumes a numeric node-feature matrix; each vertex is labelled with
its Clang node kind (``ForStmt``, ``BinaryOperator`` …).  The vocabulary maps
those labels to stable integer indices, with an ``<UNK>`` bucket for kinds
outside the known set so that graphs built from arbitrary sources still
encode.

A fixed, library-wide default vocabulary (:func:`default_vocabulary`) covers
every node class defined in :mod:`repro.clang.ast_nodes`; a vocabulary can
also be fitted from a corpus of graphs (:meth:`Vocabulary.fit`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

UNK_TOKEN = "<UNK>"

#: Every AST node kind the frontend can produce, in a stable order.
DEFAULT_NODE_KINDS: List[str] = [
    # declarations
    "TranslationUnitDecl", "FunctionDecl", "ParmVarDecl", "VarDecl",
    # statements
    "CompoundStmt", "DeclStmt", "NullStmt", "IfStmt", "ForStmt", "WhileStmt",
    "DoStmt", "ReturnStmt", "BreakStmt", "ContinueStmt",
    # expressions
    "BinaryOperator", "CompoundAssignOperator", "UnaryOperator",
    "ConditionalOperator", "CallExpr", "ArraySubscriptExpr", "MemberExpr",
    "DeclRefExpr", "IntegerLiteral", "FloatingLiteral", "CharacterLiteral",
    "StringLiteral", "ParenExpr", "ImplicitCastExpr", "CStyleCastExpr",
    "SizeOfExpr", "InitListExpr",
    # OpenMP
    "OMPClause", "OMPParallelForDirective", "OMPParallelDirective",
    "OMPForDirective", "OMPSimdDirective", "OMPTargetDirective",
    "OMPTargetDataDirective", "OMPTargetEnterDataDirective",
    "OMPTargetExitDataDirective", "OMPTargetUpdateDirective",
    "OMPTeamsDistributeParallelForDirective",
    "OMPTargetTeamsDistributeParallelForDirective",
    "OMPCriticalDirective", "OMPAtomicDirective", "OMPBarrierDirective",
    "OMPGenericDirective",
]


class Vocabulary:
    """Bidirectional mapping between node labels and integer indices."""

    def __init__(self, labels: Optional[Sequence[str]] = None) -> None:
        labels = list(labels if labels is not None else DEFAULT_NODE_KINDS)
        if UNK_TOKEN not in labels:
            labels = [UNK_TOKEN] + labels
        self._index: Dict[str, int] = {label: i for i, label in enumerate(labels)}
        self._labels: List[str] = labels

    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of labels (including ``<UNK>``)."""
        return len(self._labels)

    def __len__(self) -> int:
        return self.size

    def __contains__(self, label: str) -> bool:
        return label in self._index

    def index(self, label: str) -> int:
        """Index of *label*, or of ``<UNK>`` when unknown."""
        return self._index.get(label, self._index[UNK_TOKEN])

    def label(self, index: int) -> str:
        return self._labels[index]

    def labels(self) -> List[str]:
        return list(self._labels)

    # ------------------------------------------------------------------ #
    def encode(self, labels: Iterable[str]) -> np.ndarray:
        """Encode a sequence of labels as an int64 index array."""
        return np.array([self.index(label) for label in labels], dtype=np.int64)

    def one_hot(self, labels: Iterable[str]) -> np.ndarray:
        """Encode labels as a dense one-hot matrix (n, vocab_size)."""
        indices = self.encode(labels)
        matrix = np.zeros((len(indices), self.size), dtype=np.float64)
        if len(indices):
            matrix[np.arange(len(indices)), indices] = 1.0
        return matrix

    # ------------------------------------------------------------------ #
    def __eq__(self, other) -> bool:
        return isinstance(other, Vocabulary) and self._labels == other._labels

    def __hash__(self) -> int:
        # immutable in practice: labels are fixed at construction
        return hash(tuple(self._labels))

    def to_dict(self) -> dict:
        """JSON-safe form: the exact label order (``<UNK>`` included), so a
        restored vocabulary assigns bit-identical indices."""
        return {"labels": list(self._labels)}

    @classmethod
    def from_dict(cls, payload) -> "Vocabulary":
        """Inverse of :meth:`to_dict`; validates the payload shape."""
        if not isinstance(payload, dict) or "labels" not in payload:
            raise ValueError(
                "vocabulary payload must be a dict with a 'labels' list, got "
                f"{type(payload).__name__}")
        labels = payload["labels"]
        if not isinstance(labels, (list, tuple)) or \
                not all(isinstance(label, str) for label in labels):
            raise ValueError("vocabulary 'labels' must be a list of strings")
        if len(set(labels)) != len(labels):
            raise ValueError("vocabulary 'labels' contains duplicates")
        return cls(labels)

    # ------------------------------------------------------------------ #
    @classmethod
    def fit(cls, label_sequences: Iterable[Iterable[str]]) -> "Vocabulary":
        """Build a vocabulary from a corpus of label sequences."""
        seen: Dict[str, None] = {}
        for sequence in label_sequences:
            for label in sequence:
                seen.setdefault(label, None)
        return cls(sorted(seen))


def default_vocabulary() -> Vocabulary:
    """The library-wide vocabulary over all known AST node kinds."""
    return Vocabulary(DEFAULT_NODE_KINDS)
