"""``repro.paragraph`` — the ParaGraph weighted graph representation.

This package is the paper's primary contribution: the construction of a
typed, weighted program graph from the AST of an OpenMP kernel (§III), the
ablation variants used in §V-C, and the numeric encoding consumed by the
GNN model.
"""

from .builder import ParaGraphBuilder, build_paragraph
from .edges import AUGMENTATION_EDGE_TYPES, Edge, EdgeType, NUM_EDGE_TYPES
from .encoders import EncodedGraph, GraphBatch, GraphEncoder
from .graph import GraphNode, ParaGraph
from .variants import ABLATION_ORDER, GraphVariant
from .vocab import DEFAULT_NODE_KINDS, UNK_TOKEN, Vocabulary, default_vocabulary
from .weights import WeightConfig, compute_execution_counts

__all__ = [
    "ABLATION_ORDER",
    "AUGMENTATION_EDGE_TYPES",
    "DEFAULT_NODE_KINDS",
    "Edge",
    "EdgeType",
    "EncodedGraph",
    "GraphBatch",
    "GraphEncoder",
    "GraphNode",
    "GraphVariant",
    "NUM_EDGE_TYPES",
    "ParaGraph",
    "ParaGraphBuilder",
    "UNK_TOKEN",
    "Vocabulary",
    "WeightConfig",
    "build_paragraph",
    "compute_execution_counts",
    "default_vocabulary",
]
