"""The six code-variant transformations (paper §IV-A.1).

The dataset is built from six transformations of every kernel:

========================= =====================================================
``cpu``                   ``omp parallel for`` on the outer loop
``cpu_collapse``          ``omp parallel for collapse(2)`` when the nest allows
``gpu``                   ``omp target teams distribute parallel for`` (data
                          assumed resident on the device)
``gpu_collapse``          the GPU directive with ``collapse(2)``
``gpu_mem``               the GPU directive plus ``map`` clauses (host↔device
                          data transfer included)
``gpu_collapse_mem``      GPU + collapse + data transfer
========================= =====================================================

The original system obtained these variants from OpenMP Advisor's code
transformation module; here they are produced as source-to-source rewrites of
the serial kernel (pragma insertion + map-clause synthesis), then re-parsed by
``repro.clang`` so the downstream graph construction sees exactly what a
compiler would.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..kernels.base import ArraySpec, KernelDefinition
from .codegen import insert_pragma_before_outer_loop


class VariantKind(Enum):
    """The transformation applied to a kernel."""

    CPU = "cpu"
    CPU_COLLAPSE = "cpu_collapse"
    GPU = "gpu"
    GPU_COLLAPSE = "gpu_collapse"
    GPU_MEM = "gpu_mem"
    GPU_COLLAPSE_MEM = "gpu_collapse_mem"

    @property
    def is_gpu(self) -> bool:
        return self in {VariantKind.GPU, VariantKind.GPU_COLLAPSE,
                        VariantKind.GPU_MEM, VariantKind.GPU_COLLAPSE_MEM}

    @property
    def uses_collapse(self) -> bool:
        return self in {VariantKind.CPU_COLLAPSE, VariantKind.GPU_COLLAPSE,
                        VariantKind.GPU_COLLAPSE_MEM}

    @property
    def includes_data_transfer(self) -> bool:
        return self in {VariantKind.GPU_MEM, VariantKind.GPU_COLLAPSE_MEM}


#: Transformation order used throughout the library (matches the paper list).
ALL_VARIANTS: Tuple[VariantKind, ...] = (
    VariantKind.CPU,
    VariantKind.CPU_COLLAPSE,
    VariantKind.GPU,
    VariantKind.GPU_COLLAPSE,
    VariantKind.GPU_MEM,
    VariantKind.GPU_COLLAPSE_MEM,
)


@dataclass(frozen=True)
class KernelVariant:
    """One transformed kernel: the generated source plus its provenance."""

    kernel: KernelDefinition
    kind: VariantKind
    source: str
    pragma: str
    collapse: int

    @property
    def name(self) -> str:
        return f"{self.kernel.full_name}:{self.kind.value}"

    @property
    def is_gpu(self) -> bool:
        return self.kind.is_gpu

    @property
    def includes_data_transfer(self) -> bool:
        return self.kind.includes_data_transfer


def _map_clauses(arrays: Sequence[ArraySpec], sizes: Mapping[str, int]) -> str:
    """Synthesize ``map`` clauses with explicit array sections."""
    by_direction: Dict[str, List[str]] = {}
    for array in arrays:
        section = f"{array.name}[0:{array.num_elements(sizes)}]"
        by_direction.setdefault(array.direction, []).append(section)
    parts = []
    for direction in ("to", "from", "tofrom"):
        if direction in by_direction:
            parts.append(f"map({direction}: {', '.join(by_direction[direction])})")
    return " ".join(parts)


def build_pragma(
    kind: VariantKind,
    kernel: KernelDefinition,
    sizes: Mapping[str, int],
    collapse: Optional[int] = None,
) -> Tuple[str, int]:
    """Return the pragma line text and the collapse level for a variant."""
    if collapse is None:
        collapse = 2 if kind.uses_collapse else 1
    collapse = max(1, min(collapse, kernel.collapsible_loops))

    if kind.is_gpu:
        directive = "omp target teams distribute parallel for"
    else:
        directive = "omp parallel for"
    clauses: List[str] = []
    if collapse > 1:
        clauses.append(f"collapse({collapse})")
    if kind.includes_data_transfer:
        map_text = _map_clauses(kernel.arrays, sizes)
        if map_text:
            clauses.append(map_text)
    pragma = "#pragma " + " ".join([directive] + clauses)
    return pragma, collapse


def generate_variant(
    kernel: KernelDefinition,
    kind: VariantKind,
    sizes: Optional[Mapping[str, int]] = None,
) -> KernelVariant:
    """Apply one transformation to *kernel*, returning the rewritten source."""
    concrete = kernel.sizes_with_defaults(sizes)
    pragma, collapse = build_pragma(kind, kernel, concrete)
    source = insert_pragma_before_outer_loop(kernel.source, pragma)
    return KernelVariant(kernel=kernel, kind=kind, source=source,
                         pragma=pragma, collapse=collapse)


def generate_all_variants(
    kernel: KernelDefinition,
    sizes: Optional[Mapping[str, int]] = None,
    kinds: Sequence[VariantKind] = ALL_VARIANTS,
) -> List[KernelVariant]:
    """All requested transformations of one kernel.

    Collapse variants are skipped for kernels whose loop nest is not
    collapsible (``collapsible_loops < 2``), mirroring the Advisor only
    proposing legal transformations.
    """
    variants: List[KernelVariant] = []
    for kind in kinds:
        if kind.uses_collapse and kernel.collapsible_loops < 2:
            continue
        variants.append(generate_variant(kernel, kind, sizes))
    return variants
