"""Source-to-source helpers of the variant generator.

The transformations only need one rewrite: inserting an OpenMP pragma line
immediately before the outermost ``for`` loop of the kernel function, with
matching indentation.  Working at source level (rather than unparsing a
modified AST) keeps the generated variants byte-for-byte readable and lets
them round-trip through the same frontend path a real compiler would take.
"""

from __future__ import annotations

import re
from typing import List, Optional


class CodegenError(Exception):
    """Raised when a rewrite cannot be applied to the given source."""


_FOR_RE = re.compile(r"^(\s*)for\s*\(")


def find_outer_loop_line(source: str) -> int:
    """Index of the line containing the first (outermost) ``for`` loop."""
    for line_number, line in enumerate(source.splitlines()):
        if _FOR_RE.match(line):
            return line_number
    raise CodegenError("source contains no for loop to parallelize")


def insert_pragma_before_outer_loop(source: str, pragma: str) -> str:
    """Insert *pragma* on its own line directly above the outermost loop."""
    lines: List[str] = source.splitlines()
    target = find_outer_loop_line(source)
    indent_match = _FOR_RE.match(lines[target])
    indent = indent_match.group(1) if indent_match else ""
    lines.insert(target, f"{indent}{pragma}")
    out = "\n".join(lines)
    if source.endswith("\n") and not out.endswith("\n"):
        out += "\n"
    return out


def strip_pragmas(source: str) -> str:
    """Remove every ``#pragma`` line (used to recover the serial kernel)."""
    lines = [line for line in source.splitlines()
             if not line.lstrip().startswith("#pragma")]
    out = "\n".join(lines)
    if source.endswith("\n") and not out.endswith("\n"):
        out += "\n"
    return out


def rename_function(source: str, old_name: str, new_name: str) -> str:
    """Rename the kernel function (used when emitting several variants into
    one translation unit)."""
    pattern = re.compile(rf"\b{re.escape(old_name)}\b")
    if not pattern.search(source):
        raise CodegenError(f"function {old_name!r} not found in source")
    return pattern.sub(new_name, source)
