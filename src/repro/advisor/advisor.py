"""The OpenMP Advisor facade (paper §II-D).

OpenMP Advisor has three modules: Kernel Analysis, a Cost Model and Code
Transformation.  This facade wires the reproduction's equivalents together:

* :meth:`OpenMPAdvisor.analyze` — static kernel analysis,
* :meth:`OpenMPAdvisor.generate_variants` — the six transformations,
* :meth:`OpenMPAdvisor.recommend` — rank variants by predicted runtime using
  a pluggable cost model (the ParaGraph GNN, the COMPOFF baseline, or the
  analytical hardware model) and return the best one.

This is the end-use the paper motivates: "The predicted runtime of the model
is used to determine which transformation provides the best performance."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..analysis.issues import Issue
from ..analysis.runner import AnalyzerRunner
from ..kernels.base import KernelDefinition
from .kernel_analysis import KernelAnalysis, analyze_kernel
from .transformations import (
    ALL_VARIANTS,
    KernelVariant,
    VariantKind,
    generate_all_variants,
)

#: A cost model maps (variant, sizes, teams, threads) to a predicted runtime
#: in microseconds.
CostModel = Callable[[KernelVariant, Mapping[str, int], int, int], float]


@dataclass
class Recommendation:
    """The Advisor's answer for one kernel."""

    kernel: KernelDefinition
    best_variant: KernelVariant
    predicted_runtimes: Dict[str, float]   # variant name -> microseconds
    #: static-analysis findings per variant kind (``repro.analysis`` issues),
    #: so a fast-but-racy transformation is visible next to its runtime.
    analysis: Dict[str, Tuple[Issue, ...]] = field(default_factory=dict)

    @property
    def best_kind(self) -> VariantKind:
        return self.best_variant.kind

    def ranking(self) -> List[Tuple[str, float]]:
        """Variants sorted from fastest to slowest predicted runtime."""
        return sorted(self.predicted_runtimes.items(), key=lambda kv: kv[1])

    @property
    def race_findings(self) -> Dict[str, Tuple[Issue, ...]]:
        """Data-race findings per variant kind (only kinds with findings)."""
        races = {
            kind: tuple(issue for issue in issues if issue.checker == "omp-race")
            for kind, issues in self.analysis.items()
        }
        return {kind: found for kind, found in races.items() if found}


class OpenMPAdvisor:
    """Facade orchestrating analysis, transformation and recommendation."""

    def __init__(self, cost_model: Optional[CostModel] = None,
                 analyzer: Optional[AnalyzerRunner] = None) -> None:
        self.cost_model = cost_model
        #: static analyzer applied to every candidate variant during
        #: :meth:`recommend`; when None, one is built per call with the
        #: concrete problem sizes folded into its constant environment.
        self.analyzer = analyzer

    # ------------------------------------------------------------------ #
    def analyze(self, kernel: KernelDefinition,
                sizes: Optional[Mapping[str, int]] = None) -> KernelAnalysis:
        """Static analysis of one kernel (loop nest, op counts, arrays)."""
        return analyze_kernel(kernel, sizes)

    def generate_variants(
        self,
        kernel: KernelDefinition,
        sizes: Optional[Mapping[str, int]] = None,
        kinds: Sequence[VariantKind] = ALL_VARIANTS,
    ) -> List[KernelVariant]:
        """Produce the (legal subset of the) six transformations."""
        return generate_all_variants(kernel, sizes, kinds)

    def recommend(
        self,
        kernel: KernelDefinition,
        sizes: Optional[Mapping[str, int]] = None,
        num_teams: int = 64,
        num_threads: int = 16,
        kinds: Sequence[VariantKind] = ALL_VARIANTS,
    ) -> Recommendation:
        """Pick the transformation with the lowest predicted runtime."""
        if self.cost_model is None:
            raise RuntimeError("OpenMPAdvisor needs a cost model to recommend variants")
        concrete = kernel.sizes_with_defaults(sizes)
        variants = self.generate_variants(kernel, concrete, kinds)
        if not variants:
            raise ValueError(f"no legal variants for kernel {kernel.full_name}")
        runner = self.analyzer or AnalyzerRunner(env=dict(concrete))
        predictions: Dict[str, float] = {}
        analysis: Dict[str, Tuple[Issue, ...]] = {}
        best: Optional[KernelVariant] = None
        best_runtime = float("inf")
        for variant in variants:
            runtime = float(self.cost_model(variant, concrete, num_teams, num_threads))
            predictions[variant.kind.value] = runtime
            report = runner.analyze_source(
                variant.source, file=f"{kernel.kernel_name}/{variant.name}.c")
            analysis[variant.kind.value] = report.issues
            if runtime < best_runtime:
                best_runtime = runtime
                best = variant
        assert best is not None
        return Recommendation(kernel=kernel, best_variant=best,
                              predicted_runtimes=predictions,
                              analysis=analysis)
