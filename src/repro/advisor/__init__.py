"""``repro.advisor`` — OpenMP Advisor substitute.

Kernel analysis, the six code-variant transformations of §IV-A.1 and the
variant-recommendation facade that consumes a cost model (ParaGraph, COMPOFF
or the analytical hardware model).
"""

from .advisor import CostModel, OpenMPAdvisor, Recommendation
from .codegen import (
    CodegenError,
    find_outer_loop_line,
    insert_pragma_before_outer_loop,
    rename_function,
    strip_pragmas,
)
from .kernel_analysis import (
    KernelAnalysis,
    OperationCounts,
    analyze_kernel,
    analyze_kernel_cached,
    clear_analysis_cache,
)
from .transformations import (
    ALL_VARIANTS,
    KernelVariant,
    VariantKind,
    build_pragma,
    generate_all_variants,
    generate_variant,
)

__all__ = [
    "ALL_VARIANTS",
    "CodegenError",
    "CostModel",
    "KernelAnalysis",
    "KernelVariant",
    "OpenMPAdvisor",
    "OperationCounts",
    "Recommendation",
    "VariantKind",
    "analyze_kernel",
    "build_pragma",
    "find_outer_loop_line",
    "generate_all_variants",
    "generate_variant",
    "insert_pragma_before_outer_loop",
    "rename_function",
    "strip_pragmas",
]
