"""Static kernel analysis (the Advisor's "Kernel Analysis" module).

OpenMP Advisor's first stage inspects a kernel and extracts the facts the
cost model and the code-transformation module need.  This reproduction
performs the same analysis on the :mod:`repro.clang` AST:

* the outermost loop nest and how many levels are perfectly nested
  (collapsible),
* statically-estimated trip counts per nest level and the total iteration
  count,
* dynamic operation counts (floating-point ops, integer ops, memory
  accesses, comparisons, math-library calls), computed by weighting each
  AST operator node with its execution count from
  :func:`repro.paragraph.weights.compute_execution_counts`,
* the arrays referenced and whether the innermost loop carries a reduction.

The result (:class:`KernelAnalysis`) feeds three consumers: the variant
generator (legality of ``collapse``), the hardware performance model
(compute vs. memory balance) and the COMPOFF baseline features (operation
counts — exactly the hand-engineered features §II-D describes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..clang import analyze
from ..clang.ast_nodes import (
    ASTNode,
    ArraySubscriptExpr,
    BinaryOperator,
    CallExpr,
    CompoundAssignOperator,
    DeclRefExpr,
    ForStmt,
    FunctionDecl,
    IfStmt,
    UnaryOperator,
)
from ..clang.semantics import ConstantEnvironment, estimate_trip_count
from ..clang.traversal import iter_for_loops, perfectly_nested_for_loops, preorder
from ..kernels.base import KernelDefinition
from ..paragraph.weights import WeightConfig, compute_execution_counts

#: operators counted as floating-point arithmetic
_ARITH_OPS = frozenset({"+", "-", "*", "/", "%"})
_COMPARE_OPS = frozenset({"<", ">", "<=", ">=", "==", "!="})
_MATH_FUNCTIONS = frozenset({"sqrt", "exp", "log", "sin", "cos", "pow", "fabs", "tanh"})


@dataclass
class OperationCounts:
    """Dynamic (execution-count weighted) operation totals for one kernel."""

    arithmetic: float = 0.0
    comparisons: float = 0.0
    memory_accesses: float = 0.0
    math_calls: float = 0.0
    branches: float = 0.0

    @property
    def total_flops(self) -> float:
        """Arithmetic plus the (more expensive) math-library calls."""
        return self.arithmetic + 8.0 * self.math_calls

    @property
    def memory_bytes(self) -> float:
        """Bytes touched, assuming 8-byte elements per access."""
        return 8.0 * self.memory_accesses

    def as_dict(self) -> Dict[str, float]:
        return {
            "arithmetic": self.arithmetic,
            "comparisons": self.comparisons,
            "memory_accesses": self.memory_accesses,
            "math_calls": self.math_calls,
            "branches": self.branches,
        }


@dataclass
class KernelAnalysis:
    """Full static analysis of one kernel at one problem size."""

    kernel_name: str
    sizes: Dict[str, int]
    loop_nest_depth: int
    collapsible_depth: int
    trip_counts: Tuple[int, ...]
    total_iterations: int
    parallel_iterations: int
    operations: OperationCounts
    arrays_referenced: Tuple[str, ...]
    has_reduction: bool
    has_branches: bool

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per byte of memory traffic (roofline x-axis)."""
        bytes_touched = max(self.operations.memory_bytes, 1.0)
        return self.operations.total_flops / bytes_touched

    def parallel_iterations_with_collapse(self, collapse: int) -> int:
        """Iteration count of the parallelized (possibly collapsed) loops."""
        collapse = max(1, min(collapse, len(self.trip_counts)))
        total = 1
        for trips in self.trip_counts[:collapse]:
            total *= max(trips, 1)
        return total


def _count_operations(root: ASTNode, counts_by_node: Mapping[int, float]) -> OperationCounts:
    """Accumulate execution-count weighted operation totals."""
    totals = OperationCounts()
    for node in preorder(root):
        weight = counts_by_node.get(id(node), 1.0)
        if isinstance(node, (BinaryOperator, CompoundAssignOperator)):
            if node.opcode in _ARITH_OPS or isinstance(node, CompoundAssignOperator):
                totals.arithmetic += weight
            elif node.opcode in _COMPARE_OPS:
                totals.comparisons += weight
        elif isinstance(node, UnaryOperator) and node.opcode in {"-", "+", "++", "--"}:
            totals.arithmetic += weight
        elif isinstance(node, ArraySubscriptExpr):
            totals.memory_accesses += weight
        elif isinstance(node, CallExpr):
            callee = node.callee
            while callee is not None and not isinstance(callee, DeclRefExpr) and callee.children:
                callee = callee.children[0]
            if isinstance(callee, DeclRefExpr) and callee.name in _MATH_FUNCTIONS:
                totals.math_calls += weight
        elif isinstance(node, IfStmt):
            totals.branches += weight
    return totals


def _detect_reduction(function: FunctionDecl) -> bool:
    """Heuristic reduction detection: ``x += ...`` on a scalar in a loop body."""
    for node in preorder(function):
        if isinstance(node, CompoundAssignOperator) and node.opcode in {"+=", "*="}:
            target = node.lhs
            while target is not None and target.children and not isinstance(target, DeclRefExpr):
                target = target.children[0]
            if isinstance(target, DeclRefExpr):
                return True
    return False


def analyze_kernel(
    kernel: KernelDefinition,
    sizes: Optional[Mapping[str, int]] = None,
) -> KernelAnalysis:
    """Run the full static analysis of *kernel* at the given problem sizes."""
    concrete_sizes = kernel.sizes_with_defaults(sizes)
    env = ConstantEnvironment(dict(concrete_sizes))
    function = kernel.function()
    analyze(function)

    for_loops = list(iter_for_loops(function))
    if not for_loops:
        raise ValueError(f"kernel {kernel.full_name} contains no for loop")
    outer = for_loops[0]
    nest = perfectly_nested_for_loops(outer)
    trip_counts = tuple(estimate_trip_count(loop, env, default=1) for loop in nest)

    # total dynamic iterations of the whole nest (including imperfect inner loops)
    counts = compute_execution_counts(
        function, WeightConfig(num_threads=1, num_teams=1, env=env, default_trip_count=16))
    operations = _count_operations(function, counts)

    # total dynamic iterations: execution count of the hottest loop body
    # (covers imperfectly nested inner loops such as matmul's k-reduction)
    total_iterations = int(max(
        (counts.get(id(loop.body), 1.0) for loop in for_loops), default=1.0))
    total_iterations = max(total_iterations, 1)

    collapsible = min(kernel.collapsible_loops, len(nest))
    parallel_iterations = 1
    for trips in trip_counts[:1]:
        parallel_iterations *= max(trips, 1)

    arrays = tuple(sorted({array.name for array in kernel.arrays}))

    return KernelAnalysis(
        kernel_name=kernel.full_name,
        sizes=dict(concrete_sizes),
        loop_nest_depth=len(for_loops),
        collapsible_depth=collapsible,
        trip_counts=trip_counts,
        total_iterations=total_iterations,
        parallel_iterations=parallel_iterations,
        operations=operations,
        arrays_referenced=arrays,
        has_reduction=_detect_reduction(function),
        has_branches=bool(function.find_all("IfStmt")),
    )


# --------------------------------------------------------------------- #
# caching
# --------------------------------------------------------------------- #
_ANALYSIS_CACHE: Dict[Tuple[str, Tuple[Tuple[str, int], ...]], KernelAnalysis] = {}


def analyze_kernel_cached(
    kernel: KernelDefinition,
    sizes: Optional[Mapping[str, int]] = None,
) -> KernelAnalysis:
    """Memoized :func:`analyze_kernel`.

    The dataset pipeline analyzes the same (kernel, problem size) pair for
    every variant, platform and parallelism configuration; the analysis is
    pure, so caching it removes the dominant cost of dataset generation.
    """
    concrete = kernel.sizes_with_defaults(sizes)
    key = (kernel.full_name, tuple(sorted(concrete.items())))
    cached = _ANALYSIS_CACHE.get(key)
    if cached is None:
        cached = analyze_kernel(kernel, concrete)
        _ANALYSIS_CACHE[key] = cached
    return cached


def clear_analysis_cache() -> None:
    """Drop all memoized kernel analyses (used by tests)."""
    _ANALYSIS_CACHE.clear()
