"""``repro.pipeline`` — the end-to-end data and training workflow (Fig. 3).

Variant/configuration sweeps, ParaGraph generation, (simulated) runtime
collection, dataset assembly with Table II statistics, and the one-call
workflow used by the examples and benchmarks.
"""

from .dataset_builder import DatasetBuilder, DatasetBuildResult, table2_statistics
from .graph_generation import encode_configuration, generate_paragraph
from .runtime_collection import Measurement, RuntimeCollector, drop_application
from .variant_generation import (
    Configuration,
    SweepConfig,
    filter_for_platform,
    generate_configurations,
    scale_sizes,
)
from .workflow import (
    PlatformResult,
    WorkflowConfig,
    WorkflowResult,
    run_workflow,
    train_on_dataset,
)

__all__ = [
    "Configuration",
    "DatasetBuildResult",
    "DatasetBuilder",
    "Measurement",
    "PlatformResult",
    "RuntimeCollector",
    "SweepConfig",
    "WorkflowConfig",
    "WorkflowResult",
    "drop_application",
    "encode_configuration",
    "filter_for_platform",
    "generate_configurations",
    "generate_paragraph",
    "run_workflow",
    "scale_sizes",
    "table2_statistics",
    "train_on_dataset",
]
