"""Configuration sweep: the "Variant Generator" stage of the workflow (Fig. 3).

The paper turns 17 kernels into ~26 000 data points by generating the six
transformation variants and then "varying the levels of parallelism and data
used".  This module enumerates those configurations:

* per kernel: the legal subset of the six :class:`VariantKind` transformations,
* per variant: a sweep over problem-size scales (multiplying the kernel's
  default sizes) and over (teams, threads) execution configurations,
* optionally several repetitions (independent noisy measurements).

The output is a list of :class:`Configuration` records consumed by the graph
generation and runtime collection stages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..advisor.transformations import (
    ALL_VARIANTS,
    KernelVariant,
    VariantKind,
    generate_variant,
)
from ..kernels.base import KernelDefinition
from ..kernels.registry import all_kernels


@dataclass(frozen=True)
class Configuration:
    """One fully-specified measurement: kernel variant + sizes + parallelism."""

    variant: KernelVariant
    sizes: Mapping[str, int]
    num_teams: int
    num_threads: int
    repetition: int = 0

    @property
    def kernel(self) -> KernelDefinition:
        return self.variant.kernel

    @property
    def name(self) -> str:
        size_text = ",".join(f"{k}={v}" for k, v in sorted(self.sizes.items()))
        return (f"{self.variant.name}[{size_text}]"
                f"@teams={self.num_teams},threads={self.num_threads},rep={self.repetition}")

    @property
    def metadata(self) -> Dict[str, object]:
        """Provenance dictionary stored with every dataset sample."""
        return {
            "application": self.kernel.application,
            "kernel": self.kernel.kernel_name,
            "variant": self.variant.kind.value,
            "is_gpu": self.variant.is_gpu,
            "collapse": self.variant.collapse,
            "sizes": dict(self.sizes),
            "num_teams": self.num_teams,
            "num_threads": self.num_threads,
            "repetition": self.repetition,
        }


@dataclass
class SweepConfig:
    """Parameters of the configuration sweep.

    The defaults generate a small but representative dataset; the full-scale
    experiment drivers widen them (see ``repro.evaluation.experiments``).
    """

    size_scales: Sequence[float] = (0.5, 1.0, 2.0)
    team_counts: Sequence[int] = (32, 128)
    thread_counts: Sequence[int] = (8, 64)
    repetitions: int = 1
    variant_kinds: Sequence[VariantKind] = ALL_VARIANTS
    kernels: Optional[Sequence[KernelDefinition]] = None
    #: problem-size floor so scaled-down kernels keep a sane loop structure
    minimum_size: int = 2


def scale_sizes(kernel: KernelDefinition, scale: float, minimum: int = 2) -> Dict[str, int]:
    """Scale the kernel's default problem sizes by *scale* (flooring at *minimum*).

    Dimension-like parameters (very small defaults such as the KNN feature
    count) are left untouched so scaling varies data volume, not the kernel's
    shape.
    """
    scaled: Dict[str, int] = {}
    for name, value in kernel.default_sizes.items():
        if value <= 8:
            scaled[name] = int(value)
        else:
            scaled[name] = max(int(round(value * scale)), minimum)
    return scaled


def generate_configurations(sweep: Optional[SweepConfig] = None) -> List[Configuration]:
    """Enumerate every configuration of the sweep."""
    sweep = sweep or SweepConfig()
    kernels = list(sweep.kernels) if sweep.kernels is not None else all_kernels()
    configurations: List[Configuration] = []
    for kernel in kernels:
        for scale in sweep.size_scales:
            sizes = scale_sizes(kernel, scale, sweep.minimum_size)
            for kind in sweep.variant_kinds:
                if kind.uses_collapse and kernel.collapsible_loops < 2:
                    continue
                variant = generate_variant(kernel, kind, sizes)
                for teams in sweep.team_counts:
                    for threads in sweep.thread_counts:
                        for repetition in range(sweep.repetitions):
                            configurations.append(Configuration(
                                variant=variant,
                                sizes=sizes,
                                num_teams=teams,
                                num_threads=threads,
                                repetition=repetition,
                            ))
    return configurations


def filter_for_platform(configurations: Sequence[Configuration], is_gpu: bool) -> List[Configuration]:
    """Keep only configurations whose variant can run on a CPU/GPU platform.

    CPU platforms execute the ``cpu`` / ``cpu_collapse`` variants, GPU
    platforms the four ``gpu*`` variants — the same pairing the paper uses
    when collecting Table II.
    """
    return [c for c in configurations if c.variant.is_gpu == is_gpu]
