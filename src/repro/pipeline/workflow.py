"""End-to-end workflow (Fig. 3): variants → graphs → runtimes → GNN training.

:func:`run_workflow` is the single call the quickstart example and the
benchmark harness use: build the per-platform datasets, train one ParaGraph
model per platform with a 9:1 split, and return the trained trainers,
histories and evaluation metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from ..gnn.models import ParaGraphModel
from ..hardware.specs import ALL_PLATFORMS, HardwareSpec
from ..ml.dataset import GraphDataset
from ..ml.split import train_val_split
from ..ml.trainer import History, Trainer, TrainingConfig
from ..paragraph.encoders import GraphEncoder
from ..paragraph.variants import GraphVariant
from .dataset_builder import DatasetBuilder, DatasetBuildResult
from .variant_generation import SweepConfig


@dataclass
class PlatformResult:
    """Everything produced for one platform by the workflow."""

    platform: HardwareSpec
    dataset: GraphDataset
    train: GraphDataset
    validation: GraphDataset
    trainer: Trainer
    history: History
    metrics: Dict[str, float]


@dataclass
class WorkflowConfig:
    """Configuration of the end-to-end run."""

    sweep: SweepConfig = field(default_factory=SweepConfig)
    graph_variant: GraphVariant = GraphVariant.PARAGRAPH
    training: TrainingConfig = field(default_factory=TrainingConfig)
    hidden_dim: int = 32
    conv: str = "rgat"
    seed: int = 0
    train_fraction: float = 0.9
    noisy_runtimes: bool = True


@dataclass
class WorkflowResult:
    """Per-platform results plus the shared dataset build information."""

    build: DatasetBuildResult
    platforms: Dict[str, PlatformResult]

    def metrics_table(self) -> Dict[str, Dict[str, float]]:
        """Platform name → {rmse, normalized_rmse} (the Table III shape)."""
        return {name: dict(result.metrics) for name, result in self.platforms.items()}


def train_on_dataset(
    dataset: GraphDataset,
    encoder: GraphEncoder,
    config: WorkflowConfig,
    platform: HardwareSpec,
) -> PlatformResult:
    """Split, train and evaluate one platform's dataset."""
    train, validation = train_val_split(dataset, config.train_fraction, seed=config.seed)
    model = ParaGraphModel(
        node_feature_dim=encoder.feature_dim,
        hidden_dim=config.hidden_dim,
        conv=config.conv,
        use_edge_weight=config.graph_variant is GraphVariant.PARAGRAPH,
        seed=config.seed,
    )
    trainer = Trainer(model, config.training)
    history = trainer.fit(train, validation)
    metrics = trainer.evaluate(validation)
    return PlatformResult(
        platform=platform,
        dataset=dataset,
        train=train,
        validation=validation,
        trainer=trainer,
        history=history,
        metrics=metrics,
    )


def run_workflow(
    config: Optional[WorkflowConfig] = None,
    platforms: Sequence[HardwareSpec] = ALL_PLATFORMS,
) -> WorkflowResult:
    """Run the full pipeline on the given platforms."""
    config = config or WorkflowConfig()
    encoder = GraphEncoder()
    builder = DatasetBuilder(
        platforms=platforms,
        graph_variant=config.graph_variant,
        encoder=encoder,
        noisy=config.noisy_runtimes,
    )
    build = builder.build(config.sweep)
    results: Dict[str, PlatformResult] = {}
    for platform in platforms:
        dataset = build.datasets[platform.name]
        if len(dataset) < 4:
            continue
        results[platform.name] = train_on_dataset(dataset, encoder, config, platform)
    return WorkflowResult(build=build, platforms=results)
