"""End-to-end workflow (Fig. 3): variants → graphs → runtimes → GNN training.

.. deprecated::
    :func:`run_workflow` is kept as a thin back-compat shim over the
    composable session layer; new code should use
    ``repro.api.Session(ReproConfig(...)).workflow()`` instead, which exposes
    the same per-platform results plus batched prediction and caching.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from ..gnn.models import ParaGraphModel
from ..hardware.specs import ALL_PLATFORMS, HardwareSpec
from ..ml.dataset import GraphDataset
from ..ml.split import train_val_split
from ..ml.trainer import History, Trainer, TrainingConfig
from ..paragraph.encoders import GraphEncoder
from ..paragraph.variants import GraphVariant
from .dataset_builder import DatasetBuildResult
from .variant_generation import SweepConfig


@dataclass
class PlatformResult:
    """Everything produced for one platform by the workflow."""

    platform: HardwareSpec
    dataset: GraphDataset
    train: GraphDataset
    validation: GraphDataset
    trainer: Trainer
    history: History
    metrics: Dict[str, float]


@dataclass
class WorkflowConfig:
    """Configuration of the end-to-end run (legacy shape).

    New code should prefer :class:`repro.api.ReproConfig`, which splits the
    same knobs per stage; ``ReproConfig.from_workflow_config`` adapts this
    class losslessly.
    """

    sweep: SweepConfig = field(default_factory=SweepConfig)
    graph_variant: GraphVariant = GraphVariant.PARAGRAPH
    training: TrainingConfig = field(default_factory=TrainingConfig)
    hidden_dim: int = 32
    conv: str = "rgat"
    seed: int = 0
    train_fraction: float = 0.9
    noisy_runtimes: bool = True

    def __post_init__(self) -> None:
        from ..api.config import _check_conv, _check_train_fraction, coerce_graph_variant

        self.graph_variant = coerce_graph_variant(self.graph_variant)
        _check_train_fraction(self.train_fraction)
        _check_conv(self.conv)
        if self.hidden_dim < 1:
            raise ValueError(f"hidden_dim must be >= 1, got {self.hidden_dim}")


@dataclass
class WorkflowResult:
    """Per-platform results plus the shared dataset build information."""

    build: DatasetBuildResult
    platforms: Dict[str, PlatformResult]

    def metrics_table(self) -> Dict[str, Dict[str, float]]:
        """Platform name → {rmse, normalized_rmse} (the Table III shape)."""
        return {name: dict(result.metrics) for name, result in self.platforms.items()}


def train_on_dataset(
    dataset: GraphDataset,
    encoder: GraphEncoder,
    config: WorkflowConfig,
    platform: HardwareSpec,
) -> PlatformResult:
    """Split, train and evaluate one platform's dataset."""
    train, validation = train_val_split(dataset, config.train_fraction, seed=config.seed)
    model = ParaGraphModel(
        node_feature_dim=encoder.feature_dim,
        hidden_dim=config.hidden_dim,
        conv=config.conv,
        use_edge_weight=config.graph_variant is GraphVariant.PARAGRAPH,
        seed=config.seed,
    )
    trainer = Trainer(model, config.training)
    history = trainer.fit(train, validation)
    metrics = trainer.evaluate(validation)
    return PlatformResult(
        platform=platform,
        dataset=dataset,
        train=train,
        validation=validation,
        trainer=trainer,
        history=history,
        metrics=metrics,
    )


def run_workflow(
    config: Optional[WorkflowConfig] = None,
    platforms: Sequence[HardwareSpec] = ALL_PLATFORMS,
) -> WorkflowResult:
    """Run the full pipeline on the given platforms.

    .. deprecated::
        Thin shim over the session layer; use
        ``repro.api.Session(ReproConfig(...)).workflow()`` instead.
    """
    warnings.warn(
        "run_workflow is deprecated; use repro.api.Session(...).workflow() "
        "(see repro.api.ReproConfig.from_workflow_config for a direct adapter)",
        DeprecationWarning, stacklevel=2)
    from ..api.config import ReproConfig
    from ..api.session import Session

    session = Session(ReproConfig.from_workflow_config(
        config or WorkflowConfig(), platforms))
    return session.workflow()
