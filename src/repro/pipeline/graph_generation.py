"""ParaGraph generation stage of the workflow (Fig. 3, "ParaGraph Generator").

Each configuration's transformed source is parsed with the ``repro.clang``
frontend, analyzed (reference resolution + implicit casts) and turned into a
:class:`~repro.paragraph.graph.ParaGraph` with the configuration's problem
sizes bound for the trip-count analysis and the configuration's teams /
threads used for the OpenMP work-sharing weight division.
"""

from __future__ import annotations

from typing import Optional

from ..clang import analyze, parse_source
from ..clang.semantics import ConstantEnvironment
from ..paragraph.builder import build_paragraph
from ..paragraph.encoders import EncodedGraph, GraphEncoder
from ..paragraph.graph import ParaGraph
from ..paragraph.variants import GraphVariant
from .variant_generation import Configuration


def generate_paragraph(
    configuration: Configuration,
    graph_variant: GraphVariant = GraphVariant.PARAGRAPH,
    default_trip_count: int = 16,
) -> ParaGraph:
    """Build the (possibly ablated) program graph for one configuration."""
    ast = parse_source(configuration.variant.source,
                       filename=configuration.variant.name)
    analyze(ast)
    env = ConstantEnvironment(dict(configuration.sizes))
    graph = build_paragraph(
        ast,
        variant=graph_variant,
        num_threads=configuration.num_threads,
        num_teams=configuration.num_teams,
        env=env,
        default_trip_count=default_trip_count,
        name=configuration.name,
    )
    return graph


def encode_configuration(
    configuration: Configuration,
    encoder: GraphEncoder,
    runtime_us: float,
    graph_variant: GraphVariant = GraphVariant.PARAGRAPH,
    platform_name: str = "",
    default_trip_count: int = 16,
) -> EncodedGraph:
    """Full graph-side preparation of one dataset sample."""
    graph = generate_paragraph(configuration, graph_variant,
                               default_trip_count=default_trip_count)
    metadata = configuration.metadata
    if platform_name:
        metadata["platform"] = platform_name
    return encoder.encode(
        graph,
        num_teams=configuration.num_teams,
        num_threads=configuration.num_threads,
        target=runtime_us,
        name=configuration.name,
        metadata=metadata,
    )
