"""Runtime collection stage of the workflow (Fig. 3, "Runtime Measurement").

On the real clusters this stage builds every variant and measures it with
``gettimeofday`` around the kernel; here the
:class:`~repro.hardware.simulator.RuntimeSimulator` produces the runtimes.
The collector also reproduces the operational details §IV-A.3 mentions:
occasional failed measurements (dropped data points — the paper lost the
MI50 Laplace data this way) can be injected for robustness testing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..hardware.simulator import RuntimeSimulator
from ..hardware.specs import HardwareSpec
from .variant_generation import Configuration


@dataclass
class Measurement:
    """One collected runtime."""

    configuration: Configuration
    platform: HardwareSpec
    runtime_us: float


class RuntimeCollector:
    """Collects (simulated) runtimes of configurations on one platform."""

    def __init__(
        self,
        platform: HardwareSpec,
        noisy: bool = True,
        failure_filter: Optional[Callable[[Configuration], bool]] = None,
    ) -> None:
        """``failure_filter`` returns True for configurations whose measurement
        is considered failed/corrupted and must be dropped (modelling the
        job failures and the corrupted MI50 Laplace data of §IV-A.3/§V-B)."""
        self.platform = platform
        self.simulator = RuntimeSimulator(platform, noisy=noisy)
        self.failure_filter = failure_filter
        self.failed: List[Configuration] = []

    def collect_one(self, configuration: Configuration) -> Optional[Measurement]:
        """Measure one configuration; returns None when dropped as failed."""
        if configuration.variant.is_gpu != self.platform.is_gpu:
            return None
        if self.failure_filter is not None and self.failure_filter(configuration):
            self.failed.append(configuration)
            return None
        runtime = self.simulator.measure(
            configuration.variant,
            configuration.sizes,
            num_teams=configuration.num_teams,
            num_threads=configuration.num_threads,
            repetition=configuration.repetition,
        )
        return Measurement(configuration, self.platform, runtime)

    def collect(self, configurations: Sequence[Configuration]) -> List[Measurement]:
        """Measure every compatible configuration, skipping failures."""
        measurements: List[Measurement] = []
        for configuration in configurations:
            measurement = self.collect_one(configuration)
            if measurement is not None:
                measurements.append(measurement)
        return measurements


def drop_application(application: str) -> Callable[[Configuration], bool]:
    """Failure filter dropping one application's kernels.

    ``drop_application("Laplace")`` reproduces the corrupted-Laplace-on-MI50
    situation reported in §V-B.
    """
    def _filter(configuration: Configuration) -> bool:
        return configuration.kernel.application == application

    return _filter
