"""Dataset assembly: pairing ParaGraphs with runtimes (Fig. 3, "Dataset").

Combines the three previous stages into per-platform
:class:`~repro.ml.dataset.GraphDataset` objects and computes the dataset
statistics reported in the paper's Table II (data-point counts, runtime
ranges, standard deviations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..hardware.specs import ALL_PLATFORMS, HardwareSpec
from ..ml.dataset import GraphDataset
from ..paragraph.encoders import GraphEncoder
from ..paragraph.variants import GraphVariant
from .graph_generation import encode_configuration
from .runtime_collection import RuntimeCollector
from .variant_generation import Configuration, SweepConfig, generate_configurations


@dataclass
class DatasetBuildResult:
    """Datasets per platform plus bookkeeping about dropped configurations."""

    datasets: Dict[str, GraphDataset]
    num_configurations: int
    dropped: Dict[str, int] = field(default_factory=dict)

    def dataset_for(self, platform: HardwareSpec) -> GraphDataset:
        return self.datasets[platform.name]


class DatasetBuilder:
    """Builds the per-platform graph datasets used by every experiment."""

    def __init__(
        self,
        platforms: Sequence[HardwareSpec] = ALL_PLATFORMS,
        graph_variant: GraphVariant = GraphVariant.PARAGRAPH,
        encoder: Optional[GraphEncoder] = None,
        noisy: bool = True,
        failure_filters: Optional[Dict[str, Callable[[Configuration], bool]]] = None,
        default_trip_count: int = 16,
    ) -> None:
        """``failure_filters`` maps a platform name to a drop predicate (e.g.
        dropping Laplace on the MI50, as happened in the paper)."""
        self.platforms = list(platforms)
        self.graph_variant = graph_variant
        self.encoder = encoder or GraphEncoder()
        self.noisy = noisy
        self.failure_filters = dict(failure_filters or {})
        self.default_trip_count = default_trip_count

    # ------------------------------------------------------------------ #
    def build(self, sweep: Optional[SweepConfig] = None,
              configurations: Optional[Sequence[Configuration]] = None) -> DatasetBuildResult:
        """Generate configurations (unless given) and build every dataset."""
        if configurations is None:
            configurations = generate_configurations(sweep)
        datasets: Dict[str, GraphDataset] = {}
        dropped: Dict[str, int] = {}
        for platform in self.platforms:
            collector = RuntimeCollector(
                platform,
                noisy=self.noisy,
                failure_filter=self.failure_filters.get(platform.name),
            )
            measurements = collector.collect(configurations)
            dataset = GraphDataset(name=platform.name)
            for measurement in measurements:
                sample = encode_configuration(
                    measurement.configuration,
                    self.encoder,
                    measurement.runtime_us,
                    graph_variant=self.graph_variant,
                    platform_name=platform.name,
                    default_trip_count=self.default_trip_count,
                )
                dataset.add(sample)
            datasets[platform.name] = dataset
            dropped[platform.name] = len(collector.failed)
        return DatasetBuildResult(
            datasets=datasets,
            num_configurations=len(configurations),
            dropped=dropped,
        )


def table2_statistics(result: DatasetBuildResult) -> List[Dict[str, object]]:
    """Rows shaped like the paper's Table II for the built datasets."""
    rows: List[Dict[str, object]] = []
    for platform_name, dataset in result.datasets.items():
        stats = dataset.statistics()
        rows.append({
            "platform": platform_name,
            "data_points": stats["count"],
            "runtime_min_ms": stats["min"] / 1000.0,
            "runtime_max_ms": stats["max"] / 1000.0,
            "std_dev_ms": stats["std"] / 1000.0,
        })
    return rows
