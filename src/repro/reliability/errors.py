"""Typed failure taxonomy of the serving + store stack.

Every way a request can fail under the reliability layer maps to one
exception type, so callers (and the differential ``serve-under-faults``
scenario) can assert the contract *"a result or a typed error — never a
hang, never silent corruption"* with an ``isinstance`` check:

* :class:`DeadlineExceeded` — the request's deadline passed before (or
  while) it executed; also a :class:`TimeoutError` so generic timeout
  handling keeps working,
* :class:`ServerOverloaded` — admission control shed the request because
  the queue was at capacity (push back, retry later, or scale out),
* :class:`ServerClosedError` — work submitted after ``close()``; subclasses
  :class:`RuntimeError` because that is what both rejection sites raised
  before the taxonomy existed,
* :class:`CircuitOpenError` — the target shard's circuit breaker is open:
  recent requests failed persistently and the server is failing fast
  instead of burning the queue on a broken shard,
* :class:`TransientFaultError` — an injected (or genuinely transient)
  fault; the retry layer treats it as retryable.

Classification — :func:`is_transient` — is what keeps retries honest:
deterministic failures (a parse error is a parse error on every attempt)
fail fast, transient ones (I/O hiccups, injected chaos) earn backoff.
"""

from __future__ import annotations

__all__ = [
    "CircuitOpenError",
    "DeadlineExceeded",
    "ReliabilityError",
    "ServerClosedError",
    "ServerOverloaded",
    "TransientFaultError",
    "is_transient",
]


class ReliabilityError(RuntimeError):
    """Base of every typed failure the reliability layer raises."""


class DeadlineExceeded(ReliabilityError, TimeoutError):
    """The request's deadline expired before a result was produced.

    Raised at enqueue (deadline already in the past), at dequeue (the
    request waited out its deadline in the queue — it is dropped, not
    executed) and by the bounded waits in ``Server.predict`` /
    ``predict_batch``.  Not retryable: the time budget is gone.
    """


class ServerOverloaded(ReliabilityError):
    """Admission control shed the request: the queue is at capacity.

    Deliberate graceful degradation — shedding one request early beats
    letting every request's latency collapse.  The caller may retry with
    backoff (the condition is transient *for the caller*, but the server
    must not retry internally — that would amplify the overload).
    """


class ServerClosedError(ReliabilityError):
    """Work was submitted to a server after ``close()``.

    Subclasses :class:`RuntimeError` (via :class:`ReliabilityError`) for
    compatibility with pre-taxonomy callers that caught ``RuntimeError``.
    """


class CircuitOpenError(ReliabilityError):
    """The shard's circuit breaker is open; the request failed fast.

    The breaker re-admits a trial request after its reset timeout; a
    succeeding trial closes the circuit again.
    """


class TransientFaultError(ReliabilityError):
    """A transient fault (injected chaos or a real hiccup); retryable."""


#: exception types retried by default — transient by nature, not by value.
_TRANSIENT_TYPES = (TransientFaultError, ConnectionError, InterruptedError,
                    BrokenPipeError)


def is_transient(error: BaseException) -> bool:
    """Classify an exception as transient (retryable) or deterministic.

    Transient: :class:`TransientFaultError`, connection/interrupt-shaped
    ``OSError``\\ s, and anything carrying a truthy ``transient`` attribute
    (the extension point for third-party error types).  Everything else —
    parse errors, shape mismatches, the reliability layer's own verdicts
    (:class:`DeadlineExceeded`, :class:`ServerOverloaded`, …) — is
    deterministic: retrying would burn the retry budget reproducing the
    same failure.
    """
    if isinstance(error, ReliabilityError):
        # our own verdicts are final; only injected transient faults retry
        return isinstance(error, TransientFaultError)
    if isinstance(error, _TRANSIENT_TYPES):
        return True
    if isinstance(error, OSError):
        # I/O errors (disk hiccup, EINTR) are worth one more attempt;
        # FileNotFoundError & friends are deterministic misconfiguration
        return not isinstance(error, (FileNotFoundError, IsADirectoryError,
                                      NotADirectoryError, PermissionError))
    return bool(getattr(error, "transient", False))
