"""``repro.reliability`` — the failure model of the serving + store stack.

Systems are defined by how they degrade, not how they run clean.  This
package gives the reproduction a first-class, *testable* failure model:

* :mod:`~repro.reliability.errors` — the typed failure taxonomy
  (:class:`DeadlineExceeded`, :class:`ServerOverloaded`,
  :class:`ServerClosedError`, :class:`CircuitOpenError`,
  :class:`TransientFaultError`) and the transient/deterministic
  classifier :func:`is_transient`,
* :mod:`~repro.reliability.faults` — seeded fault injection: a registry
  of fault kinds (``raise`` / ``delay`` / ``corrupt-payload``), hook
  points threaded through the serve worker loop, micro-batcher
  scheduling, the engine forward and the store read/write paths, and
  the :func:`inject_faults` scope whose decisions replay by seed,
* :mod:`~repro.reliability.retry` — exponential backoff with jitter, a
  server-wide :class:`RetryBudget`, and the deadline-aware
  :func:`call_with_retry` loop,
* :mod:`~repro.reliability.breaker` — the per-shard
  :class:`CircuitBreaker`.

The contract all of it serves (property-tested by the synth scenario
``serve-under-faults``): under fault injection every request either
returns a float64 result bit-identical to the fault-free reference or a
typed error — never a hang, never silent corruption.  See SERVING.md's
"Failure model" section for the knobs and the degradation table.
"""

from .breaker import CircuitBreaker
from .errors import (
    CircuitOpenError,
    DeadlineExceeded,
    ReliabilityError,
    ServerClosedError,
    ServerOverloaded,
    TransientFaultError,
    is_transient,
)
from .faults import (
    SITES,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    fault_kind_registry,
    fault_point,
    inject_faults,
    register_fault,
)
from .retry import RetryBudget, RetryPolicy, call_with_retry

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "DeadlineExceeded",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "ReliabilityError",
    "RetryBudget",
    "RetryPolicy",
    "SITES",
    "ServerClosedError",
    "ServerOverloaded",
    "TransientFaultError",
    "call_with_retry",
    "fault_kind_registry",
    "fault_point",
    "inject_faults",
    "is_transient",
    "register_fault",
]
