"""Deadline-aware retries: exponential backoff, jitter, and a budget.

Three cooperating pieces:

* :class:`RetryPolicy` — how an *individual* call retries: attempt count,
  exponential backoff with full jitter (decorrelated sleeps prevent retry
  convoys hammering a recovering dependency in lockstep),
* :class:`RetryBudget` — a server-wide token bucket bounding how much
  *total* work retries may amplify: every retry spends a token, every
  success drips a fraction back, so a persistent outage degrades to
  fail-fast instead of doubling load exactly when capacity is scarcest,
* :func:`call_with_retry` — the loop: classify the failure (deterministic
  errors fail fast — see :func:`~repro.reliability.errors.is_transient`),
  check budget and deadline, sleep, go again.

The deadline always wins: if the next backoff would overrun it, the call
raises :class:`~repro.reliability.errors.DeadlineExceeded` chained from
the underlying fault — the caller sees both *that* time ran out and *why*
the attempts were failing.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

from .errors import DeadlineExceeded, is_transient

__all__ = ["RetryBudget", "RetryPolicy", "call_with_retry"]


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff shape of one retried call.

    ``max_retries`` counts *re*-attempts (0 disables retrying); backoff for
    retry *n* is ``min(backoff_s * 2**n, backoff_cap_s)`` scaled by full
    jitter into ``[1 - jitter, 1] × base``.
    """

    max_retries: int = 2
    backoff_s: float = 0.005
    backoff_cap_s: float = 0.25
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff durations must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def backoff_for(self, attempt: int,
                    rng: Optional[random.Random] = None) -> float:
        """Jittered sleep before retry *attempt* (0-based)."""
        base = min(self.backoff_s * (2.0 ** attempt), self.backoff_cap_s)
        draw = (rng or random).random()
        return base * (1.0 - self.jitter * draw)


class RetryBudget:
    """Token bucket bounding total retry amplification (thread-safe).

    Starts full at *capacity*; :meth:`take` spends one token per retry,
    :meth:`refill` (called on every success) drips ``refill_per_success``
    back.  An exhausted budget turns retries off server-wide until
    successes replenish it — the adaptive-retry shape production SDKs use.
    """

    def __init__(self, capacity: float = 32.0,
                 refill_per_success: float = 0.5) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        if refill_per_success < 0:
            raise ValueError("refill_per_success must be >= 0")
        self.capacity = float(capacity)
        self.refill_per_success = float(refill_per_success)
        self._tokens = float(capacity)
        self._lock = threading.Lock()

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens

    def take(self) -> bool:
        """Spend one token; ``False`` (no retry) when the budget is dry."""
        with self._lock:
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False

    def refill(self) -> None:
        """Drip one success's worth of budget back (bounded by capacity)."""
        with self._lock:
            self._tokens = min(self.capacity,
                               self._tokens + self.refill_per_success)


def call_with_retry(
    fn: Callable[[], "object"],
    *,
    policy: RetryPolicy,
    budget: Optional[RetryBudget] = None,
    deadline: Optional[float] = None,
    classify: Callable[[BaseException], bool] = is_transient,
    on_retry: Optional[Callable[[BaseException, int], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> "object":
    """Run *fn*, retrying transient failures under *policy*.

    *deadline* is an absolute ``time.monotonic()`` instant.  Deterministic
    failures (per *classify*) and exhausted budgets re-raise the original
    error; a deadline with no room for the next backoff raises
    :class:`DeadlineExceeded` chained from it.  *on_retry* observes every
    retry (the server counts them there).
    """
    attempt = 0
    while True:
        try:
            result = fn()
        except Exception as error:  # noqa: BLE001 - classified below
            if not classify(error) or attempt >= policy.max_retries:
                raise
            if budget is not None and not budget.take():
                raise
            pause = policy.backoff_for(attempt)
            if deadline is not None and \
                    time.monotonic() + pause >= deadline:
                raise DeadlineExceeded(
                    f"deadline expired after {attempt + 1} attempt(s); "
                    f"last failure: {type(error).__name__}: {error}"
                ) from error
            if on_retry is not None:
                on_retry(error, attempt)
            sleep(pause)
            attempt += 1
        else:
            if budget is not None:
                budget.refill()
            return result
