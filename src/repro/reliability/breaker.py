"""Per-shard circuit breaker: fail fast when a shard fails persistently.

The classic three-state machine:

* **closed** — requests flow; consecutive failures are counted, successes
  reset the count,
* **open** — entered after ``failure_threshold`` consecutive failures;
  :meth:`CircuitBreaker.allow` answers ``False`` (the server raises
  :class:`~repro.reliability.errors.CircuitOpenError` without queueing),
* **half-open** — after ``reset_s`` one *trial* request is admitted;
  success closes the circuit, failure re-opens it for another ``reset_s``.

The breaker guards a *shard* (platform × parse mode × dtype): one
platform's broken model set must not consume the pool's capacity on
requests that will fail anyway, and the future fleet dispatcher reads
breaker states from ``Server.healthz()`` to route around dead shards.
Thread-safe; time is injectable for tests.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = ["CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open trials."""

    def __init__(self, failure_threshold: int = 8, reset_s: float = 5.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1 (use no breaker "
                             "at all to disable breaking)")
        if reset_s < 0:
            raise ValueError("reset_s must be >= 0")
        self.failure_threshold = int(failure_threshold)
        self.reset_s = float(reset_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._trial_in_flight = False
        self._trial_started = 0.0

    # -------------------------------------------------------------- #
    @property
    def state(self) -> str:
        """``"closed"`` / ``"open"`` / ``"half-open"`` (transition-aware)."""
        with self._lock:
            self._maybe_half_open_locked()
            return self._state

    def allow(self) -> bool:
        """May a request proceed right now?

        In half-open state exactly one in-flight trial is admitted; other
        requests keep failing fast until the trial reports its outcome.  A
        trial that never reports (shed, deadline-dropped) is written off
        after another ``reset_s`` so the breaker cannot wedge half-open.
        """
        with self._lock:
            self._maybe_half_open_locked()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN:
                now = self._clock()
                if not self._trial_in_flight or \
                        now - self._trial_started >= self.reset_s:
                    self._trial_in_flight = True
                    self._trial_started = now
                    return True
            return False

    def record_success(self) -> None:
        """A request (or the half-open trial) succeeded: close the circuit."""
        with self._lock:
            self._state = CLOSED
            self._consecutive_failures = 0
            self._trial_in_flight = False

    def record_failure(self) -> None:
        """A request failed: count it; trip when the threshold is reached."""
        with self._lock:
            self._consecutive_failures += 1
            if self._state == HALF_OPEN or \
                    self._consecutive_failures >= self.failure_threshold:
                self._state = OPEN
                self._opened_at = self._clock()
                self._trial_in_flight = False

    # -------------------------------------------------------------- #
    def _maybe_half_open_locked(self) -> None:
        if self._state == OPEN and \
                self._clock() - self._opened_at >= self.reset_s:
            self._state = HALF_OPEN
            self._trial_in_flight = False

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"CircuitBreaker(state={self.state!r}, "
                f"failures={self._consecutive_failures}/"
                f"{self.failure_threshold}, reset_s={self.reset_s})")
