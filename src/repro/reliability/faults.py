"""Seeded fault injection for the serving + store stack.

The production code is threaded with named **hook points**::

    payload = fault_point("store.read", payload)

With no injector active (the default, and the only mode outside tests)
``fault_point`` is a single global read returning *payload* unchanged.
Inside an :func:`inject_faults` scope, each call consults the active
:class:`FaultInjector`: per (site, kind) a seeded rng stream decides
whether the fault fires, so a chaos run replays by seed — the same seed
produces the same fault decisions at the same call indices.

Fault *kinds* live in a string-keyed registry (the same
:class:`~repro.api.registries.Registry` mechanism as ``register_conv`` /
``register_checker``; extend with :func:`register_fault`):

* ``raise`` — raise :class:`~repro.reliability.errors.TransientFaultError`
  (the retry layer classifies it as retryable),
* ``delay`` — sleep ``delay_s`` (exercises deadlines and drain timeouts),
* ``corrupt-payload`` — return a corrupted copy of the payload (bytes get
  a flipped byte, arrays a perturbed element).

Not every kind is legal at every site: ``corrupt-payload`` is only allowed
where an integrity check sits downstream (the store's checksummed
payloads) — corrupting a payload nothing re-verifies would *create* the
silent-corruption failure mode this subsystem exists to exclude — and the
scheduler hook is delay-only (a raise inside the scheduling loop would
kill the worker, not a request).  :data:`SITES` is the capability table;
:class:`FaultPlan` validates against it at construction time.
"""

from __future__ import annotations

import threading
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence, Tuple

import numpy as np

from ..api.registries import Registry
from .errors import TransientFaultError

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "SITES",
    "SITE_FORWARD",
    "SITE_SCHEDULE",
    "SITE_STORE_READ",
    "SITE_STORE_WRITE",
    "SITE_SUBMIT",
    "SITE_WORKER",
    "active_injector",
    "fault_kind_registry",
    "fault_point",
    "inject_faults",
    "register_fault",
]

# ------------------------------------------------------------------ #
# hook-point sites and their legal fault kinds
# ------------------------------------------------------------------ #
SITE_SUBMIT = "serve.submit"          # request admission (caller's thread)
SITE_SCHEDULE = "serve.schedule"      # micro-batcher scheduling (worker)
SITE_WORKER = "serve.worker"          # worker loop, before batch execution
SITE_FORWARD = "engine.forward"       # the batched GNN forward
SITE_STORE_READ = "store.read"        # artifact payload read
SITE_STORE_WRITE = "store.write"      # artifact payload write

#: site → fault kinds that may legally fire there (see module docstring).
SITES: Dict[str, Tuple[str, ...]] = {
    SITE_SUBMIT: ("raise", "delay"),
    SITE_SCHEDULE: ("delay",),
    SITE_WORKER: ("raise", "delay"),
    SITE_FORWARD: ("raise", "delay"),
    SITE_STORE_READ: ("raise", "delay", "corrupt-payload"),
    SITE_STORE_WRITE: ("raise", "delay", "corrupt-payload"),
}


# ------------------------------------------------------------------ #
# fault kinds (string-keyed registry, extension point)
# ------------------------------------------------------------------ #
#: fault behaviours keyed by kind; a fault is ``fn(spec, rng, payload) ->
#: payload`` and may raise or block instead of returning.
fault_kind_registry = Registry("fault kind")
register_fault = fault_kind_registry.register


@register_fault("raise")
def _raise_fault(spec: "FaultSpec", rng: np.random.Generator, payload):
    raise TransientFaultError(
        f"injected fault at {spec.site!r} (seeded chaos, probability "
        f"{spec.probability:g})")


@register_fault("delay")
def _delay_fault(spec: "FaultSpec", rng: np.random.Generator, payload):
    time.sleep(spec.delay_s)
    return payload


@register_fault("corrupt-payload")
def _corrupt_fault(spec: "FaultSpec", rng: np.random.Generator, payload):
    if payload is None:
        return None
    if isinstance(payload, (bytes, bytearray)):
        if not len(payload):
            return payload
        corrupted = bytearray(payload)
        corrupted[int(rng.integers(0, len(corrupted)))] ^= 0xFF
        return bytes(corrupted)
    if isinstance(payload, np.ndarray):
        if not payload.size:
            return payload
        corrupted = payload.copy()
        flat = corrupted.reshape(-1)
        index = int(rng.integers(0, flat.size))
        if np.issubdtype(flat.dtype, np.inexact):
            flat[index] = np.nan
        else:
            flat[index] = ~flat[index] if np.issubdtype(flat.dtype, np.integer) \
                else flat[index]
        return corrupted
    raise TypeError(
        f"corrupt-payload fault at {spec.site!r} got an uncorruptible "
        f"payload of type {type(payload).__name__}")


# ------------------------------------------------------------------ #
# fault plans
# ------------------------------------------------------------------ #
@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: where, what, how often.

    Parameters
    ----------
    site:
        Hook-point name (a :data:`SITES` key).
    kind:
        Registered fault kind (``raise`` / ``delay`` / ``corrupt-payload``).
    probability:
        Per-call firing probability in ``[0, 1]``, drawn from the spec's
        own seeded rng stream.
    delay_s:
        Sleep duration for ``delay`` faults.
    max_fires:
        Optional cap on total fires (e.g. "fail the first two forwards,
        then heal" — the canonical transient-fault shape).
    """

    site: str
    kind: str
    probability: float
    delay_s: float = 0.002
    max_fires: Optional[int] = None

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; known sites: "
                f"{sorted(SITES)}")
        if self.kind not in fault_kind_registry:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; registered kinds: "
                f"{fault_kind_registry.keys()}")
        if self.kind not in SITES[self.site]:
            raise ValueError(
                f"fault kind {self.kind!r} is not allowed at site "
                f"{self.site!r} (allowed: {SITES[self.site]}); see the "
                "capability table in repro.reliability.faults")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")
        if self.max_fires is not None and self.max_fires < 1:
            raise ValueError("max_fires must be >= 1 (or None)")


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the fault specs it drives.

    Every spec gets its own rng stream derived from ``(seed, site, kind)``,
    so the decision sequence at each hook point is a pure function of the
    seed and that site's call order — chaos failures replay by seed.
    """

    seed: int
    specs: Tuple[FaultSpec, ...] = ()

    def __init__(self, seed: int, specs: Sequence[FaultSpec] = ()) -> None:
        object.__setattr__(self, "seed", int(seed))
        object.__setattr__(self, "specs", tuple(specs))


class FaultInjector:
    """The live state of one chaos scope: rng streams + fire accounting.

    Thread-safe: serve workers and client threads hit the same injector
    concurrently, so the rng draws and counters mutate under one lock.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._by_site: Dict[str, list] = {}
        self._fired: Dict[Tuple[str, str], int] = {}
        for spec in plan.specs:
            stream = np.random.default_rng(
                [plan.seed & 0x7FFFFFFF,
                 zlib.crc32(spec.site.encode("utf-8")),
                 zlib.crc32(spec.kind.encode("utf-8"))])
            self._by_site.setdefault(spec.site, []).append((spec, stream))

    # -------------------------------------------------------------- #
    def fired(self, site: Optional[str] = None) -> int:
        """Total fault fires (optionally of one site)."""
        with self._lock:
            return sum(count for (fire_site, _), count in self._fired.items()
                       if site is None or fire_site == site)

    def fire_counts(self) -> Dict[Tuple[str, str], int]:
        """``{(site, kind): fires}`` accounting snapshot."""
        with self._lock:
            return dict(self._fired)

    # -------------------------------------------------------------- #
    def apply(self, site: str, payload):
        """Run *site*'s due faults against *payload* (may raise / sleep)."""
        due = []
        with self._lock:
            for spec, stream in self._by_site.get(site, ()):
                key = (spec.site, spec.kind)
                if spec.max_fires is not None and \
                        self._fired.get(key, 0) >= spec.max_fires:
                    continue
                if stream.random() < spec.probability:
                    self._fired[key] = self._fired.get(key, 0) + 1
                    due.append((spec, stream))
        # execute outside the lock: delay faults must not serialize every
        # other thread's fault decisions behind one sleep
        for spec, stream in due:
            payload = fault_kind_registry.get(spec.kind)(spec, stream, payload)
        return payload


#: the active injector; ``None`` (the default) makes fault_point a no-op.
_ACTIVE: Optional[FaultInjector] = None
_ACTIVATION_LOCK = threading.Lock()


def active_injector() -> Optional[FaultInjector]:
    """The currently-active :class:`FaultInjector`, or ``None``.

    Read-only introspection for observability surfaces (``repro.obs``
    snapshots report whether a chaos experiment is live and its fire
    accounting); activation still goes through :func:`inject_faults`.
    """
    return _ACTIVE


def fault_point(site: str, payload=None):
    """Hook point: apply the active injector's faults at *site*.

    The clean-path contract: with no injector active this is one global
    read and a return — cheap enough to sit on the serving hot path
    (``benchmarks/test_serve_throughput.py`` guards the overhead).
    """
    injector = _ACTIVE
    if injector is None:
        return payload
    return injector.apply(site, payload)


@contextmanager
def inject_faults(plan_or_injector) -> Iterator[FaultInjector]:
    """Activate fault injection for the duration of the ``with`` block.

    Takes a :class:`FaultPlan` (an injector is built for it) or a prebuilt
    :class:`FaultInjector`; yields the injector so callers can assert on
    its fire accounting.  Scopes do not nest — chaos experiments must be
    explicit about which plan is live.
    """
    global _ACTIVE
    injector = plan_or_injector if isinstance(plan_or_injector, FaultInjector) \
        else FaultInjector(plan_or_injector)
    with _ACTIVATION_LOCK:
        if _ACTIVE is not None:
            raise RuntimeError(
                "a FaultInjector is already active; fault scopes do not nest")
        _ACTIVE = injector
    try:
        yield injector
    finally:
        with _ACTIVATION_LOCK:
            _ACTIVE = None
