"""Kernel-definition dataclasses shared by the benchmark applications.

Each benchmark application (Table I of the paper) contributes one or more
*kernels*: an OpenMP-parallelizable loop nest written as C source.  The
definition records everything the rest of the pipeline needs:

* the serial C source of the kernel function (parsed by ``repro.clang``),
* which parameters are problem sizes (used to sweep dataset variety and to
  bind loop bounds for the weight computation),
* the arrays the kernel touches, with element sizes and size expressions, so
  the variant generator can emit ``map`` clauses and the hardware model can
  price host↔device transfers,
* how many of the outer loops are perfectly nested / collapsible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..clang import ConstantEnvironment, evaluate_constant, parse_source
from ..clang.ast_nodes import FunctionDecl, TranslationUnitDecl


@dataclass(frozen=True)
class ArraySpec:
    """Description of one array argument of a kernel.

    ``size_expr`` is a C expression over the kernel's problem-size parameters
    giving the number of elements (e.g. ``"N*M"``); ``direction`` is the
    OpenMP map direction used by the ``*_mem`` variants.
    """

    name: str
    element_size: int
    size_expr: str
    direction: str = "tofrom"      # "to", "from" or "tofrom"

    def num_elements(self, sizes: Mapping[str, int]) -> int:
        """Evaluate the size expression for concrete problem sizes."""
        from ..clang.parser import Parser
        from ..clang.lexer import tokenize

        expr = Parser(tokenize(self.size_expr)).parse_expression()
        value = evaluate_constant(expr, ConstantEnvironment(dict(sizes)))
        if value is None:
            raise ValueError(
                f"cannot evaluate array size {self.size_expr!r} with sizes {dict(sizes)!r}")
        return int(value)

    def num_bytes(self, sizes: Mapping[str, int]) -> int:
        return self.num_elements(sizes) * self.element_size


@dataclass(frozen=True)
class KernelDefinition:
    """One OpenMP kernel of a benchmark application."""

    application: str
    kernel_name: str
    domain: str
    source: str
    size_parameters: Tuple[str, ...]
    arrays: Tuple[ArraySpec, ...]
    collapsible_loops: int = 1
    default_sizes: Mapping[str, int] = field(default_factory=dict)
    description: str = ""

    # ------------------------------------------------------------------ #
    @property
    def full_name(self) -> str:
        return f"{self.application}/{self.kernel_name}"

    def parse(self) -> TranslationUnitDecl:
        """Parse the kernel source into an AST (fresh tree on every call)."""
        return parse_source(self.source, filename=self.full_name)

    def function(self) -> FunctionDecl:
        """Return the kernel's function definition node."""
        unit = self.parse()
        for node in unit.children:
            if isinstance(node, FunctionDecl) and node.body is not None:
                return node
        raise ValueError(f"kernel {self.full_name} has no function definition")

    def sizes_with_defaults(self, overrides: Optional[Mapping[str, int]] = None) -> Dict[str, int]:
        """Concrete problem sizes: defaults overridden by *overrides*."""
        sizes = dict(self.default_sizes)
        if overrides:
            sizes.update({k: int(v) for k, v in overrides.items()})
        missing = [p for p in self.size_parameters if p not in sizes]
        if missing:
            raise ValueError(f"kernel {self.full_name} missing sizes for {missing}")
        return sizes

    def transfer_bytes(self, sizes: Mapping[str, int]) -> int:
        """Total bytes moved if every array is transferred once."""
        return sum(array.num_bytes(sizes) for array in self.arrays)

    def environment(self, overrides: Optional[Mapping[str, int]] = None) -> ConstantEnvironment:
        """Constant environment binding the problem-size parameters."""
        return ConstantEnvironment(self.sizes_with_defaults(overrides))


@dataclass(frozen=True)
class ApplicationSpec:
    """A benchmark application: a named group of kernels (Table I rows)."""

    name: str
    domain: str
    kernels: Tuple[KernelDefinition, ...]
    citation: str = ""

    @property
    def num_kernels(self) -> int:
        return len(self.kernels)
