"""Registry of all benchmark applications and kernels (Table I).

The registry is the single lookup point the pipeline, the examples and the
Table I benchmark use to enumerate workloads.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .base import ApplicationSpec, KernelDefinition
from .linear_algebra import GAUSS_SEIDEL_APP, MATMUL_APP, MATVEC_APP, TRANSPOSE_APP
from .numerical import KNN_APP, LAPLACE_APP
from .particle_filter import PARTICLE_FILTER_APP
from .statistics import CORRELATION_APP, COVARIANCE_APP

#: Applications in the order of the paper's Table I.
APPLICATIONS: Tuple[ApplicationSpec, ...] = (
    CORRELATION_APP,
    COVARIANCE_APP,
    GAUSS_SEIDEL_APP,
    KNN_APP,
    LAPLACE_APP,
    MATMUL_APP,
    MATVEC_APP,
    TRANSPOSE_APP,
    PARTICLE_FILTER_APP,
)


def all_applications() -> List[ApplicationSpec]:
    """Every benchmark application, Table I order."""
    return list(APPLICATIONS)


def all_kernels() -> List[KernelDefinition]:
    """Every kernel across all applications (17 in total, as in the paper)."""
    kernels: List[KernelDefinition] = []
    for application in APPLICATIONS:
        kernels.extend(application.kernels)
    return kernels


def get_application(name: str) -> ApplicationSpec:
    """Look up an application by name (case-insensitive)."""
    for application in APPLICATIONS:
        if application.name.lower() == name.lower():
            return application
    raise KeyError(f"unknown application {name!r}; "
                   f"known: {[a.name for a in APPLICATIONS]}")


def get_kernel(name: str, application: Optional[str] = None) -> KernelDefinition:
    """Look up a kernel by kernel name or ``application/kernel`` full name."""
    if "/" in name and application is None:
        application, name = name.split("/", 1)
    for kernel in all_kernels():
        if kernel.kernel_name.lower() != name.lower():
            continue
        if application is not None and kernel.application.lower() != application.lower():
            continue
        return kernel
    raise KeyError(f"unknown kernel {name!r}")


def table1_rows() -> List[Dict[str, object]]:
    """Rows of the paper's Table I: application, #kernels, domain."""
    return [
        {"application": app.name, "num_kernels": app.num_kernels, "domain": app.domain}
        for app in APPLICATIONS
    ]
