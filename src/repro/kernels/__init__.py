"""``repro.kernels`` — the benchmark applications of the paper's Table I.

Nine applications totalling seventeen OpenMP-parallelizable kernels, each
defined as real C source (parsed by ``repro.clang``) plus the metadata the
variant generator and hardware model need (problem sizes, arrays, collapsible
loop-nest depth).
"""

from .base import ApplicationSpec, ArraySpec, KernelDefinition
from .linear_algebra import (
    GAUSS_SEIDEL,
    GAUSS_SEIDEL_APP,
    MATMUL,
    MATMUL_APP,
    MATVEC,
    MATVEC_APP,
    TRANSPOSE,
    TRANSPOSE_APP,
)
from .numerical import KNN, KNN_APP, LAPLACE_COPY, LAPLACE_SWEEP, LAPLACE_APP
from .particle_filter import (
    PARTICLE_FILTER_APP,
    PF_FIND_INDEX,
    PF_LIKELIHOOD,
    PF_MOMENTS,
    PF_NORMALIZE,
    PF_PARTIAL_SUMS,
    PF_PROPAGATE,
    PF_WEIGHT_UPDATE,
)
from .registry import (
    APPLICATIONS,
    all_applications,
    all_kernels,
    get_application,
    get_kernel,
    table1_rows,
)
from .statistics import (
    CORRELATION,
    CORRELATION_APP,
    COVARIANCE_MATRIX,
    COVARIANCE_MEAN,
    COVARIANCE_APP,
)

__all__ = [
    "APPLICATIONS",
    "ApplicationSpec",
    "ArraySpec",
    "KernelDefinition",
    "all_applications",
    "all_kernels",
    "get_application",
    "get_kernel",
    "table1_rows",
]
