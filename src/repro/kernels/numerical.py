"""Numerical-analysis and data-mining benchmark kernels (Table I).

Laplace's Equation (2 kernels: Jacobi sweep and residual/copy) and K-nearest
neighbours (1 kernel, from the Rodinia ``nn`` benchmark family).
"""

from __future__ import annotations

from .base import ApplicationSpec, ArraySpec, KernelDefinition

# --------------------------------------------------------------------- #
# Laplace's equation: Jacobi update sweep + copy/residual kernel
# --------------------------------------------------------------------- #
_LAPLACE_SWEEP_SOURCE = """
void laplace_sweep_kernel(double *u, double *unew, int N, int M) {
  for (int i = 1; i < N; i++) {
    for (int j = 1; j < M; j++) {
      unew[i * M + j] = 0.25 * (u[(i - 1) * M + j] + u[(i + 1) * M + j]
                              + u[i * M + j - 1] + u[i * M + j + 1]);
    }
  }
}
"""

_LAPLACE_COPY_SOURCE = """
void laplace_copy_kernel(double *u, double *unew, double *error, int N, int M) {
  for (int i = 1; i < N; i++) {
    for (int j = 1; j < M; j++) {
      double diff = unew[i * M + j] - u[i * M + j];
      if (diff < 0.0) {
        diff = 0.0 - diff;
      }
      error[i * M + j] = diff;
      u[i * M + j] = unew[i * M + j];
    }
  }
}
"""

LAPLACE_SWEEP = KernelDefinition(
    application="Laplace",
    kernel_name="laplace_sweep",
    domain="Numerical Analysis",
    source=_LAPLACE_SWEEP_SOURCE,
    size_parameters=("N", "M"),
    arrays=(
        ArraySpec("u", 8, "(N+2)*(M+2)", "to"),
        ArraySpec("unew", 8, "(N+2)*(M+2)", "from"),
    ),
    collapsible_loops=2,
    default_sizes={"N": 2048, "M": 2048},
    description="Five-point Jacobi stencil sweep for Laplace's equation.",
)

LAPLACE_COPY = KernelDefinition(
    application="Laplace",
    kernel_name="laplace_copy",
    domain="Numerical Analysis",
    source=_LAPLACE_COPY_SOURCE,
    size_parameters=("N", "M"),
    arrays=(
        ArraySpec("u", 8, "(N+2)*(M+2)", "tofrom"),
        ArraySpec("unew", 8, "(N+2)*(M+2)", "to"),
        ArraySpec("error", 8, "(N+2)*(M+2)", "from"),
    ),
    collapsible_loops=2,
    default_sizes={"N": 2048, "M": 2048},
    description="Copy-back and per-cell residual of the Jacobi iteration.",
)

LAPLACE_APP = ApplicationSpec(
    "Laplace", "Numerical Analysis", (LAPLACE_SWEEP, LAPLACE_COPY))

# --------------------------------------------------------------------- #
# K-nearest neighbours (Rodinia nn): distance computation over records
# --------------------------------------------------------------------- #
_KNN_SOURCE = """
void knn_kernel(double *locations, double *distances, double lat, double lng,
                int N, int D) {
  for (int i = 0; i < N; i++) {
    double acc = 0.0;
    for (int d = 0; d < D; d++) {
      double delta = locations[i * D + d] - lat;
      if (d > 0) {
        delta = locations[i * D + d] - lng;
      }
      acc += delta * delta;
    }
    distances[i] = sqrt(acc);
  }
}
"""

KNN = KernelDefinition(
    application="NN",
    kernel_name="knn_distance",
    domain="Data Mining",
    source=_KNN_SOURCE,
    size_parameters=("N", "D"),
    arrays=(
        ArraySpec("locations", 8, "N*D", "to"),
        ArraySpec("distances", 8, "N", "from"),
    ),
    collapsible_loops=1,
    default_sizes={"N": 65536, "D": 2},
    description="Euclidean distance of every record to the query point.",
)

KNN_APP = ApplicationSpec("NN", "Data Mining", (KNN,))
