"""Particle Filter benchmark kernels (Table I, Medical Imaging, 7 kernels).

Modelled on the Rodinia ``particlefilter`` benchmark, which tracks an object
through a noisy image sequence.  The paper counts seven OpenMP kernels in
this application; the seven below follow the Rodinia structure: likelihood
evaluation, weight update, weight normalization, moment estimation, CDF
construction companion (partial sums), systematic resampling index search,
and particle propagation.
"""

from __future__ import annotations

from .base import ApplicationSpec, ArraySpec, KernelDefinition

# 1. likelihood of every particle given the measurement patch
_LIKELIHOOD_SOURCE = """
void pf_likelihood_kernel(double *particlesX, double *particlesY,
                          double *image, double *likelihood,
                          int NP, int R, int W) {
  for (int i = 0; i < NP; i++) {
    double acc = 0.0;
    for (int r = 0; r < R; r++) {
      int x = (int) particlesX[i] + r;
      int y = (int) particlesY[i] + r;
      double fg = image[x * W + y] - 100.0;
      double bg = image[x * W + y] - 228.0;
      acc += (fg * fg - bg * bg) / 50.0;
    }
    likelihood[i] = acc / R;
  }
}
"""

# 2. multiply weights by the exponentiated likelihood
_WEIGHT_UPDATE_SOURCE = """
void pf_weight_update_kernel(double *weights, double *likelihood, int NP) {
  for (int i = 0; i < NP; i++) {
    weights[i] = weights[i] * exp(likelihood[i]);
  }
}
"""

# 3. normalize weights by their sum
_NORMALIZE_SOURCE = """
void pf_normalize_kernel(double *weights, double *normalized, double sumWeights, int NP) {
  for (int i = 0; i < NP; i++) {
    normalized[i] = weights[i] / sumWeights;
  }
}
"""

# 4. weighted moments of the particle cloud (x and y estimates)
_MOMENTS_SOURCE = """
void pf_moments_kernel(double *particlesX, double *particlesY,
                       double *weights, double *moments, int NP) {
  for (int i = 0; i < NP; i++) {
    moments[i] = particlesX[i] * weights[i] + particlesY[i] * weights[i];
  }
}
"""

# 5. partial sums feeding the cumulative distribution function
_PARTIAL_SUMS_SOURCE = """
void pf_partial_sums_kernel(double *weights, double *partial, int NP, int B) {
  for (int b = 0; b < B; b++) {
    double acc = 0.0;
    for (int i = 0; i < NP / B; i++) {
      acc += weights[b * (NP / B) + i];
    }
    partial[b] = acc;
  }
}
"""

# 6. systematic resampling: find the CDF slot of every particle's u-value
_FIND_INDEX_SOURCE = """
void pf_find_index_kernel(double *cdf, double *u, int *indices, int NP) {
  for (int i = 0; i < NP; i++) {
    int index = NP - 1;
    for (int j = 0; j < NP; j++) {
      if (cdf[j] >= u[i]) {
        if (j < index) {
          index = j;
        }
      }
    }
    indices[i] = index;
  }
}
"""

# 7. propagate the resampled particles with the motion model
_PROPAGATE_SOURCE = """
void pf_propagate_kernel(double *particlesX, double *particlesY,
                         double *noiseX, double *noiseY,
                         int *indices, int NP) {
  for (int i = 0; i < NP; i++) {
    int src = indices[i];
    particlesX[i] = particlesX[src] + 1.0 + 5.0 * noiseX[i];
    particlesY[i] = particlesY[src] - 2.0 + 2.0 * noiseY[i];
  }
}
"""

_PF_COMMON = dict(application="ParticleFilter", domain="Medical Imaging")

PF_LIKELIHOOD = KernelDefinition(
    kernel_name="pf_likelihood",
    source=_LIKELIHOOD_SOURCE,
    size_parameters=("NP", "R", "W"),
    arrays=(
        ArraySpec("particlesX", 8, "NP", "to"),
        ArraySpec("particlesY", 8, "NP", "to"),
        ArraySpec("image", 8, "W*W", "to"),
        ArraySpec("likelihood", 8, "NP", "from"),
    ),
    collapsible_loops=1,
    default_sizes={"NP": 16384, "R": 64, "W": 512},
    description="Per-particle likelihood over a sampling radius of the image.",
    **_PF_COMMON,
)

PF_WEIGHT_UPDATE = KernelDefinition(
    kernel_name="pf_weight_update",
    source=_WEIGHT_UPDATE_SOURCE,
    size_parameters=("NP",),
    arrays=(
        ArraySpec("weights", 8, "NP", "tofrom"),
        ArraySpec("likelihood", 8, "NP", "to"),
    ),
    collapsible_loops=1,
    default_sizes={"NP": 262144},
    description="Importance-weight update from the likelihood.",
    **_PF_COMMON,
)

PF_NORMALIZE = KernelDefinition(
    kernel_name="pf_normalize",
    source=_NORMALIZE_SOURCE,
    size_parameters=("NP",),
    arrays=(
        ArraySpec("weights", 8, "NP", "to"),
        ArraySpec("normalized", 8, "NP", "from"),
    ),
    collapsible_loops=1,
    default_sizes={"NP": 262144},
    description="Weight normalization by the global sum.",
    **_PF_COMMON,
)

PF_MOMENTS = KernelDefinition(
    kernel_name="pf_moments",
    source=_MOMENTS_SOURCE,
    size_parameters=("NP",),
    arrays=(
        ArraySpec("particlesX", 8, "NP", "to"),
        ArraySpec("particlesY", 8, "NP", "to"),
        ArraySpec("weights", 8, "NP", "to"),
        ArraySpec("moments", 8, "NP", "from"),
    ),
    collapsible_loops=1,
    default_sizes={"NP": 262144},
    description="Weighted position moments for the state estimate.",
    **_PF_COMMON,
)

PF_PARTIAL_SUMS = KernelDefinition(
    kernel_name="pf_partial_sums",
    source=_PARTIAL_SUMS_SOURCE,
    size_parameters=("NP", "B"),
    arrays=(
        ArraySpec("weights", 8, "NP", "to"),
        ArraySpec("partial", 8, "B", "from"),
    ),
    collapsible_loops=1,
    default_sizes={"NP": 262144, "B": 512},
    description="Blocked partial sums of the weights (CDF preparation).",
    **_PF_COMMON,
)

PF_FIND_INDEX = KernelDefinition(
    kernel_name="pf_find_index",
    source=_FIND_INDEX_SOURCE,
    size_parameters=("NP",),
    arrays=(
        ArraySpec("cdf", 8, "NP", "to"),
        ArraySpec("u", 8, "NP", "to"),
        ArraySpec("indices", 4, "NP", "from"),
    ),
    collapsible_loops=1,
    default_sizes={"NP": 8192},
    description="Systematic-resampling index search (quadratic scan).",
    **_PF_COMMON,
)

PF_PROPAGATE = KernelDefinition(
    kernel_name="pf_propagate",
    source=_PROPAGATE_SOURCE,
    size_parameters=("NP",),
    arrays=(
        ArraySpec("particlesX", 8, "NP", "tofrom"),
        ArraySpec("particlesY", 8, "NP", "tofrom"),
        ArraySpec("noiseX", 8, "NP", "to"),
        ArraySpec("noiseY", 8, "NP", "to"),
        ArraySpec("indices", 4, "NP", "to"),
    ),
    collapsible_loops=1,
    default_sizes={"NP": 262144},
    description="Resampled particle propagation with the motion model.",
    **_PF_COMMON,
)

PARTICLE_FILTER_APP = ApplicationSpec(
    "ParticleFilter",
    "Medical Imaging",
    (
        PF_LIKELIHOOD,
        PF_WEIGHT_UPDATE,
        PF_NORMALIZE,
        PF_MOMENTS,
        PF_PARTIAL_SUMS,
        PF_FIND_INDEX,
        PF_PROPAGATE,
    ),
)
