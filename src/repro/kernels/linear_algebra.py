"""Linear-algebra benchmark kernels (Table I).

Three of the paper's applications live here: Matrix-Matrix Multiplication,
Matrix-Vector Multiplication and Matrix Transpose, plus the Gauss-Seidel
iterative solver (which the paper lists under Linear Algebra as well).
"""

from __future__ import annotations

from .base import ApplicationSpec, ArraySpec, KernelDefinition

# --------------------------------------------------------------------- #
# Matrix-Matrix Multiplication
# --------------------------------------------------------------------- #
_MATMUL_SOURCE = """
void matmul_kernel(double *A, double *B, double *C, int N, int M, int K) {
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < M; j++) {
      double sum = 0.0;
      for (int k = 0; k < K; k++) {
        sum += A[i * K + k] * B[k * M + j];
      }
      C[i * M + j] = sum;
    }
  }
}
"""

MATMUL = KernelDefinition(
    application="MM",
    kernel_name="matmul",
    domain="Linear Algebra",
    source=_MATMUL_SOURCE,
    size_parameters=("N", "M", "K"),
    arrays=(
        ArraySpec("A", 8, "N*K", "to"),
        ArraySpec("B", 8, "K*M", "to"),
        ArraySpec("C", 8, "N*M", "from"),
    ),
    collapsible_loops=2,
    default_sizes={"N": 256, "M": 256, "K": 256},
    description="Dense GEMM: C = A * B with a k-reduction per output element.",
)

MATMUL_APP = ApplicationSpec("MM", "Linear Algebra", (MATMUL,))

# --------------------------------------------------------------------- #
# Matrix-Vector Multiplication
# --------------------------------------------------------------------- #
_MATVEC_SOURCE = """
void matvec_kernel(double *A, double *x, double *y, int N, int M) {
  for (int i = 0; i < N; i++) {
    double acc = 0.0;
    for (int j = 0; j < M; j++) {
      acc += A[i * M + j] * x[j];
    }
    y[i] = acc;
  }
}
"""

MATVEC = KernelDefinition(
    application="MV",
    kernel_name="matvec",
    domain="Linear Algebra",
    source=_MATVEC_SOURCE,
    size_parameters=("N", "M"),
    arrays=(
        ArraySpec("A", 8, "N*M", "to"),
        ArraySpec("x", 8, "M", "to"),
        ArraySpec("y", 8, "N", "from"),
    ),
    collapsible_loops=1,
    default_sizes={"N": 4096, "M": 4096},
    description="Dense matrix-vector product y = A x (memory-bound).",
)

MATVEC_APP = ApplicationSpec("MV", "Linear Algebra", (MATVEC,))

# --------------------------------------------------------------------- #
# Matrix Transpose
# --------------------------------------------------------------------- #
_TRANSPOSE_SOURCE = """
void transpose_kernel(double *A, double *B, int N, int M) {
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < M; j++) {
      B[j * N + i] = A[i * M + j];
    }
  }
}
"""

TRANSPOSE = KernelDefinition(
    application="Transpose",
    kernel_name="transpose",
    domain="Linear Algebra",
    source=_TRANSPOSE_SOURCE,
    size_parameters=("N", "M"),
    arrays=(
        ArraySpec("A", 8, "N*M", "to"),
        ArraySpec("B", 8, "N*M", "from"),
    ),
    collapsible_loops=2,
    default_sizes={"N": 2048, "M": 2048},
    description="Out-of-place matrix transpose (pure data movement).",
)

TRANSPOSE_APP = ApplicationSpec("Transpose", "Linear Algebra", (TRANSPOSE,))

# --------------------------------------------------------------------- #
# Gauss-Seidel method (red/black sweep so the loop nest parallelizes)
# --------------------------------------------------------------------- #
_GAUSS_SEIDEL_SOURCE = """
void gauss_seidel_kernel(double *grid, double *rhs, int N, int M) {
  for (int i = 1; i < N; i++) {
    for (int j = 1; j < M; j++) {
      double up = grid[(i - 1) * M + j];
      double down = grid[(i + 1) * M + j];
      double left = grid[i * M + j - 1];
      double right = grid[i * M + j + 1];
      grid[i * M + j] = 0.25 * (up + down + left + right - rhs[i * M + j]);
    }
  }
}
"""

GAUSS_SEIDEL = KernelDefinition(
    application="Gauss",
    kernel_name="gauss_seidel",
    domain="Linear Algebra",
    source=_GAUSS_SEIDEL_SOURCE,
    size_parameters=("N", "M"),
    arrays=(
        ArraySpec("grid", 8, "(N+2)*(M+2)", "tofrom"),
        ArraySpec("rhs", 8, "(N+2)*(M+2)", "to"),
    ),
    collapsible_loops=2,
    default_sizes={"N": 1024, "M": 1024},
    description="Gauss-Seidel relaxation sweep over a 2-D grid.",
)

GAUSS_SEIDEL_APP = ApplicationSpec("Gauss", "Linear Algebra", (GAUSS_SEIDEL,))
