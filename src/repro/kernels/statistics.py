"""Statistics / probability-theory benchmark kernels (Table I).

Correlation Coefficient (1 kernel) and Covariance (2 kernels), modelled on
the PolyBench ``correlation`` / ``covariance`` benchmarks the paper's
application list points at.
"""

from __future__ import annotations

from .base import ApplicationSpec, ArraySpec, KernelDefinition

# --------------------------------------------------------------------- #
# Correlation coefficient: one kernel computing the correlation matrix
# from mean/stddev-normalized data.
# --------------------------------------------------------------------- #
_CORRELATION_SOURCE = """
void correlation_kernel(double *data, double *mean, double *stddev,
                        double *corr, int N, int M) {
  for (int i = 0; i < M; i++) {
    for (int j = 0; j < M; j++) {
      double acc = 0.0;
      for (int k = 0; k < N; k++) {
        double a = (data[k * M + i] - mean[i]) / stddev[i];
        double b = (data[k * M + j] - mean[j]) / stddev[j];
        acc += a * b;
      }
      corr[i * M + j] = acc / (N - 1);
    }
  }
}
"""

CORRELATION = KernelDefinition(
    application="Correlation",
    kernel_name="correlation",
    domain="Statistics",
    source=_CORRELATION_SOURCE,
    size_parameters=("N", "M"),
    arrays=(
        ArraySpec("data", 8, "N*M", "to"),
        ArraySpec("mean", 8, "M", "to"),
        ArraySpec("stddev", 8, "M", "to"),
        ArraySpec("corr", 8, "M*M", "from"),
    ),
    collapsible_loops=2,
    default_sizes={"N": 1024, "M": 256},
    description="Pearson correlation matrix over M features of N samples.",
)

CORRELATION_APP = ApplicationSpec("Correlation", "Statistics", (CORRELATION,))

# --------------------------------------------------------------------- #
# Covariance: two kernels — column means, then the covariance matrix.
# --------------------------------------------------------------------- #
_COVARIANCE_MEAN_SOURCE = """
void covariance_mean_kernel(double *data, double *mean, int N, int M) {
  for (int j = 0; j < M; j++) {
    double acc = 0.0;
    for (int k = 0; k < N; k++) {
      acc += data[k * M + j];
    }
    mean[j] = acc / N;
  }
}
"""

_COVARIANCE_MATRIX_SOURCE = """
void covariance_matrix_kernel(double *data, double *mean, double *cov,
                              int N, int M) {
  for (int i = 0; i < M; i++) {
    for (int j = 0; j < M; j++) {
      double acc = 0.0;
      for (int k = 0; k < N; k++) {
        acc += (data[k * M + i] - mean[i]) * (data[k * M + j] - mean[j]);
      }
      cov[i * M + j] = acc / (N - 1);
    }
  }
}
"""

COVARIANCE_MEAN = KernelDefinition(
    application="Covariance",
    kernel_name="covariance_mean",
    domain="Probability Theory",
    source=_COVARIANCE_MEAN_SOURCE,
    size_parameters=("N", "M"),
    arrays=(
        ArraySpec("data", 8, "N*M", "to"),
        ArraySpec("mean", 8, "M", "from"),
    ),
    collapsible_loops=1,
    default_sizes={"N": 4096, "M": 512},
    description="Column means of the data matrix (reduction per column).",
)

COVARIANCE_MATRIX = KernelDefinition(
    application="Covariance",
    kernel_name="covariance_matrix",
    domain="Probability Theory",
    source=_COVARIANCE_MATRIX_SOURCE,
    size_parameters=("N", "M"),
    arrays=(
        ArraySpec("data", 8, "N*M", "to"),
        ArraySpec("mean", 8, "M", "to"),
        ArraySpec("cov", 8, "M*M", "from"),
    ),
    collapsible_loops=2,
    default_sizes={"N": 1024, "M": 256},
    description="Covariance matrix of mean-centred data.",
)

COVARIANCE_APP = ApplicationSpec(
    "Covariance", "Probability Theory", (COVARIANCE_MEAN, COVARIANCE_MATRIX))
