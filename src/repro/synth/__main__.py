"""Replay generated property-test cases from their seeds.

Usage::

    python -m repro.synth                      # list scenarios and case counts
    python -m repro.synth <scenario> <seed>    # replay exactly one case
    python -m repro.synth <scenario>           # sweep one scenario's corpus

A failing harness run prints this command with the offending seed filled in.
"""

from __future__ import annotations

import sys

from .harness import SCENARIOS, cases_for, corpus_total_cases, reproduce, run_cases


def _list_scenarios() -> int:
    width = max(len(name) for name in SCENARIOS)
    print(f"{corpus_total_cases()} cases across {len(SCENARIOS)} scenarios:")
    for name, spec in SCENARIOS.items():
        print(f"  {name:<{width}}  {cases_for(name):>5} cases  [{spec.layer}]")
    print(__doc__.strip().splitlines()[-1].strip())
    return 0


def main(argv) -> int:
    if not argv:
        return _list_scenarios()
    name = argv[0]
    if name in ("-h", "--help"):
        print(__doc__.strip())
        return 0
    if name not in SCENARIOS:
        print(f"unknown scenario {name!r}; known scenarios:", file=sys.stderr)
        for known in SCENARIOS:
            print(f"  {known}", file=sys.stderr)
        return 2
    if len(argv) > 1:
        seed = int(argv[1])
        reproduce(name, seed)
        print(f"scenario {name!r} seed {seed}: OK")
        return 0
    report = run_cases(name)
    print(f"scenario {name!r}: {report.cases} cases OK")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main(sys.argv[1:]))
