"""``repro.synth`` — synthetic scenario corpus + differential harness.

Seeded generators for synthetic C/OpenMP kernels
(:mod:`~repro.synth.source_gen`) and random ParaGraph / encoded-graph
instances (:mod:`~repro.synth.graph_gen`), plus a differential
property-testing harness (:mod:`~repro.synth.harness`) that sweeps
cross-layer invariants — parser round trips, graph validity, vectorized-vs-
reference GNN parity, float32 serving bounds, config round trips — over
hundreds of seeded cases.  Every failure is reproducible from its seed::

    PYTHONPATH=src python -m repro.synth <scenario> <seed>

``tests/test_properties_*.py`` drive the harness in tier 1;
``REPRO_SYNTH_CASES`` scales the corpus up for nightly runs (see
``TESTING.md``).
"""

from .corpus import CorpusSpec, ScenarioCorpus, build_corpus
from .graph_gen import (
    GraphGenConfig,
    random_batch,
    random_encoded_graph,
    random_paragraph,
)
from .harness import (
    DEFAULT_TOTAL_CASES,
    SCENARIOS,
    HarnessReport,
    ScenarioSpec,
    canonical_render,
    cases_for,
    corpus_total_cases,
    reproduce,
    run_cases,
    scenario_names,
    seeds_for,
    structural_dump,
)
from .source_gen import (
    DefectKernel,
    GeneratedKernel,
    PlantedDefect,
    SourceGenConfig,
    SourceGenerator,
    generate_defect_kernel,
    generate_kernel,
)

__all__ = [
    "CorpusSpec",
    "DEFAULT_TOTAL_CASES",
    "DefectKernel",
    "GeneratedKernel",
    "PlantedDefect",
    "GraphGenConfig",
    "HarnessReport",
    "SCENARIOS",
    "ScenarioCorpus",
    "ScenarioSpec",
    "SourceGenConfig",
    "SourceGenerator",
    "build_corpus",
    "canonical_render",
    "cases_for",
    "corpus_total_cases",
    "generate_defect_kernel",
    "generate_kernel",
    "random_batch",
    "random_encoded_graph",
    "random_paragraph",
    "reproduce",
    "run_cases",
    "scenario_names",
    "seeds_for",
    "structural_dump",
]
