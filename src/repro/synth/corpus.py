"""Corpus assembly: turn seeded generators into serving-shaped workloads.

While :mod:`repro.synth.harness` sweeps *invariants* over seeds, this module
assembles *workloads*: lists of :class:`~repro.api.stages.SourceSpec` built
from generated kernels, with execution contexts (problem sizes, team/thread
counts) sampled from the same seed.  The serving property tests and the
``benchmarks/test_synth_corpus_soak.py`` soak benchmark both draw their
request streams from here, so "handles whatever the generator can imagine"
and "survives sustained predict_batch traffic" are exercised by one corpus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .source_gen import GeneratedKernel, SourceGenConfig, generate_kernel

__all__ = ["CorpusSpec", "ScenarioCorpus", "build_corpus"]


@dataclass(frozen=True)
class CorpusSpec:
    """One serving request: a generated kernel plus its execution context."""

    kernel: GeneratedKernel
    sizes: dict
    num_teams: int
    num_threads: int

    @property
    def source(self) -> str:
        """Duck-types as a source carrier for ``SourceSpec.of``."""
        return self.kernel.source

    @property
    def name(self) -> str:
        return self.kernel.name

    def to_source_spec(self):
        """The full serving request, execution context included."""
        from ..api.stages import SourceSpec
        return SourceSpec(source=self.kernel.source, sizes=dict(self.sizes),
                          num_teams=self.num_teams,
                          num_threads=self.num_threads, name=self.kernel.name)


class ScenarioCorpus:
    """A seeded, regenerable list of serving requests."""

    def __init__(self, specs: Sequence[CorpusSpec], seed: int) -> None:
        self.specs = list(specs)
        self.seed = seed

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def sources(self) -> List:
        """The requests as :class:`~repro.api.stages.SourceSpec` objects, so
        each kernel travels with its own sampled execution context."""
        return [spec.to_source_spec() for spec in self.specs]

    def repeated(self, times: int) -> List:
        """The corpus tiled *times* over — a warm-cache traffic pattern."""
        requests = self.sources()
        return [request for _ in range(max(times, 0)) for request in requests]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ScenarioCorpus(seed={self.seed}, kernels={len(self.specs)})"


def build_corpus(size: int, seed: int = 0,
                 config: Optional[SourceGenConfig] = None) -> ScenarioCorpus:
    """Generate *size* kernels with sampled execution contexts.

    Kernel ``k`` of corpus ``(size, seed)`` is always identical across runs:
    its generator seed is derived from *seed* and ``k`` alone.
    """
    rng = np.random.default_rng(seed)
    specs: List[CorpusSpec] = []
    for index in range(size):
        kernel = generate_kernel(seed * 100_003 + index, config)
        sizes = {name: int(rng.choice([16, 64, 256, 1024]))
                 for name in kernel.size_params}
        specs.append(CorpusSpec(
            kernel=kernel,
            sizes=sizes,
            num_teams=int(rng.choice([1, 8, 64, 128])),
            num_threads=int(rng.choice([1, 8, 64])),
        ))
    return ScenarioCorpus(specs, seed)
