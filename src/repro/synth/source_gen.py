"""Seeded generator of synthetic C/OpenMP kernels.

Every test in the repository up to now ran on a handful of hand-written C
snippets, so the parser → ParaGraph → GNN chain was only exercised on a tiny
fixed slice of its input space.  This module generates *valid* kernels —
nested loops, branches, array accesses, scalar recurrences and OpenMP pragma
variants with realistic clause combinations — from a single integer seed, so
a failing case is always reproducible by its seed alone.

The generator is deliberately grammar-directed rather than mutation-based:
it only emits constructs the frontend supports (``for``/``while``/``do``,
``if``/``else``, declarations, the C expression grammar, ``#pragma omp``
directives), but randomizes their shape, nesting, spelling and layout —
including comments and erratic whitespace, which the lexer must discard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

__all__ = [
    "DefectKernel",
    "GeneratedKernel",
    "PlantedDefect",
    "SourceGenConfig",
    "SourceGenerator",
    "generate_defect_kernel",
    "generate_kernel",
]


@dataclass(frozen=True)
class SourceGenConfig:
    """Knobs of the kernel generator (all distributions are seed-driven)."""

    #: maximum loop-nest depth (a chain of immediately nested ``for`` loops).
    max_loop_depth: int = 3
    #: maximum number of statements per block.
    max_block_statements: int = 4
    #: maximum expression-tree depth.
    max_expr_depth: int = 3
    #: probability that a loop nest gets an OpenMP pragma.
    pragma_probability: float = 0.7
    #: probability of sprinkling a comment before a statement.
    comment_probability: float = 0.15
    #: probability that indentation/newlines are scrambled (layout fuzzing).
    scramble_layout_probability: float = 0.2
    #: number of double-array parameters.
    num_arrays: Tuple[int, int] = (1, 3)
    #: number of local scalar declarations at function scope.
    num_scalars: Tuple[int, int] = (1, 3)

    def __post_init__(self) -> None:
        if self.max_loop_depth < 1:
            raise ValueError("max_loop_depth must be >= 1")
        if self.max_block_statements < 1:
            raise ValueError("max_block_statements must be >= 1")
        if not 0.0 <= self.pragma_probability <= 1.0:
            raise ValueError("pragma_probability must be in [0, 1]")


@dataclass(frozen=True)
class GeneratedKernel:
    """One synthetic kernel: the source text plus its generation metadata."""

    seed: int
    name: str
    source: str
    #: loop-bound size parameters of the signature (for ``SourceSpec.sizes``).
    size_params: Tuple[str, ...]
    num_loops: int = 0
    num_pragmas: int = 0
    max_depth: int = 0
    #: every local declaration the generator emitted, in emission order, as
    #: ``(name, written_before_read)`` — ground truth for the uninitialized-
    #: read analysis (the fuzz generator initializes everything it declares).
    var_decls: Tuple[Tuple[str, bool], ...] = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"GeneratedKernel(seed={self.seed}, name={self.name!r}, "
                f"loops={self.num_loops}, pragmas={self.num_pragmas})")


#: OpenMP directive skeletons paired with the clause pools that may legally
#: decorate them.  ``collapse`` is only emitted when the generator knows the
#: loop nest below is perfectly nested at least that deep.
_LOOP_DIRECTIVES: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("omp parallel for",
     ("num_threads", "schedule_static", "schedule_dynamic", "reduction",
      "private", "firstprivate", "collapse")),
    ("omp target teams distribute parallel for",
     ("num_teams", "thread_limit", "map", "collapse", "reduction")),
    ("omp teams distribute parallel for",
     ("num_teams", "thread_limit", "collapse")),
    ("omp for", ("schedule_static", "reduction", "private", "nowait")),
    ("omp simd", ("safelen", "simdlen")),
    ("omp parallel", ("num_threads", "private")),
    ("omp target", ("map",)),
)


class _Scope:
    """Names visible to the expression generator, by rough type class."""

    def __init__(self, ints: List[str], doubles: List[str], arrays: List[str]):
        self.ints = list(ints)
        self.doubles = list(doubles)
        self.arrays = list(arrays)


class SourceGenerator:
    """Grammar-directed random kernel emitter.  One instance per kernel."""

    def __init__(self, seed: int, config: Optional[SourceGenConfig] = None) -> None:
        self.seed = int(seed)
        self.config = config or SourceGenConfig()
        self.rng = np.random.default_rng(self.seed)
        self._loop_counter = 0
        self.num_loops = 0
        self.num_pragmas = 0
        self.max_depth = 0
        #: (name, written-before-read) per emitted local declaration.
        self.var_decls: List[Tuple[str, bool]] = []

    # ------------------------------------------------------------------ #
    # small helpers
    # ------------------------------------------------------------------ #
    def _chance(self, probability: float) -> bool:
        return bool(self.rng.random() < probability)

    def _pick(self, options):
        return options[int(self.rng.integers(0, len(options)))]

    def _int_between(self, bounds: Tuple[int, int]) -> int:
        low, high = bounds
        return int(self.rng.integers(low, high + 1))

    # ------------------------------------------------------------------ #
    # expressions
    # ------------------------------------------------------------------ #
    def _index_expr(self, scope: _Scope) -> str:
        """An affine index expression over in-scope loop counters."""
        if not scope.ints:
            return str(int(self.rng.integers(0, 8)))
        base = self._pick(scope.ints)
        roll = self.rng.random()
        if roll < 0.5 or len(scope.ints) == 1:
            return base
        if roll < 0.8:
            other = self._pick(scope.ints)
            stride = int(self.rng.integers(2, 9))
            return f"{base} * {stride} + {other}"
        offset = int(self.rng.integers(1, 4))
        return f"{base} + {offset}"

    def _value_expr(self, scope: _Scope, depth: int) -> str:
        """A side-effect-free arithmetic expression."""
        terminal = depth >= self.config.max_expr_depth or self._chance(0.35)
        if terminal:
            roll = self.rng.random()
            if roll < 0.3 and scope.arrays:
                return f"{self._pick(scope.arrays)}[{self._index_expr(scope)}]"
            if roll < 0.55 and scope.doubles:
                return self._pick(scope.doubles)
            if roll < 0.75 and scope.ints:
                return self._pick(scope.ints)
            if roll < 0.87:
                return str(int(self.rng.integers(1, 100)))
            return f"{self.rng.integers(1, 9)}.{self.rng.integers(0, 10)}"
        roll = self.rng.random()
        lhs = self._value_expr(scope, depth + 1)
        rhs = self._value_expr(scope, depth + 1)
        if roll < 0.62:
            op = self._pick(["+", "-", "*"])
            return f"{lhs} {op} {rhs}"
        if roll < 0.72:
            # constant non-zero denominator keeps the kernel well defined
            return f"{lhs} / {int(self.rng.integers(2, 17))}"
        if roll < 0.82:
            return f"({lhs})"
        if roll < 0.9:
            return f"-{self._wrap_unary(lhs)}"
        call = self._pick(["sqrt", "fabs", "exp"])
        return f"{call}({lhs})"

    @staticmethod
    def _wrap_unary(expr: str) -> str:
        return expr if expr.replace("_", "").isalnum() else f"({expr})"

    def _condition_expr(self, scope: _Scope) -> str:
        lhs = self._value_expr(scope, self.config.max_expr_depth - 1)
        op = self._pick(["<", ">", "<=", ">=", "==", "!="])
        rhs = self._value_expr(scope, self.config.max_expr_depth - 1)
        if self._chance(0.2):
            extra = f"{self._pick(scope.ints) if scope.ints else '1'} > 0"
            joiner = self._pick(["&&", "||"])
            return f"{lhs} {op} {rhs} {joiner} {extra}"
        return f"{lhs} {op} {rhs}"

    # ------------------------------------------------------------------ #
    # statements
    # ------------------------------------------------------------------ #
    def _assignment(self, scope: _Scope) -> str:
        value = self._value_expr(scope, 0)
        if scope.arrays and self._chance(0.55):
            target = f"{self._pick(scope.arrays)}[{self._index_expr(scope)}]"
        elif scope.doubles:
            target = self._pick(scope.doubles)
        else:
            target = self._pick(scope.ints) if scope.ints else "n"
        op = self._pick(["=", "+=", "-=", "*=", "=", "="])
        return f"{target} {op} {value};"

    def _simple_statement(self, scope: _Scope) -> str:
        roll = self.rng.random()
        if roll < 0.7:
            return self._assignment(scope)
        if roll < 0.8 and scope.ints:
            counter = self._pick(scope.ints)
            return f"{counter}{self._pick(['++', '--'])};"
        if roll < 0.9 and scope.doubles:
            name = f"t{int(self.rng.integers(0, 100))}"
            self.var_decls.append((name, True))
            return f"double {name} = {self._value_expr(scope, 1)};"
        return self._assignment(scope)

    def _if_statement(self, scope: _Scope, depth: int, indent: str) -> List[str]:
        lines = [f"{indent}if ({self._condition_expr(scope)}) {{"]
        lines += self._block(scope, depth + 1, indent + "  ", allow_loops=False)
        if self._chance(0.5):
            lines.append(f"{indent}}} else {{")
            lines += self._block(scope, depth + 1, indent + "  ",
                                 allow_loops=False)
        lines.append(f"{indent}}}")
        return lines

    def _while_statement(self, scope: _Scope, depth: int, indent: str) -> List[str]:
        counter = f"w{self._loop_counter}"
        self._loop_counter += 1
        bound = int(self.rng.integers(2, 12))
        self.var_decls.append((counter, True))
        lines = [f"{indent}int {counter} = 0;"]
        inner = _Scope(scope.ints + [counter], scope.doubles, scope.arrays)
        if self._chance(0.5):
            lines.append(f"{indent}while ({counter} < {bound}) {{")
            lines += self._block(inner, depth + 1, indent + "  ",
                                 allow_loops=False)
            lines.append(f"{indent}  {counter}++;")
            lines.append(f"{indent}}}")
        else:
            lines.append(f"{indent}do {{")
            lines += self._block(inner, depth + 1, indent + "  ",
                                 allow_loops=False)
            lines.append(f"{indent}  {counter}++;")
            lines.append(f"{indent}}} while ({counter} < {bound});")
        self.num_loops += 1
        return lines

    def _pragma_lines(self, nest_depth: int, scope: _Scope, indent: str) -> List[str]:
        directive, clause_pool = self._pick(_LOOP_DIRECTIVES)
        clauses: List[str] = []
        for kind in clause_pool:
            if not self._chance(0.4):
                continue
            if kind == "num_threads":
                clauses.append(f"num_threads({self._pick([2, 4, 8, 64])})")
            elif kind == "num_teams":
                clauses.append(f"num_teams({self._pick([2, 8, 64, 128])})")
            elif kind == "thread_limit":
                clauses.append(f"thread_limit({self._pick([32, 64, 256])})")
            elif kind == "schedule_static":
                clauses.append("schedule(static)")
            elif kind == "schedule_dynamic":
                clauses.append(f"schedule(dynamic, {self._pick([1, 4, 16])})")
            elif kind == "reduction" and scope.doubles:
                clauses.append(
                    f"reduction({self._pick(['+', '*', 'max'])}:"
                    f"{self._pick(scope.doubles)})")
            elif kind == "private" and scope.ints:
                clauses.append(f"private({self._pick(scope.ints)})")
            elif kind == "firstprivate" and scope.doubles:
                clauses.append(f"firstprivate({self._pick(scope.doubles)})")
            elif kind == "collapse" and nest_depth >= 2:
                clauses.append(f"collapse({int(self.rng.integers(2, nest_depth + 1))})")
            elif kind == "map" and scope.arrays:
                array = self._pick(scope.arrays)
                clauses.append(f"map(tofrom: {array}[0:n])")
            elif kind == "safelen":
                clauses.append(f"safelen({self._pick([4, 8, 16])})")
            elif kind == "simdlen":
                clauses.append(f"simdlen({self._pick([4, 8])})")
            elif kind == "nowait":
                clauses.append("nowait")
        self.num_pragmas += 1
        text = " ".join(["#pragma", directive] + clauses)
        return [f"{indent}{text}"]

    def _for_nest(self, scope: _Scope, depth: int, indent: str) -> List[str]:
        """A perfectly nested ``for`` chain of random depth with a random body."""
        nest_depth = int(self.rng.integers(
            1, self.config.max_loop_depth - depth + 1))
        lines: List[str] = []
        if self._chance(self.config.pragma_probability):
            lines += self._pragma_lines(nest_depth, scope, indent)
        inner = scope
        closing: List[str] = []
        for level in range(nest_depth):
            counter = f"i{self._loop_counter}"
            self._loop_counter += 1
            self.var_decls.append((counter, True))
            bound = self._pick(["n", "m", str(int(self.rng.integers(4, 65)))])
            step = self._pick(["++", "++", "++", " += 2"])
            header_indent = indent + "  " * level
            lines.append(f"{header_indent}for (int {counter} = 0; "
                         f"{counter} < {bound}; {counter}{step}) {{")
            closing.append(f"{header_indent}}}")
            inner = _Scope(inner.ints + [counter], inner.doubles, inner.arrays)
            self.num_loops += 1
        body_indent = indent + "  " * nest_depth
        lines += self._block(inner, depth + nest_depth, body_indent,
                             allow_loops=depth + nest_depth < self.config.max_loop_depth)
        self.max_depth = max(self.max_depth, depth + nest_depth)
        lines += reversed(closing)
        return lines

    def _block(self, scope: _Scope, depth: int, indent: str,
               allow_loops: bool = True) -> List[str]:
        lines: List[str] = []
        count = int(self.rng.integers(1, self.config.max_block_statements + 1))
        # branches stop nesting two levels past the loop budget so the
        # recursion always bottoms out in simple statements
        can_branch = depth < self.config.max_loop_depth + 2
        for _ in range(count):
            if self._chance(self.config.comment_probability):
                lines.append(f"{indent}// {self._pick(['hot loop', 'scratch', 'accumulate', 'note'])}")
            roll = self.rng.random()
            if allow_loops and roll < 0.45 and depth < self.config.max_loop_depth:
                lines += self._for_nest(scope, depth, indent)
            elif roll < 0.6 and can_branch:
                lines += self._if_statement(scope, depth, indent)
            elif allow_loops and roll < 0.7 and depth < self.config.max_loop_depth:
                lines += self._while_statement(scope, depth, indent)
            else:
                lines.append(f"{indent}{self._simple_statement(scope)}")
        return lines

    # ------------------------------------------------------------------ #
    def generate(self) -> GeneratedKernel:
        """Emit one kernel as a full translation unit."""
        name = f"synth_kernel_{self.seed}"
        num_arrays = self._int_between(self.config.num_arrays)
        num_scalars = self._int_between(self.config.num_scalars)
        arrays = [f"A{index}" for index in range(num_arrays)]
        size_params = ("n", "m")
        params = ["int n", "int m"] + [f"double *{array}" for array in arrays]

        scope = _Scope(ints=["n", "m"], doubles=[], arrays=arrays)
        body: List[str] = []
        for index in range(num_scalars):
            scalar = f"s{index}"
            scope.doubles.append(scalar)
            init = f"{self.rng.integers(0, 9)}.{self.rng.integers(0, 10)}"
            self.var_decls.append((scalar, True))
            body.append(f"  double {scalar} = {init};")
        body += self._block(scope, depth=0, indent="  ")
        if scope.doubles and self._chance(0.6):
            body.append(f"  {self._pick(arrays)}[0] = {self._pick(scope.doubles)};")

        lines = [f"void {name}({', '.join(params)}) {{"] + body + ["}"]
        source = "\n".join(lines) + "\n"
        if self._chance(self.config.scramble_layout_probability):
            source = self._scramble_layout(source)
        return GeneratedKernel(
            seed=self.seed,
            name=name,
            source=source,
            size_params=size_params,
            num_loops=self.num_loops,
            num_pragmas=self.num_pragmas,
            max_depth=self.max_depth,
            var_decls=tuple(self.var_decls),
        )

    def _scramble_layout(self, source: str) -> str:
        """Fuzz whitespace without changing the token stream.

        Pragma lines must stay on their own physical line, so only non-pragma
        lines get randomly re-indented, blank-line-padded or tab-indented.
        """
        lines: List[str] = []
        for line in source.splitlines():
            if line.lstrip().startswith("#"):
                lines.append(line.lstrip())
                continue
            roll = self.rng.random()
            if roll < 0.3:
                lines.append("\t" + line.strip())
            elif roll < 0.5:
                lines.append("    " + line)
            elif roll < 0.6:
                lines.append(line)
                lines.append("")
            else:
                lines.append(line)
        return "\n".join(lines) + "\n"


def generate_kernel(seed: int, config: Optional[SourceGenConfig] = None) -> GeneratedKernel:
    """Generate one synthetic kernel from *seed* (deterministic)."""
    return SourceGenerator(seed, config).generate()


# --------------------------------------------------------------------- #
# planted-defect kernels (ground truth for the repro.analysis checkers)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class PlantedDefect:
    """Ground truth for one injected defect: which checker must fire where."""

    checker: str        # registered checker name expected to report
    variable: str       # the variable/array the finding must name
    line: int           # 1-based source line the issue must anchor to
    detail: str = ""    # free-text note on the injected shape


@dataclass(frozen=True)
class DefectKernel:
    """A kernel with (or, for the control, without) injected defects."""

    seed: int
    name: str
    source: str
    clean: bool
    defects: Tuple[PlantedDefect, ...] = ()
    var_decls: Tuple[Tuple[str, bool], ...] = ()


class _DefectEmitter:
    """Builds the defect kernel line by line, recording issue lines.

    Unlike :class:`SourceGenerator` this skeleton is clean by construction:
    every variable is initialized, read, and indexed in bounds — so the
    ``clean=True`` control must produce an empty report, and with
    ``clean=False`` exactly the five injected lines may be reported.  Both
    variants draw the same random choices, so the clean control is the same
    kernel shape with the defects repaired.
    """

    def __init__(self, seed: int, clean: bool) -> None:
        self.seed = int(seed)
        self.clean = clean
        self.rng = np.random.default_rng([int(seed), 0xDEFEC7])
        self.lines: List[str] = []
        self.defects: List[PlantedDefect] = []
        self.var_decls: List[Tuple[str, bool]] = []

    # ------------------------------------------------------------------ #
    def emit(self, text: str) -> None:
        self.lines.append(text)

    def plant(self, checker: str, variable: str, detail: str = "") -> None:
        """Record that *checker* must report *variable* on the NEXT line."""
        self.defects.append(PlantedDefect(checker, variable,
                                          len(self.lines) + 1, detail))

    def _suffix(self) -> int:
        return int(self.rng.integers(0, 100))

    # ------------------------------------------------------------------ #
    def _uninit_block(self) -> None:
        u = f"u{self._suffix()}"
        factor = f"{int(self.rng.integers(2, 9))}.5"
        if self.clean:
            self.emit(f"  double {u} = {factor};")
            self.var_decls.append((u, True))
        else:
            self.emit(f"  double {u};")
            self.var_decls.append((u, False))
        if not self.clean:
            self.plant("uninit-read", u, "read of never-written scalar")
        self.emit(f"  out[0] = {u} * 2.0;")

    def _dead_store_block(self) -> None:
        d = f"d{self._suffix()}"
        c1 = int(self.rng.integers(1, 9))
        c2 = int(self.rng.integers(1, 9))
        unused_variant = bool(self.rng.random() < 0.5)
        if self.clean:
            self.emit(f"  double {d} = {c1}.0;")
            self.var_decls.append((d, True))
            self.emit(f"  out[1] = {d} + {c2}.0;")
        elif unused_variant:
            self.plant("dead-store", d, "declared but never used")
            self.emit(f"  double {d};")
            self.var_decls.append((d, False))
        else:
            self.emit(f"  double {d} = 0.0;")
            self.var_decls.append((d, True))
            self.emit(f"  {d} = {c1}.0;")
            self.plant("dead-store", d, "stores never read")
            self.emit(f"  {d} = {c2}.0;")

    def _bounds_block(self) -> None:
        buf = f"b{self._suffix()}"
        extent = int(self.rng.integers(4, 12))
        counter = f"bi{self._suffix()}"
        constant_variant = bool(self.rng.random() < 0.5)
        self.emit(f"  double {buf}[{extent}];")
        self.var_decls.append((buf, True))
        if constant_variant:
            self.emit(f"  for (int {counter} = 0; {counter} < {extent}; "
                      f"{counter}++) {{")
            self.emit(f"    {buf}[{counter}] = in[{counter}] + 1.0;")
            self.emit("  }")
            if self.clean:
                self.emit(f"  {buf}[{extent - 1}] = in[0];")
            else:
                self.plant("array-bounds", buf, "constant index past extent")
                self.emit(f"  {buf}[{extent + int(self.rng.integers(0, 3))}]"
                          f" = in[0];")
        else:
            bound_op = "<" if self.clean else "<="
            self.emit(f"  for (int {counter} = 0; {counter} {bound_op} "
                      f"{extent}; {counter}++) {{")
            if not self.clean:
                self.plant("array-bounds", buf, "off-by-one loop bound")
            self.emit(f"    {buf}[{counter}] = in[{counter}] + 1.0;")
            self.emit("  }")
        self.emit(f"  out[2] = {buf}[0] + {buf}[{extent - 1}];")

    def _race_block(self) -> None:
        acc = f"r{self._suffix()}"
        counter = f"ri{self._suffix()}"
        scalar_variant = bool(self.rng.random() < 0.5)
        self.emit(f"  double {acc} = 0.0;")
        self.var_decls.append((acc, True))
        if scalar_variant:
            clause = f" reduction(+:{acc})" if self.clean else ""
            self.emit(f"  #pragma omp parallel for{clause}")
            self.emit(f"  for (int {counter} = 0; {counter} < n; "
                      f"{counter}++) {{")
            if not self.clean:
                self.plant("omp-race", acc, "shared accumulator update")
            self.emit(f"    {acc} += in[{counter}];")
            self.emit("  }")
        else:
            self.emit("  #pragma omp parallel for")
            self.emit(f"  for (int {counter} = 0; {counter} < n; "
                      f"{counter}++) {{")
            if self.clean:
                self.emit(f"    out[{counter}] = in[{counter}] + {acc};")
            else:
                self.plant("omp-race", "out",
                           "element write independent of the loop counter")
                self.emit(f"    out[0] = out[0] + in[{counter}];")
            self.emit("  }")
        self.emit(f"  out[3] = {acc};")

    def _dep_block(self) -> None:
        counter = f"di{self._suffix()}"
        self.emit(f"  for (int {counter} = 1; {counter} < n; {counter}++) {{")
        if self.clean:
            self.emit(f"    out[{counter}] = in[{counter} - 1] + "
                      f"in[{counter}];")
        else:
            self.plant("loop-carried-dep", "out", "first-order recurrence")
            self.emit(f"    out[{counter}] = out[{counter} - 1] + "
                      f"in[{counter}];")
        self.emit("  }")

    # ------------------------------------------------------------------ #
    def generate(self) -> DefectKernel:
        name = f"defect_kernel_{self.seed}"
        self.emit(f"void {name}(int n, double *out, double *in) {{")
        blocks = [self._uninit_block, self._dead_store_block,
                  self._bounds_block, self._race_block, self._dep_block]
        for index in self.rng.permutation(len(blocks)):
            blocks[int(index)]()
        self.emit("}")
        return DefectKernel(
            seed=self.seed,
            name=name,
            source="\n".join(self.lines) + "\n",
            clean=self.clean,
            defects=tuple(self.defects),
            var_decls=tuple(self.var_decls),
        )


def generate_defect_kernel(seed: int, clean: bool = False) -> DefectKernel:
    """Generate a kernel with one planted defect per checker class.

    With ``clean=True`` the same kernel shape is emitted with every defect
    repaired — the zero-false-positive control of the planted-defect
    scenario.
    """
    return _DefectEmitter(seed, clean).generate()
