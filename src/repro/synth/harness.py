"""Differential property-testing harness over the synthetic corpus.

The harness is a registry of named *scenarios*.  Each scenario is one
cross-layer invariant checked over many seeded generated cases:

* ``lexer-roundtrip`` — token-stream round trip: canonically re-rendering
  the tokens of a generated kernel and re-lexing yields the same stream,
* ``parser-roundtrip`` — parsing is layout-insensitive and stable: the
  original and canonically re-rendered sources parse to structurally equal
  ASTs, and re-parsing the same text reproduces the dump bit for bit,
* ``paragraph-invariants`` — every generated kernel builds a ParaGraph that
  validates, with the edge-count/vocabulary invariants the paper implies,
* ``graph-validity`` — the random-graph generator only emits valid graphs
  and block-diagonal batches,
* ``gnn-forward-parity`` / ``gnn-gradient-parity`` — the vectorized RGAT /
  RGCN kernels (including the fused ``no_grad`` path) match the seed
  ``forward_reference`` implementations on random shapes,
* ``float32-serving-bounds`` — float32 serving stays within tolerance of
  the float64 training-parity forward,
* ``pooling-paths`` — the sorted-batch ``reduceat`` pooling shortcut, the
  autodiff fallback and a NumPy oracle agree,
* ``config-roundtrip`` — random valid configs survive
  ``to_dict``/``from_dict``/JSON round trips unchanged,
* ``store-roundtrip`` — random model sets (config × conv × readout ×
  encoder flags) written as ``repro.store`` artifacts verify cleanly and
  load back with bit-identical state dicts, scaler state and float64
  predictions,
* ``serving-context-isolation`` — seeded concurrent workloads: threads
  holding different :class:`repro.nn.InferenceContext` configurations
  (float32 serving, float64 parity, grad-recording training) run
  simultaneously on one shared model and none of the dtype / no-grad /
  parameter-view state leaks across threads,
* ``serve-under-faults`` — the reliability contract: under seeded fault
  injection (transient forward failures, scheduler/worker delays,
  admission faults, tight deadlines, a bounded queue) every request
  either returns a float64 result **bit-identical** to its fault-free
  reference or raises a typed reliability error — never a hang, never
  silent corruption,
* ``packed-forward-parity`` — the packed block-diagonal multi-graph
  forward (:mod:`repro.gnn.packing`) is float64 bit-identical to
  predicting each graph alone, for random models, batch compositions and
  packing orders.

Every failure reports the integer seed of the offending case;
``python -m repro.synth <scenario> <seed>`` replays exactly that case.

Environment knobs (see TESTING.md):

* ``REPRO_SYNTH_CASES`` — target *total* number of corpus cases; scenario
  counts scale proportionally (default ≈ :data:`DEFAULT_TOTAL_CASES`).
* ``REPRO_SYNTH_SEED`` — base-seed salt; changing it re-rolls the corpus.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..clang.dumper import dump
from ..clang.lexer import Token, TokenKind, tokenize
from ..clang.parser import parse_source
from ..clang.semantics import analyze
from ..clang.traversal import preorder, terminals_in_token_order
from ..paragraph.builder import build_paragraph
from ..paragraph.edges import EdgeType, NUM_EDGE_TYPES
from ..paragraph.encoders import GraphEncoder
from ..paragraph.variants import GraphVariant
from ..paragraph.vocab import UNK_TOKEN, default_vocabulary
from .graph_gen import GraphGenConfig, random_batch, random_encoded_graph, random_paragraph
from .source_gen import generate_defect_kernel, generate_kernel

__all__ = [
    "CASES_ENV",
    "DEFAULT_TOTAL_CASES",
    "HarnessReport",
    "SCENARIOS",
    "ScenarioSpec",
    "canonical_render",
    "cases_for",
    "corpus_total_cases",
    "reproduce",
    "run_cases",
    "scenario_names",
    "seeds_for",
    "structural_dump",
    "tiny_serving_stack",
]

CASES_ENV = "REPRO_SYNTH_CASES"
SEED_ENV = "REPRO_SYNTH_SEED"

#: how many failing seeds a report lists before truncating.
MAX_REPORTED_FAILURES = 5


# --------------------------------------------------------------------- #
# canonical rendering / structural comparison helpers
# --------------------------------------------------------------------- #
def canonical_render(tokens: Sequence[Token]) -> str:
    """Re-render a token stream as compilable text, one space per boundary.

    Pragma tokens must become ``#pragma`` lines of their own, everything
    else joins with single spaces — the canonical layout-free spelling of
    the program.  ``tokenize(canonical_render(tokenize(s)))`` must equal
    ``tokenize(s)`` up to positions.
    """
    parts: List[str] = []
    for token in tokens:
        if token.kind is TokenKind.EOF:
            break
        if token.kind is TokenKind.PRAGMA:
            parts.append(f"\n#pragma {token.text}\n")
        else:
            parts.append(token.text + " ")
    return "".join(parts)


def token_signature(tokens: Sequence[Token]) -> List[Tuple[str, str]]:
    """Position-independent view of a token stream (kind, spelling)."""
    return [(token.kind.name, token.text) for token in tokens
            if token.kind is not TokenKind.EOF]


def structural_dump(node) -> str:
    """Location-insensitive AST dump: kind, spelling and tree shape only."""
    lines: List[str] = []

    def visit(current, depth: int) -> None:
        lines.append(f"{'  ' * depth}{current.kind} {current.spelling!r}")
        for child in current.children:
            visit(child, depth + 1)

    visit(node, 0)
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# scenario checks (one seeded case each)
# --------------------------------------------------------------------- #
def check_lexer_roundtrip(seed: int) -> None:
    kernel = generate_kernel(seed)
    tokens = tokenize(kernel.source)
    assert tokens[-1].kind is TokenKind.EOF
    for position, token in enumerate(tokens):
        assert token.index == position, "token indices must be consecutive"
    positions = [(token.line, token.column) for token in tokens[:-1]]
    assert positions == sorted(positions), "token positions must be monotone"

    rendered = canonical_render(tokens)
    relexed = tokenize(rendered)
    assert token_signature(relexed) == token_signature(tokens), \
        "canonical re-render changed the token stream"
    # the canonical form is a fixpoint of render ∘ tokenize
    assert canonical_render(relexed) == rendered


def check_parser_roundtrip(seed: int) -> None:
    kernel = generate_kernel(seed)
    ast_original = parse_source(kernel.source)
    ast_rendered = parse_source(canonical_render(tokenize(kernel.source)))
    assert structural_dump(ast_original) == structural_dump(ast_rendered), \
        "layout-normalized source parsed to a different tree"
    # byte-stable: same text, same dump (locations included)
    assert dump(parse_source(kernel.source)) == dump(ast_original)
    # set_parents left a consistent tree behind, and every node carries a
    # real source anchor (the analysis checkers report locations from them)
    for node in preorder(ast_original):
        for child in node.children:
            assert child.parent is node, "stale parent back-pointer"
        assert node.location != (0, 0), \
            f"{node.kind} node lost its source location"


def check_paragraph_invariants(seed: int) -> None:
    kernel = generate_kernel(seed)
    ast = analyze(parse_source(kernel.source))
    graph = build_paragraph(ast, variant=GraphVariant.PARAGRAPH,
                            num_threads=4, num_teams=2, name=kernel.name)
    graph.validate()

    num_ast_nodes = sum(1 for _ in preorder(ast))
    assert graph.num_nodes == num_ast_nodes
    counts = graph.edge_type_counts()
    # every non-root AST node hangs off exactly one Child edge
    assert counts[EdgeType.CHILD] == graph.num_nodes - 1
    # NextToken edges chain the terminals into one path
    terminals = terminals_in_token_order(ast)
    assert counts[EdgeType.NEXT_TOKEN] == max(len(terminals) - 1, 0)
    assert set(int(t) for t in graph.edge_types()) <= set(range(NUM_EDGE_TYPES))

    # the default vocabulary covers everything the frontend can emit
    vocabulary = default_vocabulary()
    unk = vocabulary.index(UNK_TOKEN)
    for label in graph.node_labels():
        assert vocabulary.index(label) != unk, f"unknown node kind {label!r}"

    # building twice is deterministic
    rebuilt = build_paragraph(ast, variant=GraphVariant.PARAGRAPH,
                              num_threads=4, num_teams=2)
    assert [e.as_tuple() for e in rebuilt.edges] == \
        [e.as_tuple() for e in graph.edges]

    # ablation variants nest: raw ⊂ augmented ⊆ paragraph
    raw = build_paragraph(ast, variant=GraphVariant.RAW_AST)
    augmented = build_paragraph(ast, variant=GraphVariant.AUGMENTED_AST)
    assert raw.num_edges == counts[EdgeType.CHILD]
    assert all(edge.weight == 1.0 for edge in raw.edges)
    assert augmented.num_edges == graph.num_edges

    # encoding shape contract
    encoder = GraphEncoder()
    encoded = encoder.encode(graph, num_teams=2, num_threads=4)
    assert encoded.node_features.shape == (graph.num_nodes, encoder.feature_dim)
    assert encoded.edge_index.shape == (2, graph.num_edges)
    assert encoded.edge_type.shape == (graph.num_edges,)
    assert encoded.edge_weight.shape == (graph.num_edges,)
    assert (encoded.edge_weight >= 0.0).all(), "log-scaled weights went negative"


def check_graph_validity(seed: int) -> None:
    graph = random_paragraph(seed)
    graph.validate()
    if graph.num_edges:
        edge_index = graph.edge_index()
        assert edge_index.min() >= 0
        assert edge_index.max() < graph.num_nodes

    encoded = GraphEncoder().encode(graph)
    row_sums = encoded.node_features[:, :-1].sum(axis=1)
    np.testing.assert_allclose(row_sums, 1.0)       # one-hot rows

    batch = random_batch(seed, config=_GNN_SHAPES)
    assert batch.batch.shape == (batch.node_features.shape[0],)
    assert (np.diff(batch.batch) >= 0).all(), "collate must emit a sorted batch"
    assert batch.aux_features.shape == (batch.num_graphs, 2)
    if batch.edge_index.size:
        # block-diagonal: every edge stays inside its graph's node range
        starts = np.concatenate([[0], np.cumsum(np.bincount(
            batch.batch, minlength=batch.num_graphs))])
        graph_of_src = np.searchsorted(starts, batch.edge_index[0], side="right") - 1
        graph_of_dst = np.searchsorted(starts, batch.edge_index[1], side="right") - 1
        np.testing.assert_array_equal(graph_of_src, graph_of_dst)


#: smaller shapes for the GNN scenarios — parity is shape-driven, not
#: size-driven, and hundreds of cases must stay fast in tier 1.
_GNN_SHAPES = GraphGenConfig(num_nodes=(2, 24), feature_dim=6)


def _gnn_case(seed: int):
    from ..gnn.rgat import RGATConv
    from ..gnn.rgcn import RGCNConv
    from ..nn.tensor import Tensor

    rng = np.random.default_rng(seed)
    num_relations = int(rng.choice([1, 2, NUM_EDGE_TYPES]))
    heads = int(rng.choice([1, 2]))
    encoded = random_encoded_graph(
        seed, GraphGenConfig(num_nodes=_GNN_SHAPES.num_nodes,
                             feature_dim=_GNN_SHAPES.feature_dim,
                             num_relations=num_relations))
    convs = [
        RGATConv(_GNN_SHAPES.feature_dim, 3, num_relations=num_relations,
                 heads=heads, rng=np.random.default_rng(seed + 1)),
        RGCNConv(_GNN_SHAPES.feature_dim, 3, num_relations=num_relations,
                 rng=np.random.default_rng(seed + 2)),
    ]
    return encoded, convs, Tensor


def check_gnn_forward_parity(seed: int) -> None:
    from ..nn.tensor import no_grad

    encoded, convs, Tensor = _gnn_case(seed)
    arguments = (encoded.edge_index, encoded.edge_type, encoded.edge_weight)
    for conv in convs:
        reference = conv.forward_reference(Tensor(encoded.node_features), *arguments)
        vectorized = conv(Tensor(encoded.node_features), *arguments)
        np.testing.assert_allclose(vectorized.data, reference.data, atol=1e-9,
                                   err_msg=type(conv).__name__)
        with no_grad():                 # fused inference kernel
            fused = conv(Tensor(encoded.node_features), *arguments)
        np.testing.assert_allclose(fused.data, reference.data, atol=1e-9,
                                   err_msg=f"{type(conv).__name__} (no_grad)")


def check_gnn_gradient_parity(seed: int) -> None:
    encoded, convs, Tensor = _gnn_case(seed)
    conv = convs[0]                     # RGAT: the layer the paper trains
    arguments = (encoded.edge_index, encoded.edge_type, encoded.edge_weight)

    x_ref = Tensor(encoded.node_features.copy(), requires_grad=True)
    conv.zero_grad()
    conv.forward_reference(x_ref, *arguments).pow(2.0).sum().backward()
    reference_grads = {name: None if p.grad is None else p.grad.copy()
                       for name, p in conv.named_parameters()}

    x_vec = Tensor(encoded.node_features.copy(), requires_grad=True)
    conv.zero_grad()
    conv(x_vec, *arguments).pow(2.0).sum().backward()

    np.testing.assert_allclose(x_vec.grad, x_ref.grad, atol=1e-9)
    for name, parameter in conv.named_parameters():
        expected = reference_grads[name]
        if expected is None:
            assert parameter.grad is None or not parameter.grad.any()
        else:
            np.testing.assert_allclose(parameter.grad, expected, atol=1e-9,
                                       err_msg=name)


def check_float32_serving_bounds(seed: int) -> None:
    from ..gnn.models import ParaGraphModel

    batch = random_batch(seed, config=_GNN_SHAPES)
    model = ParaGraphModel(node_feature_dim=_GNN_SHAPES.feature_dim,
                           hidden_dim=8, num_relations=NUM_EDGE_TYPES,
                           seed=seed)
    exact = model.predict(batch, dtype=None)
    served = model.predict(batch, dtype=np.float32)
    assert exact.dtype == np.float64
    scale = 1.0 + float(np.abs(exact).max())
    np.testing.assert_allclose(served, exact, atol=1e-3 * scale,
                               err_msg="float32 serving drifted from float64")
    # float64 parameters must come back bit-exact after the cast context
    again = model.predict(batch, dtype=None)
    np.testing.assert_array_equal(again, exact)


def check_pooling_paths(seed: int) -> None:
    from ..gnn.pooling import global_max_pool, global_mean_pool, global_sum_pool
    from ..nn.tensor import Tensor, no_grad

    rng = np.random.default_rng(seed)
    num_graphs = int(rng.integers(1, 5))
    counts = rng.integers(1, 7, size=num_graphs)
    batch = np.repeat(np.arange(num_graphs), counts)
    data = rng.normal(size=(batch.size, 4))

    def oracle(op):
        return np.stack([op(data[batch == g], axis=0) for g in range(num_graphs)])

    for pool, op in ((global_sum_pool, np.sum), (global_mean_pool, np.mean),
                     (global_max_pool, np.max)):
        # sorted-batch reduceat shortcut (no grad required)
        fast = pool(Tensor(data), batch, num_graphs)
        np.testing.assert_allclose(fast.data, oracle(op), atol=1e-12)
        # autodiff fallback path (requires_grad input)
        slow = pool(Tensor(data.copy(), requires_grad=True), batch, num_graphs)
        np.testing.assert_allclose(slow.data, oracle(op), atol=1e-12)
        # inference shortcut under no_grad, even with requires_grad input
        with no_grad():
            inference = pool(Tensor(data.copy(), requires_grad=True),
                             batch, num_graphs)
        np.testing.assert_allclose(inference.data, oracle(op), atol=1e-12)

    # an unsorted batch vector must fall back to the scatter path and agree
    permutation = rng.permutation(batch.size)
    shuffled_batch = batch[permutation]
    shuffled_data = data[permutation]
    for pool, op in ((global_sum_pool, np.sum), (global_mean_pool, np.mean),
                     (global_max_pool, np.max)):
        out = pool(Tensor(shuffled_data), shuffled_batch, num_graphs)
        np.testing.assert_allclose(out.data, oracle(op), atol=1e-12)


def check_context_isolation(seed: int) -> None:
    """Concurrent engine contexts must not leak state across threads.

    Seeded plan: 2-4 threads share one :class:`repro.nn.Linear`; thread 0
    may record gradients (training mode), the others hold
    ``InferenceContext``\\ s with seed-chosen dtypes.  A barrier forces every
    context to be active simultaneously; each thread then asserts its own
    view of ``get_default_dtype`` / ``is_grad_enabled`` and its forward
    output must be bit-identical to the same forward run sequentially.
    """
    import threading

    from ..nn import InferenceContext, Linear, Tensor, get_default_dtype, \
        is_grad_enabled

    rng = np.random.default_rng(seed)
    num_threads = 2 + int(rng.integers(0, 3))
    layer = Linear(6, 4, rng=np.random.default_rng(seed + 1))
    features = rng.normal(size=(5, 6))
    dtypes = (None, np.float32, np.float64)
    plans = []
    for index in range(num_threads):
        # at most one grad-recording thread: parameter .grad buffers are
        # shared training state, only the contexts are per-thread
        grad = index == 0 and bool(rng.integers(0, 2))
        dtype = None if grad else dtypes[int(rng.integers(0, len(dtypes)))]
        plans.append((dtype, grad))

    def forward(dtype, grad):
        if grad:
            x = Tensor(features.copy(), requires_grad=True)
            out = layer(x)
            assert out.requires_grad and out._prev, "autodiff graph not recorded"
            return out
        with InferenceContext(dtype=dtype):
            out = layer(Tensor(features))
            assert not out.requires_grad
            return out

    expected = [forward(dtype, grad).data.copy() for dtype, grad in plans]

    barrier = threading.Barrier(num_threads)
    outputs: List[Optional[np.ndarray]] = [None] * num_threads
    failures: List[str] = []

    def run(index: int) -> None:
        dtype, grad = plans[index]
        try:
            if grad:
                barrier.wait()
                assert is_grad_enabled(), "no_grad leaked into training thread"
                assert get_default_dtype() == np.float64, \
                    "dtype overlay leaked into training thread"
                out = forward(dtype, grad)
                barrier.wait()      # overlap: every context active right now
                assert is_grad_enabled() and get_default_dtype() == np.float64
                out.sum().backward()
                outputs[index] = out.data.copy()
            else:
                with InferenceContext(dtype=dtype):
                    barrier.wait()
                    want = np.dtype(np.float64 if dtype is None else dtype)
                    assert get_default_dtype() == want, "dtype leaked across threads"
                    assert not is_grad_enabled(), "no_grad flag leaked"
                    out = layer(Tensor(features))
                    assert not out.requires_grad
                    assert out.data.dtype == want
                    barrier.wait()
                    assert get_default_dtype() == want
                    outputs[index] = out.data.copy()
        except Exception as error:  # noqa: BLE001 - reported with the seed
            failures.append(f"thread {index}: {type(error).__name__}: {error}")
            barrier.abort()         # release peers instead of deadlocking

    threads = [threading.Thread(target=run, args=(index,))
               for index in range(num_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not failures, failures[0]
    for index, (dtype, grad) in enumerate(plans):
        np.testing.assert_array_equal(
            outputs[index], expected[index],
            err_msg=f"thread {index} (dtype={dtype}, grad={grad}) diverged "
                    "from its sequential reference")
    # the spawning context itself must come out untouched
    assert is_grad_enabled() and get_default_dtype() == np.float64


def check_store_roundtrip(seed: int) -> None:
    """Artifact save → verify → load reproduces a model set bit for bit.

    Seeded plan: a random :class:`~repro.api.config.ReproConfig` (conv
    kind, depth, readout, encoder flags, 1-2 platforms) with scaler-fitted
    trainers over random encoded graphs is written with
    :func:`repro.store.save_trainers`; the artifact must pass
    :func:`repro.store.verify_artifact`, and the loaded trainers must
    carry bit-identical float64 state dicts (dtypes preserved), identical
    scaler payloads, and produce bit-identical float64 predictions (with
    float32 serving staying within the usual tolerance).
    """
    import shutil
    import tempfile

    from ..api.config import DataConfig, GraphConfig, ModelConfig, READOUTS, ReproConfig
    from ..ml.dataset import GraphDataset
    from ..ml.trainer import Trainer, TrainingConfig
    from ..store.artifact import load_trainers, save_trainers, verify_artifact

    rng = np.random.default_rng(seed)
    platforms = ("NVIDIA V100", "AMD MI50")
    chosen = tuple(platforms[:1 + int(rng.integers(0, 2))])
    config = ReproConfig(
        data=DataConfig(platforms=chosen),
        graph=GraphConfig(include_terminal_flag=bool(rng.integers(0, 2)),
                          log_scale_weights=bool(rng.integers(0, 2))),
        model=ModelConfig(hidden_dim=int(rng.integers(2, 9)),
                          conv=str(rng.choice(["rgat", "rgcn"])),
                          num_conv_layers=int(rng.integers(1, 3)),
                          readout=str(rng.choice(READOUTS))),
        training=TrainingConfig(epochs=int(rng.integers(1, 5)),
                                batch_size=int(rng.integers(4, 33)),
                                seed=int(rng.integers(0, 1000))),
        seed=int(rng.integers(0, 1000)),
    )
    encoder = config.make_encoder()
    shapes = GraphGenConfig(num_nodes=(2, 12), feature_dim=encoder.feature_dim)
    dataset = GraphDataset(
        [random_encoded_graph(seed * 100 + index, shapes) for index in range(3)],
        name="synth-store")
    trainers = {}
    for platform in chosen:
        model = config.model.build(node_feature_dim=encoder.feature_dim,
                                   use_edge_weight=config.graph.use_edge_weight,
                                   seed=config.seed)
        trainer = Trainer(model, config.training)
        trainer._fit_scalers(dataset)
        trainers[platform] = trainer

    scratch = tempfile.mkdtemp(prefix="repro-store-synth-")
    try:
        path = f"{scratch}/artifact"
        save_trainers(path, trainers, config=config, encoder=encoder,
                      name=f"synth-{seed}")
        report = verify_artifact(path)
        assert report.ok, f"verify failed:\n{report.summary()}"
        loaded = load_trainers(path)
        assert loaded.config.to_dict() == config.to_dict(), \
            "config did not survive the artifact round trip"
        assert loaded.encoder.vocabulary.labels() == encoder.vocabulary.labels()
        for platform, trainer in trainers.items():
            restored = loaded.trainers[platform]
            state = trainer.model.state_dict()
            restored_state = restored.model.state_dict()
            assert set(state) == set(restored_state)
            for key, value in state.items():
                assert restored_state[key].dtype == value.dtype, \
                    f"{platform}/{key}: dtype not preserved"
                np.testing.assert_array_equal(restored_state[key], value,
                                              err_msg=f"{platform}/{key}")
            assert restored.target_scaler.to_dict() == \
                trainer.target_scaler.to_dict()
            assert restored.aux_scaler.to_dict() == trainer.aux_scaler.to_dict()
            exact = trainer.predict(dataset)
            np.testing.assert_array_equal(
                restored.predict(dataset), exact,
                err_msg=f"{platform}: float64 predictions not bit-identical")
            served = restored.predict(dataset, dtype=np.float32)
            scale = 1.0 + float(np.abs(exact).max())
            np.testing.assert_allclose(
                served, exact, atol=1e-3 * scale,
                err_msg=f"{platform}: float32 serving drifted after reload")
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def _tiny_serving_stack(seed: int):
    """A serving-ready session *without training*: random weights, fitted
    scalers, restored-results installation — the warm-start shape
    ``load_session`` produces, built in-process so a fault case costs
    milliseconds, not a training run.  Returns (session, platform, sources).
    """
    from ..api.config import DataConfig, ModelConfig, ReproConfig
    from ..api.registries import resolve_platform
    from ..api.session import Session
    from ..ml.dataset import GraphDataset
    from ..ml.trainer import History, Trainer, TrainingConfig
    from ..pipeline.workflow import PlatformResult

    rng = np.random.default_rng(seed)
    platform = resolve_platform("NVIDIA V100")
    config = ReproConfig(
        data=DataConfig(platforms=(platform.name,)),
        model=ModelConfig(hidden_dim=4, conv="rgcn", num_conv_layers=1),
        training=TrainingConfig(epochs=1, batch_size=8,
                                seed=int(rng.integers(0, 1000))),
        seed=int(rng.integers(0, 1000)),
    )
    session = Session(config)
    encoder = config.make_encoder()
    session.encoder = encoder
    shapes = GraphGenConfig(num_nodes=(2, 10), feature_dim=encoder.feature_dim)
    scaler_data = GraphDataset(
        [random_encoded_graph(seed * 7 + index, shapes) for index in range(3)],
        name="synth-serve")
    model = config.model.build(node_feature_dim=encoder.feature_dim,
                               use_edge_weight=config.graph.use_edge_weight,
                               seed=config.seed)
    trainer = Trainer(model, config.training)
    trainer._fit_scalers(scaler_data)
    placeholder = GraphDataset(name=platform.name)
    session._install_restored_results(
        {platform.name: PlatformResult(
            platform=platform, dataset=placeholder, train=placeholder,
            validation=placeholder, trainer=trainer, history=History(),
            metrics={})},
        {"name": f"synth-serve-{seed}"})
    sources = [generate_kernel(seed * 31 + index).source for index in range(3)]
    return session, platform.name, sources


def tiny_serving_stack(seed: int = 0):
    """A warm-started, serving-ready ``(session, platform, sources)`` triple.

    Public wrapper around the harness's in-process stack — random weights,
    fitted scalers, no training — so demos and the ``repro.obs`` CLI can
    drive real serving traffic in milliseconds.
    """
    return _tiny_serving_stack(seed)


def check_serve_under_faults(seed: int) -> None:
    """The ``repro.reliability`` contract, differentially tested.

    Seeded plan: a warm-started single-platform session serves a fixed
    request list twice — once fault-free (the reference) and once inside an
    :func:`~repro.reliability.inject_faults` scope with seed-chosen
    transient forward failures, worker/scheduler delays, admission faults,
    a bounded queue and (some seeds) an already-expired deadline.  The
    chaos run uses ``num_workers=1, max_batch_size=1`` so execution order —
    and therefore the per-(site, kind) rng streams — replays by seed.

    Invariant: every request either yields a float64 result bit-identical
    to its fault-free reference, or raises one of the typed reliability
    errors.  A future that does not resolve within the harness timeout is
    a hang — an immediate failure — and an untyped error or a drifted
    result is silent corruption.
    """
    from concurrent.futures import TimeoutError as FutureTimeout

    from ..reliability import (
        CircuitOpenError,
        DeadlineExceeded,
        FaultPlan,
        FaultSpec,
        ServerOverloaded,
        TransientFaultError,
        inject_faults,
    )
    from ..serve import Server, ServerConfig

    rng = np.random.default_rng(seed)
    session, platform, sources = _tiny_serving_stack(seed)
    typed = (DeadlineExceeded, ServerOverloaded, CircuitOpenError,
             TransientFaultError)

    # fault-free float64 references (inline server: same execution path)
    clean = Server(session, ServerConfig(num_workers=0, max_retries=0,
                                         breaker_threshold=0))
    references = [float(clean.predict_batch([source], platform, dtype=None)[0])
                  for source in sources]
    reference_batch = clean.predict_batch(sources, platform, dtype=None)

    menu = [
        FaultSpec("engine.forward", "raise",
                  float(rng.uniform(0.1, 0.5))),
        FaultSpec("serve.worker", "delay",
                  float(rng.uniform(0.1, 0.6)),
                  delay_s=float(rng.uniform(0.001, 0.003))),
        FaultSpec("serve.schedule", "delay",
                  float(rng.uniform(0.1, 0.4)),
                  delay_s=float(rng.uniform(0.001, 0.002))),
        FaultSpec("serve.submit", "raise",
                  float(rng.uniform(0.05, 0.3))),
    ]
    picked = [spec for spec in menu if rng.random() < 0.75] or [menu[0]]
    expire_one = bool(rng.integers(0, 2))
    config = ServerConfig(num_workers=1, max_batch_size=1, batch_window_s=0.0,
                          default_deadline_s=5.0, max_queue_depth=8,
                          max_retries=2, retry_backoff_s=0.001,
                          breaker_threshold=4, breaker_reset_s=0.05)

    with inject_faults(FaultPlan(seed, picked)):
        server = Server(session, config)
        try:
            pending = []
            for index, source in enumerate(sources):
                deadline_s = 0.0 if expire_one and index == 0 else None
                try:
                    future = server.submit(source, platform, dtype=None,
                                           deadline_s=deadline_s)
                except typed:
                    continue        # typed admission rejection: allowed
                pending.append((index, future))
            for index, future in pending:
                # note the order: DeadlineExceeded *is* a TimeoutError (and
                # py3.11 aliases concurrent.futures.TimeoutError to it), so
                # typed errors must be recognised before the hang detector
                try:
                    value = future.result(timeout=10.0)
                except typed:
                    continue        # typed failure: allowed
                except FutureTimeout:
                    raise AssertionError(
                        f"request {index} hung under fault injection "
                        "(future unresolved after 10s)")
                assert float(value) == references[index], (
                    f"request {index} silently corrupted: got {value!r}, "
                    f"fault-free reference {references[index]!r}")
            try:
                batch = server.predict_batch(sources, platform, dtype=None,
                                             deadline_s=5.0)
            except typed:
                pass
            else:
                np.testing.assert_array_equal(
                    batch, reference_batch,
                    err_msg="whole-job batch silently corrupted under faults")
        finally:
            server.close()


def check_trace_completeness(seed: int) -> None:
    """The ``repro.obs`` tracing contract: one span tree per request.

    Seeded plan: a warm-started session serves a fixed request list through
    a seed-chosen topology (inline or pooled workers, coalescing windows,
    breaker on/off) inside ``trace_requests`` + ``metrics_scope`` scopes,
    with seed-chosen fault injection and (some seeds) an already-expired
    deadline.  The invariant: every submission either resolves or raises a
    typed reliability error, AND yields **exactly one** completed
    ``serve.request`` trace — structurally validated, JSON round-tripped to
    a fixpoint, and carrying its ``serve.submit`` admission span.  Trace
    accounting must balance (``began == completed == submissions``, nothing
    dropped): an incomplete trace is a leaked request, a surplus one is a
    double delivery.
    """
    from concurrent.futures import TimeoutError as FutureTimeout

    from ..obs.metrics import MetricsRegistry, metrics_scope
    from ..obs.tracing import Trace, trace_requests
    from ..reliability import (
        CircuitOpenError,
        DeadlineExceeded,
        FaultPlan,
        FaultSpec,
        ServerOverloaded,
        TransientFaultError,
        inject_faults,
    )
    from ..serve import Server, ServerConfig

    rng = np.random.default_rng(seed)
    session, platform, sources = _tiny_serving_stack(seed)
    typed = (DeadlineExceeded, ServerOverloaded, CircuitOpenError,
             TransientFaultError)

    menu = [
        FaultSpec("engine.forward", "raise", float(rng.uniform(0.1, 0.4))),
        FaultSpec("serve.worker", "delay", float(rng.uniform(0.1, 0.5)),
                  delay_s=float(rng.uniform(0.001, 0.003))),
        FaultSpec("serve.submit", "raise", float(rng.uniform(0.05, 0.25))),
    ]
    picked = [spec for spec in menu if rng.random() < 0.5]
    expire_one = bool(rng.integers(0, 2))
    num_workers = int(rng.integers(0, 3))       # 0 exercises the inline path
    config = ServerConfig(num_workers=num_workers,
                          max_batch_size=int(rng.integers(1, 4)),
                          batch_window_s=float(rng.choice([0.0, 0.002])),
                          default_deadline_s=5.0, max_queue_depth=16,
                          max_retries=1, retry_backoff_s=0.001,
                          breaker_threshold=int(rng.choice([0, 4])),
                          breaker_reset_s=0.05)

    def run_traffic(server) -> int:
        submissions = 0
        pending = []
        for index, source in enumerate(sources):
            deadline_s = 0.0 if expire_one and index == 0 else None
            submissions += 1
            try:
                future = server.submit(source, platform, dtype=None,
                                       deadline_s=deadline_s)
            except typed:
                continue            # typed admission rejection: allowed
            pending.append((index, future))
        for index, future in pending:
            # typed errors before the hang detector: DeadlineExceeded *is*
            # a TimeoutError (see check_serve_under_faults)
            try:
                future.result(timeout=10.0)
            except typed:
                continue            # typed failure: allowed
            except FutureTimeout:
                raise AssertionError(
                    f"request {index} hung (future unresolved after 10s)")
        submissions += 1
        try:
            server.predict_batch(sources, platform, dtype=None,
                                 deadline_s=5.0)
        except typed:
            pass
        return submissions

    def serve_all() -> int:
        server = Server(session, config)
        try:
            return run_traffic(server)
        finally:
            server.close()

    with metrics_scope(MetricsRegistry()):
        with trace_requests(capacity=64) as collector:
            if picked:
                with inject_faults(FaultPlan(seed, picked)):
                    submissions = serve_all()
            else:
                submissions = serve_all()

    stats = collector.stats()
    assert stats["began"] == submissions, (
        f"{submissions} submissions began {stats['began']} traces")
    assert stats["completed"] == submissions, (
        f"only {stats['completed']} of {submissions} traces completed "
        "(an incomplete trace is a leaked request)")
    assert stats["dropped"] == 0, f"collector dropped {stats['dropped']}"
    traces = collector.traces()
    assert len(traces) == submissions
    for trace in traces:
        assert trace.root.name == "serve.request", trace.root.name
        trace.validate()            # raises TraceError on a malformed tree
        payload = trace.to_json()
        assert Trace.from_json(payload).to_json() == payload, (
            "trace JSON round-trip is not a fixpoint")
        assert trace.root.find("serve.submit") is not None, (
            "trace lacks its admission span:\n" + trace.render())
        if trace.root.status == "error":
            assert trace.root.error, "error trace without error text"


def check_packed_forward_parity(seed: int) -> None:
    """Packed multi-graph inference is bit-identical to solo predictions.

    Seeded plan: a small :class:`~repro.gnn.models.ParaGraphModel`
    (seed-chosen conv kind, depth, heads and readout) with fitted scalers
    predicts 2-6 random graphs one at a time — the per-graph reference
    loop serving keeps for parity — and then through
    :meth:`~repro.ml.trainer.Trainer.predict_packed` under several random
    packing orders.  Every packed float64 result must equal its solo
    reference **bit for bit**: the packed kernel keeps all BLAS calls at
    solo shapes, so batch composition must not change a single bit (the
    contract SERVING.md's "Packed batching" section documents).
    """
    from ..gnn.models import ParaGraphModel
    from ..ml.dataset import GraphDataset
    from ..ml.trainer import Trainer, TrainingConfig

    rng = np.random.default_rng(seed)
    num_relations = int(rng.choice([1, 2, NUM_EDGE_TYPES]))
    shapes = GraphGenConfig(num_nodes=_GNN_SHAPES.num_nodes,
                            feature_dim=_GNN_SHAPES.feature_dim,
                            num_relations=num_relations)
    num_graphs = 2 + int(rng.integers(0, 5))
    graphs = [random_encoded_graph(seed * 1000 + index, shapes)
              for index in range(num_graphs)]
    model = ParaGraphModel(
        node_feature_dim=shapes.feature_dim,
        hidden_dim=int(rng.integers(2, 7)),
        num_relations=num_relations,
        num_conv_layers=int(rng.integers(1, 3)),
        conv=str(rng.choice(["rgat", "rgcn"])),
        heads=int(rng.integers(1, 3)),
        readout=str(rng.choice(["mean", "sum", "mean_max"])),
        seed=seed,
    )
    assert model.supports_packed()
    trainer = Trainer(model, TrainingConfig(epochs=1))
    trainer._fit_scalers(GraphDataset(graphs, name="synth-packed"))
    reference = np.concatenate([
        trainer.predict(GraphDataset([graph], name="solo"))
        for graph in graphs])
    for _ in range(2):
        order = rng.permutation(num_graphs)
        packed = trainer.predict_packed([graphs[index] for index in order])
        np.testing.assert_array_equal(
            packed, reference[order],
            err_msg=f"packing order {order.tolist()} changed float64 bits")
    # single-graph packs ride the same path inline serving uses
    np.testing.assert_array_equal(trainer.predict_packed(graphs[:1]),
                                  reference[:1])


def check_analysis_planted_defects(seed: int) -> None:
    """Score the static-analysis checkers against planted ground truth.

    The clean control kernel must produce an empty report (zero false
    positives); the defected twin must produce exactly the planted issues
    (recall 1.0 per checker class, matched on checker + variable + line),
    and the report must round-trip through the JSON schema.
    """
    from ..analysis import AnalyzerRunner, Report

    runner = AnalyzerRunner()
    clean = generate_defect_kernel(seed, clean=True)
    clean_report = runner.analyze_source(clean.source, file=clean.name)
    assert not clean_report.issues, \
        f"false positives on the clean control: " \
        f"{[issue.render() for issue in clean_report.issues]}"

    kernel = generate_defect_kernel(seed)
    report = runner.analyze_source(kernel.source, file=kernel.name)
    planted = {(d.checker, d.variable, d.line) for d in kernel.defects}
    found = {(i.checker, i.variable, i.line) for i in report.issues}
    assert planted <= found, f"missed planted defects: {planted - found}"
    assert found <= planted, f"unplanted findings: {found - planted}"
    # one planted defect per checker class, every class exercised
    assert {d.checker for d in kernel.defects} == {
        "uninit-read", "dead-store", "array-bounds", "omp-race",
        "loop-carried-dep"}

    rebuilt = Report.from_json(report.to_json())
    assert rebuilt == report, "JSON round trip changed the report"


def check_config_roundtrip(seed: int) -> None:
    from ..api.config import DataConfig, GraphConfig, ModelConfig, READOUTS, ReproConfig
    from ..ml.trainer import TrainingConfig

    rng = np.random.default_rng(seed)
    platforms = ("AMD EPYC7401", "AMD MI50", "IBM POWER9", "NVIDIA V100")
    chosen = tuple(sorted(rng.choice(platforms,
                                     size=int(rng.integers(1, 5)),
                                     replace=False)))
    config = ReproConfig(
        data=DataConfig(platforms=chosen,
                        noisy_runtimes=bool(rng.integers(0, 2)),
                        min_platform_samples=int(rng.integers(2, 9))),
        graph=GraphConfig(variant=str(rng.choice([v.value for v in GraphVariant])),
                          default_trip_count=int(rng.integers(1, 65)),
                          include_terminal_flag=bool(rng.integers(0, 2)),
                          log_scale_weights=bool(rng.integers(0, 2))),
        model=ModelConfig(hidden_dim=int(rng.integers(1, 65)),
                          conv=str(rng.choice(["rgat", "rgcn", "gat"])),
                          readout=str(rng.choice(READOUTS)),
                          num_conv_layers=int(rng.integers(1, 4)),
                          heads=int(rng.integers(1, 3)),
                          dropout=float(rng.uniform(0.0, 0.9))),
        training=TrainingConfig(epochs=int(rng.integers(1, 20)),
                                batch_size=int(rng.integers(1, 64)),
                                seed=int(rng.integers(0, 1000))),
        train_fraction=float(rng.uniform(0.1, 0.9)),
        seed=int(rng.integers(0, 10_000)),
    )
    payload = config.to_dict()
    # the dict is JSON-safe and the round trip is a fixpoint
    rebuilt = ReproConfig.from_dict(json.loads(json.dumps(payload)))
    assert rebuilt.to_dict() == payload
    assert rebuilt.graph.variant is config.graph.variant
    assert rebuilt.model == config.model


# --------------------------------------------------------------------- #
# the scenario registry and the case runner
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ScenarioSpec:
    """A named differential scenario: the check plus its default case count."""

    name: str
    check: Callable[[int], None]
    default_cases: int
    layer: str

    def seeds(self, count: Optional[int] = None) -> List[int]:
        return seeds_for(self.name, count)


SCENARIOS: Dict[str, ScenarioSpec] = {}


def _register(name: str, check: Callable[[int], None], default_cases: int,
              layer: str) -> None:
    SCENARIOS[name] = ScenarioSpec(name, check, default_cases, layer)


_register("lexer-roundtrip", check_lexer_roundtrip, 40, "clang")
_register("parser-roundtrip", check_parser_roundtrip, 40, "clang")
_register("paragraph-invariants", check_paragraph_invariants, 48, "paragraph")
_register("graph-validity", check_graph_validity, 40, "paragraph")
_register("gnn-forward-parity", check_gnn_forward_parity, 24, "gnn")
_register("gnn-gradient-parity", check_gnn_gradient_parity, 8, "gnn")
_register("float32-serving-bounds", check_float32_serving_bounds, 12, "nn")
_register("pooling-paths", check_pooling_paths, 16, "gnn")
_register("config-roundtrip", check_config_roundtrip, 16, "api")
_register("store-roundtrip", check_store_roundtrip, 6, "store")
_register("serving-context-isolation", check_context_isolation, 6, "serve")
_register("serve-under-faults", check_serve_under_faults, 50, "reliability")
_register("packed-forward-parity", check_packed_forward_parity, 16, "gnn")
_register("analysis-planted-defects", check_analysis_planted_defects, 20,
          "analysis")
_register("trace-completeness", check_trace_completeness, 20, "obs")

#: sum of the per-scenario defaults — the tier-1 corpus size.
DEFAULT_TOTAL_CASES = sum(spec.default_cases for spec in SCENARIOS.values())


def scenario_names() -> List[str]:
    return list(SCENARIOS)


def _corpus_scale() -> float:
    """Multiplier derived from ``REPRO_SYNTH_CASES`` (total corpus target)."""
    raw = os.environ.get(CASES_ENV, "").strip()
    if not raw:
        return 1.0
    try:
        total = int(raw)
    except ValueError:
        raise ValueError(
            f"{CASES_ENV} must be an integer total case count, got {raw!r}")
    if total < 1:
        raise ValueError(f"{CASES_ENV} must be >= 1, got {total}")
    return total / DEFAULT_TOTAL_CASES


def _base_salt() -> int:
    raw = os.environ.get(SEED_ENV, "").strip()
    return int(raw) if raw else 0


def cases_for(name: str) -> int:
    """Number of cases scenario *name* runs at the current scale."""
    spec = SCENARIOS[name]
    return max(2, int(round(spec.default_cases * _corpus_scale())))


def seeds_for(name: str, count: Optional[int] = None) -> List[int]:
    """The deterministic seed list of a scenario (stable across runs)."""
    if count is None:
        count = cases_for(name) if name in SCENARIOS else 0
    salt = _base_salt()
    base = (zlib.crc32(name.encode("utf-8")) ^ (salt * 0x9E3779B1)) & 0x7FFFFFFF
    return [base + index for index in range(count)]


@dataclass(frozen=True)
class HarnessReport:
    """Outcome of one scenario sweep."""

    scenario: str
    cases: int
    failures: Tuple[Tuple[int, str], ...] = ()

    @property
    def ok(self) -> bool:
        return not self.failures


def _format_failures(name: str, report: HarnessReport) -> str:
    shown = report.failures[:MAX_REPORTED_FAILURES]
    seeds = [seed for seed, _ in shown]
    lines = [
        f"synth scenario {name!r}: {len(report.failures)}/{report.cases} "
        f"cases failed (failing seeds: {seeds}"
        + (", truncated" if len(report.failures) > len(shown) else "") + ")",
        "reproduce one case with:",
        f"  PYTHONPATH=src python -m repro.synth {name} {seeds[0]}",
    ]
    seed, error = shown[0]
    lines.append(f"first failure (seed {seed}): {error}")
    return "\n".join(lines)


def run_cases(name: str, check: Optional[Callable[[int], None]] = None,
              seeds: Optional[Sequence[int]] = None,
              count: Optional[int] = None) -> HarnessReport:
    """Run *check* over the scenario's seeds; raise with seeds on failure.

    With only *name* given, the registered scenario runs at the current
    corpus scale.  Pass *check* to sweep an unregistered (e.g. fixture-bound)
    invariant through the same reporting machinery.
    """
    if check is None:
        check = SCENARIOS[name].check
    if seeds is None:
        seeds = seeds_for(name, count) if name in SCENARIOS else \
            seeds_for(name, count or 0)
    seeds = list(seeds)
    if not seeds:
        raise ValueError(
            f"scenario {name!r} resolved to zero cases; unregistered scenarios "
            "must pass an explicit non-empty `seeds` (or `count`) so a sweep "
            "can never silently pass by running nothing")
    failures: List[Tuple[int, str]] = []
    for seed in seeds:
        try:
            check(int(seed))
        except Exception as error:  # noqa: BLE001 - reported with its seed
            # first non-empty line: numpy assertion messages start with '\n'
            detail = next((line.strip() for line in str(error).splitlines()
                           if line.strip()), "")
            failures.append((int(seed),
                             f"{type(error).__name__}: {detail}"[:400]))
    report = HarnessReport(scenario=name, cases=len(seeds),
                           failures=tuple(failures))
    if not report.ok:
        raise AssertionError(_format_failures(name, report))
    return report


def reproduce(name: str, seed: int) -> None:
    """Re-run exactly one generated case of a registered scenario."""
    if name not in SCENARIOS:
        raise KeyError(
            f"unknown synth scenario {name!r}; known scenarios: {scenario_names()}")
    SCENARIOS[name].check(int(seed))


def corpus_total_cases() -> int:
    """Total number of cases the corpus runs at the current scale."""
    return sum(cases_for(name) for name in SCENARIOS)
