"""Seeded generator of random ParaGraph instances and encoded-graph arrays.

One level below the source generator: instead of going through the frontend,
these helpers produce :class:`~repro.paragraph.graph.ParaGraph` objects and
:class:`~repro.paragraph.encoders.EncodedGraph` arrays directly, with
explicit control over the corners the GNN kernels care about — node/edge/
relation counts, degree skew (hub destinations), isolated nodes, and the
single-relation / empty-relation / no-edge degenerate regimes that the
relation-bucketed layouts and pooling shortcuts special-case.

Everything is derived from one integer seed, so any failing property-test
case reproduces from the seed its harness prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..paragraph.edges import NUM_EDGE_TYPES, EdgeType
from ..paragraph.encoders import EncodedGraph, GraphBatch, GraphEncoder
from ..paragraph.graph import ParaGraph
from ..paragraph.vocab import DEFAULT_NODE_KINDS

__all__ = [
    "GraphGenConfig",
    "random_batch",
    "random_encoded_graph",
    "random_paragraph",
]


@dataclass(frozen=True)
class GraphGenConfig:
    """Shape distribution of the random graphs."""

    num_nodes: Tuple[int, int] = (2, 40)
    #: edges per node (sampled uniformly, then rounded); 0 edges stays legal.
    edges_per_node: Tuple[float, float] = (0.0, 4.0)
    num_relations: int = NUM_EDGE_TYPES
    #: exponent of the power-law used to pick destination nodes — larger
    #: values concentrate in-degree on a few hub nodes (degree skew).
    hub_exponent: float = 1.5
    #: probability that the graph is forced into a degenerate corner:
    #: no edges at all, a single active relation, or a strict hub star.
    corner_probability: float = 0.25
    #: width of the node-feature vectors in :func:`random_encoded_graph`.
    feature_dim: int = 7

    def __post_init__(self) -> None:
        if self.num_nodes[0] < 1:
            raise ValueError("graphs need at least one node")
        if self.num_relations < 1:
            raise ValueError("num_relations must be >= 1")


def _skewed_nodes(rng: np.random.Generator, num_nodes: int, size: int,
                  exponent: float) -> np.ndarray:
    """Sample node ids with power-law weight — low ids become hubs."""
    weights = 1.0 / np.arange(1, num_nodes + 1, dtype=np.float64) ** exponent
    weights /= weights.sum()
    return rng.choice(num_nodes, size=size, p=weights)


def _edge_arrays(rng: np.random.Generator, config: GraphGenConfig,
                 num_nodes: int) -> Tuple[np.ndarray, np.ndarray]:
    """Random (edge_index, edge_type) with skew and degenerate corners."""
    low, high = config.edges_per_node
    num_edges = int(round(num_nodes * rng.uniform(low, high)))
    corner = rng.random() < config.corner_probability
    mode = rng.integers(0, 3) if corner else -1
    if mode == 0:                                   # no edges at all
        return (np.zeros((2, 0), dtype=np.int64),
                np.zeros(0, dtype=np.int64))
    num_edges = max(num_edges, 1)
    src = rng.integers(0, num_nodes, size=num_edges)
    if mode == 2:                                   # strict hub star
        dst = np.zeros(num_edges, dtype=np.int64)
    else:
        dst = _skewed_nodes(rng, num_nodes, num_edges, config.hub_exponent)
    if mode == 1:                                   # single active relation
        relation = int(rng.integers(0, config.num_relations))
        edge_type = np.full(num_edges, relation, dtype=np.int64)
    else:
        edge_type = rng.integers(0, config.num_relations, size=num_edges)
    edge_index = np.stack([src.astype(np.int64), dst.astype(np.int64)])
    return edge_index, edge_type


def random_paragraph(seed: int, config: Optional[GraphGenConfig] = None,
                     labels: Optional[Sequence[str]] = None) -> ParaGraph:
    """A random, structurally valid :class:`ParaGraph`.

    The graph always passes :meth:`ParaGraph.validate`: a Child tree with
    strictly positive weights plus random augmentation edges with zero
    weight.  The corner sampler sometimes stops the tree early, leaving a
    tail of isolated nodes (legal, and a pooling/layout corner).
    """
    config = config or GraphGenConfig()
    rng = np.random.default_rng(seed)
    num_nodes = int(rng.integers(config.num_nodes[0], config.num_nodes[1] + 1))
    pool = list(labels) if labels is not None else DEFAULT_NODE_KINDS
    graph = ParaGraph(name=f"synth_graph_{seed}")
    for node_id in range(num_nodes):
        label = pool[int(rng.integers(0, len(pool)))]
        graph.add_node(label, spelling=f"v{node_id}",
                       is_terminal=bool(rng.random() < 0.4))
    # Child tree over the first `covered` nodes, parents getting smaller ids
    # (mirroring the builder's preorder); occasionally the tree stops early
    # so the high-id tail stays isolated — legal, and a pooling corner.
    covered = num_nodes
    if num_nodes > 1 and rng.random() < config.corner_probability:
        covered = int(rng.integers(1, num_nodes))
    for child in range(1, covered):
        parent = int(rng.integers(0, child))
        weight = float(np.exp(rng.uniform(0.0, 8.0)))   # trip-count-like span
        graph.add_edge(parent, child, EdgeType.CHILD, weight)
    # random augmentation edges (weight 0 by construction)
    augmentation = [t for t in EdgeType if t is not EdgeType.CHILD]
    extra = int(rng.integers(0, 2 * covered + 1))
    if covered > 1 and rng.random() >= config.corner_probability:
        for _ in range(extra):
            src = int(rng.integers(0, covered))
            dst = int(_skewed_nodes(rng, covered, 1, config.hub_exponent)[0])
            graph.add_edge(src, dst, augmentation[int(rng.integers(0, len(augmentation)))])
    return graph


def random_encoded_graph(seed: int,
                         config: Optional[GraphGenConfig] = None) -> EncodedGraph:
    """Random :class:`EncodedGraph` arrays (features are dense, not one-hot).

    This is the GNN-facing generator: it controls exactly the shape
    parameters the vectorized kernels branch on, independently of what the
    frontend can produce.
    """
    config = config or GraphGenConfig()
    rng = np.random.default_rng(seed)
    num_nodes = int(rng.integers(config.num_nodes[0], config.num_nodes[1] + 1))
    edge_index, edge_type = _edge_arrays(rng, config, num_nodes)
    num_edges = edge_index.shape[1]
    edge_weight = np.where(edge_type == int(EdgeType.CHILD) % config.num_relations,
                           rng.uniform(0.0, 8.0, size=num_edges), 0.0)
    return EncodedGraph(
        node_features=rng.normal(size=(num_nodes, config.feature_dim)),
        edge_index=edge_index,
        edge_type=edge_type,
        edge_weight=edge_weight,
        aux_features=np.array([float(rng.choice([1, 2, 64, 128])),
                               float(rng.choice([1, 8, 64]))]),
        target=float(rng.uniform(0.0, 1000.0)),
        name=f"synth_encoded_{seed}",
    )


def random_batch(seed: int, num_graphs: Optional[int] = None,
                 config: Optional[GraphGenConfig] = None) -> GraphBatch:
    """Collate several seeded random graphs into one block-diagonal batch."""
    rng = np.random.default_rng(seed)
    if num_graphs is None:
        num_graphs = int(rng.integers(1, 5))
    graphs: List[EncodedGraph] = [
        random_encoded_graph(seed * 1000 + index, config)
        for index in range(num_graphs)
    ]
    return GraphEncoder.collate(graphs)
