"""Hand-engineered static features for the COMPOFF baseline (paper §II-C/D).

COMPOFF "requires figuring out how many operations are contained within a
kernel" — i.e. it is a feed-forward network over manually engineered,
statically-extracted counts.  This module reproduces that feature set from
the same kernel analysis the rest of the library uses:

* operation counts: arithmetic, comparisons, memory accesses, math calls,
* loop-nest structure: depth, trip counts, total / parallel iterations,
* transformation descriptors: GPU offload flag, collapse level, data-transfer
  bytes,
* execution configuration: number of teams and threads.

The contrast with ParaGraph is intentional and is the point of Figs. 8–9:
these features are a lossy summary of the kernel, whereas ParaGraph hands
the model the whole weighted program graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

import numpy as np

from ..advisor.kernel_analysis import analyze_kernel_cached
from ..advisor.transformations import KernelVariant

#: Order of the feature vector entries produced by :func:`extract_features`.
FEATURE_NAMES: Sequence[str] = (
    "log_arithmetic_ops",
    "log_comparison_ops",
    "log_memory_accesses",
    "log_math_calls",
    "log_total_iterations",
    "log_parallel_iterations",
    "loop_nest_depth",
    "collapse_level",
    "is_gpu",
    "includes_data_transfer",
    "log_transfer_bytes",
    "arithmetic_intensity",
    "has_reduction",
    "has_branches",
    "log_num_teams",
    "log_num_threads",
)

NUM_FEATURES = len(FEATURE_NAMES)


def extract_features(
    variant: KernelVariant,
    sizes: Optional[Mapping[str, int]] = None,
    num_teams: int = 1,
    num_threads: int = 1,
) -> np.ndarray:
    """Return the COMPOFF feature vector for one kernel variant configuration."""
    concrete = variant.kernel.sizes_with_defaults(sizes)
    analysis = analyze_kernel_cached(variant.kernel, concrete)
    transfer_bytes = (variant.kernel.transfer_bytes(concrete)
                      if variant.includes_data_transfer else 0)
    parallel_iterations = analysis.parallel_iterations_with_collapse(variant.collapse)
    features = np.array([
        np.log1p(analysis.operations.arithmetic),
        np.log1p(analysis.operations.comparisons),
        np.log1p(analysis.operations.memory_accesses),
        np.log1p(analysis.operations.math_calls),
        np.log1p(analysis.total_iterations),
        np.log1p(parallel_iterations),
        float(analysis.loop_nest_depth),
        float(variant.collapse),
        1.0 if variant.is_gpu else 0.0,
        1.0 if variant.includes_data_transfer else 0.0,
        np.log1p(transfer_bytes),
        float(analysis.arithmetic_intensity),
        1.0 if analysis.has_reduction else 0.0,
        1.0 if analysis.has_branches else 0.0,
        np.log1p(float(num_teams)),
        np.log1p(float(num_threads)),
    ], dtype=np.float64)
    return features


@dataclass
class FeatureSample:
    """One (feature vector, runtime) pair with provenance metadata."""

    features: np.ndarray
    runtime_us: float
    metadata: dict


def build_feature_matrix(samples: Sequence[FeatureSample]) -> np.ndarray:
    """Stack sample feature vectors into an (n, NUM_FEATURES) matrix."""
    if not samples:
        return np.zeros((0, NUM_FEATURES))
    return np.stack([sample.features for sample in samples], axis=0)


def build_target_vector(samples: Sequence[FeatureSample]) -> np.ndarray:
    """Runtime labels of the samples, microseconds."""
    return np.array([sample.runtime_us for sample in samples], dtype=np.float64)
