"""``repro.compoff`` — the COMPOFF baseline cost model.

The state-of-the-art comparator of the paper (Figs. 8–9): an MLP over
hand-engineered static operation-count features.
"""

from .features import (
    FEATURE_NAMES,
    NUM_FEATURES,
    FeatureSample,
    build_feature_matrix,
    build_target_vector,
    extract_features,
)
from .model import COMPOFFConfig, COMPOFFHistory, COMPOFFModel

__all__ = [
    "COMPOFFConfig",
    "COMPOFFHistory",
    "COMPOFFModel",
    "FEATURE_NAMES",
    "FeatureSample",
    "NUM_FEATURES",
    "build_feature_matrix",
    "build_target_vector",
    "extract_features",
]
