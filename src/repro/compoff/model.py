"""The COMPOFF cost model: an MLP regressor over static kernel features.

COMPOFF (Mishra et al., IPDPSW 2022) is "a fully-connected feed-forward
network, also referred to as multi-layer perceptrons (MLPs), which are
effectively stacked layers of linear regression", predicting OpenMP
offloading cost from manually engineered features.  This reproduction keeps
that architecture (MLP + MSE + Adam) on top of the feature extraction in
:mod:`repro.compoff.features`, so the comparison figures (Figs. 8–9) contrast
the two approaches on equal training data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..ml.scaler import LogMinMaxScaler, MinMaxScaler
from ..nn.layers import MLP
from ..nn.losses import MSELoss
from ..nn.optim import Adam
from ..nn.tensor import Tensor, no_grad
from .features import NUM_FEATURES, FeatureSample, build_feature_matrix, build_target_vector


@dataclass
class COMPOFFConfig:
    """Hyper-parameters of the COMPOFF baseline."""

    hidden_dims: Sequence[int] = (64, 64, 32)
    epochs: int = 200
    batch_size: int = 64
    learning_rate: float = 1e-3
    seed: Optional[int] = 0


@dataclass
class COMPOFFHistory:
    """Per-epoch training loss (for convergence diagnostics)."""

    train_losses: List[float] = field(default_factory=list)


class COMPOFFModel:
    """Train / predict wrapper around the feature MLP."""

    def __init__(self, config: Optional[COMPOFFConfig] = None) -> None:
        self.config = config or COMPOFFConfig()
        rng_seed = self.config.seed
        self.network = MLP(NUM_FEATURES, self.config.hidden_dims, 1,
                           rng=np.random.default_rng(rng_seed))
        self.feature_scaler = MinMaxScaler()
        self.target_scaler = LogMinMaxScaler()
        self._fitted = False

    # ------------------------------------------------------------------ #
    def fit(self, samples: Sequence[FeatureSample]) -> COMPOFFHistory:
        """Train on (features, runtime) samples; returns the loss history."""
        if not samples:
            raise ValueError("COMPOFF requires a non-empty training set")
        config = self.config
        features = self.feature_scaler.fit_transform(build_feature_matrix(samples))
        targets = self.target_scaler.fit_transform(build_target_vector(samples))
        rng = np.random.default_rng(config.seed)
        optimizer = Adam(self.network.parameters(), lr=config.learning_rate)
        loss_fn = MSELoss()
        history = COMPOFFHistory()
        num_samples = features.shape[0]
        for _ in range(config.epochs):
            order = rng.permutation(num_samples)
            epoch_losses = []
            for start in range(0, num_samples, config.batch_size):
                idx = order[start:start + config.batch_size]
                optimizer.zero_grad()
                prediction = self.network(Tensor(features[idx])).reshape(-1)
                loss = loss_fn(prediction, Tensor(targets[idx]))
                loss.backward()
                optimizer.step()
                epoch_losses.append(loss.item())
            history.train_losses.append(float(np.mean(epoch_losses)))
        self._fitted = True
        return history

    def predict(self, samples: Sequence[FeatureSample]) -> np.ndarray:
        """Predict runtimes (microseconds) for the given samples."""
        if not self._fitted:
            raise RuntimeError("COMPOFFModel.fit must be called before predict")
        if not samples:
            return np.zeros(0)
        features = self.feature_scaler.transform(build_feature_matrix(samples))
        self.network.eval()
        try:
            with no_grad():
                scaled = self.network(Tensor(features)).reshape(-1).data
        finally:
            self.network.train()
        scaled = np.clip(scaled, 0.0, 1.0)
        return self.target_scaler.inverse_transform(scaled)

    # ------------------------------------------------------------------ #
    def save(self, path, *, name: str = "compoff",
             overwrite: bool = False) -> str:
        """Persist the fitted coefficients + scaler state as a
        ``repro.store`` artifact (``kind="compoff"``)."""
        from ..store.artifact import save_compoff
        return save_compoff(self, path, name=name, overwrite=overwrite)

    @classmethod
    def load(cls, path, *, verify: bool = True) -> "COMPOFFModel":
        """Restore a fitted baseline; predictions are bit-identical to the
        model that saved the artifact.  Subclasses reconstruct as
        themselves (their ``__init__`` must keep this signature)."""
        from ..store.artifact import load_compoff
        return load_compoff(path, verify=verify, model_cls=cls)
