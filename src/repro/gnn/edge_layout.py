"""Relation-bucketed edge layout for the vectorized relational GNN kernels.

The seed implementation of :class:`~repro.gnn.rgat.RGATConv` /
:class:`~repro.gnn.rgcn.RGCNConv` looped over the relations in Python,
masking the edge list and projecting **all** nodes once per relation on
every forward pass of every layer.  :class:`RelationalEdgeLayout` computes,
once per (edge_index, edge_type) pair, everything those loops re-derived:

* the edges stably sorted by relation (``perm``, ``src``, ``dst``, ``rel``),
  so each relation's edges form one contiguous block — the CSR-style layout
  :func:`repro.nn.functional.segment_matmul` consumes,
* ``offsets`` — the ``(R + 1,)`` block boundaries per relation,
* validation — ``validate_edge_index`` and the edge-type range check run
  here exactly once instead of in every layer of a 3-layer stack.

Layouts are memoized in a content-addressed LRU cache (:class:`EdgeLayoutCache`)
keyed by a digest of the arrays, so repeated inference over the same graph —
the :class:`repro.api.Session` serving path, whose construction cache returns
identical encoded graphs — never re-sorts or re-validates, regardless of
which batch object the arrays travel in.  The cache (and each layout's
per-dtype scatter-matrix memo) is lock-protected: one process-wide instance
is shared by every :mod:`repro.serve` worker.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterator, NamedTuple, Optional, Tuple

import numpy as np

from ..nn.tensor import scatter_matrix as _build_scatter_matrix
from .message_passing import validate_edge_index

__all__ = [
    "EdgeLayoutCache",
    "RelationalEdgeLayout",
    "edge_layout_cache_info",
    "get_edge_layout",
    "layout_content_key",
]


@dataclass(frozen=True, eq=False)
class RelationalEdgeLayout:
    """Edges of one graph sorted by relation, with CSR-style offsets.

    All arrays are ordered relation-major (stable within a relation, i.e. the
    original edge order is preserved inside each block), matching the order
    the seed per-relation loop visited edges in — which keeps floating-point
    aggregation bit-for-bit comparable.
    """

    num_nodes: int
    num_relations: int
    perm: np.ndarray      # (E,)   stable argsort of edge_type
    src: np.ndarray       # (E,)   source node per edge, sorted by relation
    dst: np.ndarray       # (E,)   destination node per edge, sorted by relation
    rel: np.ndarray       # (E,)   relation per edge (non-decreasing)
    offsets: np.ndarray   # (R+1,) block boundaries: relation r spans
    #                              offsets[r]:offsets[r+1]
    # destination-major view for per-node aggregation (segment max / sum via
    # ``reduceat`` instead of the much slower unbuffered ``ufunc.at``)
    dst_order: np.ndarray    # (E,) stable argsort of dst (over layout order)
    dst_starts: np.ndarray   # (U,) reduceat segment starts in dst_order
    dst_unique: np.ndarray   # (U,) destination node id of each segment
    # flat row indices into (node, relation)-major matrices of shape
    # (N * R, ...): one fancy gather instead of 2-index arithmetic per call
    cell_src: np.ndarray     # (E,) == src * num_relations + rel
    cell_dst: np.ndarray     # (E,) == dst * num_relations + rel
    #: per-dtype cached sparse scatter matrices for the message aggregation
    _matrices: Dict[str, object] = field(default_factory=dict, compare=False,
                                         repr=False)
    #: guards ``_matrices`` — layouts are shared across serving workers
    _matrices_lock: threading.Lock = field(default_factory=threading.Lock,
                                           compare=False, repr=False)

    @property
    def num_edges(self) -> int:
        return int(self.src.shape[0])

    @classmethod
    def build(cls, edge_index: np.ndarray, edge_type: Optional[np.ndarray],
              num_nodes: int, num_relations: int) -> "RelationalEdgeLayout":
        """Validate the arrays and build the sorted layout (no caching)."""
        edge_index = validate_edge_index(edge_index, num_nodes)
        num_edges = edge_index.shape[1]
        if edge_type is None:
            edge_type = np.zeros(num_edges, dtype=np.int64)
        else:
            edge_type = np.asarray(edge_type, dtype=np.int64)
        if edge_type.shape != (num_edges,):
            raise ValueError("edge_type must have one entry per edge")
        if edge_type.size and (edge_type.min() < 0 or edge_type.max() >= num_relations):
            raise ValueError("edge_type outside [0, num_relations)")
        perm = np.argsort(edge_type, kind="stable")
        rel = edge_type[perm]
        counts = np.bincount(rel, minlength=num_relations)
        offsets = np.zeros(num_relations + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        dst = edge_index[1, perm]
        dst_order = np.argsort(dst, kind="stable")
        dst_sorted = dst[dst_order]
        if dst_sorted.size:
            dst_starts = np.concatenate(
                [[0], np.flatnonzero(np.diff(dst_sorted)) + 1])
            dst_unique = dst_sorted[dst_starts]
        else:
            dst_starts = np.zeros(0, dtype=np.int64)
            dst_unique = np.zeros(0, dtype=np.int64)
        src = edge_index[0, perm]
        layout = cls(
            num_nodes=int(num_nodes),
            num_relations=int(num_relations),
            perm=perm,
            src=src,
            dst=dst,
            rel=rel,
            offsets=offsets,
            dst_order=dst_order,
            dst_starts=dst_starts,
            dst_unique=dst_unique,
            cell_src=src * num_relations + rel,
            cell_dst=dst * num_relations + rel,
        )
        for array in (layout.perm, layout.src, layout.dst, layout.rel,
                      layout.offsets, layout.dst_order, layout.dst_starts,
                      layout.dst_unique, layout.cell_src, layout.cell_dst):
            array.setflags(write=False)
        return layout

    # ------------------------------------------------------------------ #
    def sort(self, per_edge: np.ndarray, dtype=None) -> np.ndarray:
        """Reorder a per-edge array (e.g. edge weights) into layout order."""
        per_edge = np.asarray(per_edge)
        if per_edge.shape[:1] != (self.num_edges,):
            raise ValueError("per-edge array must have one entry per edge")
        ordered = per_edge[self.perm]
        return ordered if dtype is None else ordered.astype(dtype, copy=False)

    def blocks(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(relation, start, stop)`` for every non-empty relation."""
        for relation in range(self.num_relations):
            start, stop = int(self.offsets[relation]), int(self.offsets[relation + 1])
            if start != stop:
                yield relation, start, stop

    def segment_reduce(self, values: np.ndarray, op: str = "sum",
                       fill: float = 0.0) -> np.ndarray:
        """Reduce per-edge *values* per destination node via ``reduceat``.

        ``values`` is ``(E, ...)`` in layout order; the result is
        ``(num_nodes, ...)`` with *fill* for edge-less nodes.  Within a
        destination the reduction runs in layout (relation-major) order, so
        sums are bit-identical to a sequential ``np.add.at``.
        """
        ufunc = {"sum": np.add, "max": np.maximum}[op]
        out = np.full((self.num_nodes,) + values.shape[1:], fill,
                      dtype=values.dtype)
        if self.dst_starts.size:
            out[self.dst_unique] = ufunc.reduceat(
                values[self.dst_order], self.dst_starts, axis=0)
        return out

    def scatter_matrix(self, dtype) -> Optional[object]:
        """The cached sparse dst-aggregation matrix for *dtype* (or ``None``
        when scipy is unavailable); ``matrix @ messages`` sums per node."""
        key = np.dtype(dtype).str
        matrices = self._matrices
        if key in matrices:          # lock-free fast path (GIL-atomic read)
            return matrices[key]
        with self._matrices_lock:
            if key not in matrices:
                matrices[key] = _build_scatter_matrix(self.dst, self.num_nodes,
                                                      dtype)
            return matrices[key]


class CacheInfo(NamedTuple):
    """Hit/miss/eviction statistics of an :class:`EdgeLayoutCache`.

    ``evictions`` is appended with a default so the tuple stays
    positionally compatible with its pre-observability four-field shape.
    """

    hits: int
    misses: int
    size: int
    capacity: int
    evictions: int = 0


class EdgeLayoutCache:
    """Content-addressed LRU cache of :class:`RelationalEdgeLayout` objects.

    Keys are digests of the raw ``edge_index`` / ``edge_type`` bytes plus the
    node/relation counts, so the cache works across distinct array or batch
    objects carrying the same graph (hashing ~3k edges costs microseconds;
    the sort + validation it saves costs much more, three layers per forward).

    Thread-safe: lookup, insertion, eviction and the hit/miss counters are
    lock-protected, so one cache instance (including the process-wide
    default) is shared by every serving worker.  Layout construction itself
    runs outside the lock; concurrent misses on the same graph build
    duplicate layouts and the first insert wins, keeping "same content →
    same object" true for later callers.
    """

    def __init__(self, capacity: int = 128) -> None:
        self.capacity = max(int(capacity), 0)
        self._entries: "OrderedDict[bytes, RelationalEdgeLayout]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def _key(edge_index: np.ndarray, edge_type: Optional[np.ndarray],
             num_nodes: int, num_relations: int) -> bytes:
        digest = hashlib.blake2b(digest_size=16)
        digest.update(np.ascontiguousarray(edge_index, dtype=np.int64).tobytes())
        digest.update(b"|")
        if edge_type is not None:
            digest.update(np.ascontiguousarray(edge_type, dtype=np.int64).tobytes())
        digest.update(f"|{int(num_nodes)}|{int(num_relations)}".encode())
        return digest.digest()

    def get(self, edge_index: np.ndarray, edge_type: Optional[np.ndarray],
            num_nodes: int, num_relations: int) -> RelationalEdgeLayout:
        key = self._key(edge_index, edge_type, num_nodes, num_relations)
        return self.get_keyed(key, edge_index, edge_type, num_nodes,
                              num_relations)

    def get_keyed(self, key: bytes, edge_index: np.ndarray,
                  edge_type: Optional[np.ndarray], num_nodes: int,
                  num_relations: int) -> RelationalEdgeLayout:
        """Lookup with a precomputed :func:`layout_content_key` digest.

        Callers that need the digest anyway (the packed-layout keyspace
        composes per-graph keys) hash the edge arrays once instead of twice.
        """
        with self._lock:
            layout = self._entries.get(key)
            if layout is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return layout
            self.misses += 1
        layout = RelationalEdgeLayout.build(edge_index, edge_type,
                                            num_nodes, num_relations)
        if self.capacity:
            with self._lock:
                existing = self._entries.get(key)
                if existing is not None:
                    self._entries.move_to_end(key)
                    return existing
                self._entries[key] = layout
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.evictions += 1
        return layout

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def info(self) -> CacheInfo:
        """A coherent snapshot of the counters and size (taken under the lock)."""
        with self._lock:
            return CacheInfo(hits=self.hits, misses=self.misses,
                             size=len(self._entries), capacity=self.capacity,
                             evictions=self.evictions)


#: process-wide default cache; sized for a serving tier's working set of
#: distinct (batched) graphs — alongside the Session's construction cache.
_GLOBAL_CACHE = EdgeLayoutCache(capacity=128)


def get_edge_layout(edge_index: np.ndarray, edge_type: Optional[np.ndarray],
                    num_nodes: int, num_relations: int,
                    cache: Optional[EdgeLayoutCache] = None,
                    key: Optional[bytes] = None) -> RelationalEdgeLayout:
    """Fetch (or build) the layout for a graph through an LRU cache.

    *key*, when given, must be the graph's :func:`layout_content_key` — it
    skips re-hashing the edge arrays for callers that computed it already.
    """
    cache = _GLOBAL_CACHE if cache is None else cache
    if key is not None:
        return cache.get_keyed(key, edge_index, edge_type, num_nodes,
                               num_relations)
    return cache.get(edge_index, edge_type, num_nodes, num_relations)


def edge_layout_cache_info() -> CacheInfo:
    """Hit/miss statistics of the process-wide layout cache."""
    return _GLOBAL_CACHE.info()


def layout_content_key(edge_index: np.ndarray, edge_type: Optional[np.ndarray],
                       num_nodes: int, num_relations: int) -> bytes:
    """The content digest one graph's layout is cached under.

    Exposed so other cache keyspaces (e.g. the packed-layout cache in
    :mod:`repro.gnn.packing`) can compose per-graph identities without
    re-deriving the hashing scheme — two graphs share a key exactly when
    they would share a cached layout.
    """
    return EdgeLayoutCache._key(edge_index, edge_type, num_nodes, num_relations)
