"""Graph-level pooling: reduce per-node embeddings to one vector per graph."""

from __future__ import annotations

import numpy as np

from ..nn import functional as F
from ..nn.tensor import Tensor, concatenate


def global_mean_pool(x: Tensor, batch: np.ndarray, num_graphs: int) -> Tensor:
    """Average node embeddings per graph (the paper's readout)."""
    return F.segment_mean(x, np.asarray(batch, dtype=np.int64), num_graphs)


def global_sum_pool(x: Tensor, batch: np.ndarray, num_graphs: int) -> Tensor:
    """Sum node embeddings per graph."""
    return F.segment_sum(x, np.asarray(batch, dtype=np.int64), num_graphs)


def global_max_pool(x: Tensor, batch: np.ndarray, num_graphs: int) -> Tensor:
    """Per-graph elementwise maximum (non-differentiable ties broken evenly)."""
    batch = np.asarray(batch, dtype=np.int64)
    # compute the max per graph on raw data, then recover gradients by masking
    data = x.data
    seg_max = np.full((num_graphs, data.shape[1]), -np.inf)
    np.maximum.at(seg_max, batch, data)
    seg_max[~np.isfinite(seg_max)] = 0.0
    mask = (data == seg_max[batch]).astype(np.float64)
    # normalize ties so gradient mass stays 1 per (graph, feature)
    tie_counts = np.zeros_like(seg_max)
    np.add.at(tie_counts, batch, mask)
    tie_counts = np.maximum(tie_counts, 1.0)
    weighted = x * Tensor(mask / tie_counts[batch])
    return F.segment_sum(weighted, batch, num_graphs)


def global_mean_max_pool(x: Tensor, batch: np.ndarray, num_graphs: int) -> Tensor:
    """Concatenation of mean and max pooling (richer readout variant)."""
    return concatenate(
        [global_mean_pool(x, batch, num_graphs), global_max_pool(x, batch, num_graphs)],
        axis=1,
    )
