"""Graph-level pooling: reduce per-node embeddings to one vector per graph.

The ``batch`` vector produced by :meth:`GraphEncoder.collate` is sorted
(block-diagonal batching), which the pools exploit: per-graph reductions run
as contiguous ``reduceat`` segments instead of unbuffered ``ufunc.at``
scatters, and at inference time ``global_max_pool`` skips its
gradient-routing tie machinery entirely.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import functional as F
from ..nn.tensor import Tensor, concatenate, is_inference


def _sorted_segment_reduce(data: np.ndarray, batch: np.ndarray,
                           num_graphs: int, ufunc, fill: float) -> Optional[np.ndarray]:
    """Per-graph *ufunc* reduction for a sorted ``batch`` vector, or ``None``
    when ``batch`` is unsorted (caller falls back to a scatter)."""
    if batch.size == 0 or np.any(batch[1:] < batch[:-1]):
        return None
    starts = np.concatenate([[0], np.flatnonzero(np.diff(batch)) + 1])
    out = np.full((num_graphs, data.shape[1]), fill, dtype=data.dtype)
    out[batch[starts]] = ufunc.reduceat(data, starts, axis=0)
    return out


def global_mean_pool(x: Tensor, batch: np.ndarray, num_graphs: int) -> Tensor:
    """Average node embeddings per graph (the paper's readout)."""
    batch = np.asarray(batch, dtype=np.int64)
    if is_inference() or not x.requires_grad:
        sums = _sorted_segment_reduce(x.data, batch, num_graphs, np.add, 0.0)
        if sums is not None:
            counts = np.zeros((num_graphs, 1), dtype=x.data.dtype)
            np.add.at(counts, batch, 1.0)
            return Tensor(sums / np.maximum(counts, 1.0), dtype=x.data.dtype)
    return F.segment_mean(x, batch, num_graphs)


def global_sum_pool(x: Tensor, batch: np.ndarray, num_graphs: int) -> Tensor:
    """Sum node embeddings per graph."""
    batch = np.asarray(batch, dtype=np.int64)
    if is_inference() or not x.requires_grad:
        sums = _sorted_segment_reduce(x.data, batch, num_graphs, np.add, 0.0)
        if sums is not None:
            return Tensor(sums, dtype=x.data.dtype)
    return F.segment_sum(x, batch, num_graphs)


def global_max_pool(x: Tensor, batch: np.ndarray, num_graphs: int) -> Tensor:
    """Per-graph elementwise maximum (non-differentiable ties broken evenly)."""
    batch = np.asarray(batch, dtype=np.int64)
    data = x.data
    if is_inference() or not x.requires_grad:
        # no gradient routing needed — the tie-splitting machinery below only
        # exists to spread gradient mass, and its value equals the max exactly
        seg_max = _sorted_segment_reduce(data, batch, num_graphs,
                                         np.maximum, 0.0)
        if seg_max is not None:
            return Tensor(seg_max, dtype=data.dtype)
    # compute the max per graph on raw data, then recover gradients by masking
    seg_max = np.full((num_graphs, data.shape[1]), -np.inf, dtype=data.dtype)
    np.maximum.at(seg_max, batch, data)
    seg_max[~np.isfinite(seg_max)] = 0.0
    if is_inference() or not x.requires_grad:
        return Tensor(seg_max, dtype=data.dtype)
    mask = (data == seg_max[batch]).astype(np.float64)
    # normalize ties so gradient mass stays 1 per (graph, feature)
    tie_counts = np.zeros_like(seg_max)
    np.add.at(tie_counts, batch, mask)
    tie_counts = np.maximum(tie_counts, 1.0)
    weighted = x * Tensor(mask / tie_counts[batch])
    return F.segment_sum(weighted, batch, num_graphs)


def global_mean_max_pool(x: Tensor, batch: np.ndarray, num_graphs: int) -> Tensor:
    """Concatenation of mean and max pooling (richer readout variant)."""
    return concatenate(
        [global_mean_pool(x, batch, num_graphs), global_max_pool(x, batch, num_graphs)],
        axis=1,
    )


def packed_readout(data: np.ndarray, batch: np.ndarray, num_graphs: int,
                   readout: str) -> np.ndarray:
    """Raw-array graph readout over a packed (sorted) batch vector.

    Mirrors the inference paths of the pools above operation for operation —
    ``reduceat`` over contiguous per-graph segments, the same count clamp for
    the mean — so pooling a packed multi-graph batch is bit-identical to
    pooling each graph alone: ``reduceat`` results don't depend on where a
    segment sits in the stacked array.  *readout* is one of ``"mean"``,
    ``"sum"`` or ``"mean_max"`` (the :class:`~repro.gnn.models.ParaGraphModel`
    readouts).
    """
    if readout not in {"mean", "sum", "mean_max"}:
        raise ValueError(f"unknown readout {readout!r}")
    if batch.size == 0:
        width = data.shape[1] * (2 if readout == "mean_max" else 1)
        return np.zeros((num_graphs, width), dtype=data.dtype)
    # the packed batch vector is sorted by construction, so the segment
    # starts are computed once and shared by every reduction; segment
    # lengths are exact small integers, so deriving the counts from them
    # divides out bit-identically to the pools' accumulated `add.at`
    starts = np.concatenate([[0], np.flatnonzero(np.diff(batch)) + 1])
    index = batch[starts]
    sums = np.zeros((num_graphs, data.shape[1]), dtype=data.dtype)
    sums[index] = np.add.reduceat(data, starts, axis=0)
    if readout == "sum":
        return sums
    counts = np.zeros((num_graphs, 1), dtype=data.dtype)
    counts[index, 0] = np.append(starts[1:], batch.size) - starts
    mean = sums / np.maximum(counts, 1.0)
    if readout == "mean":
        return mean
    seg_max = np.zeros((num_graphs, data.shape[1]), dtype=data.dtype)
    seg_max[index] = np.maximum.reduceat(data, starts, axis=0)
    return np.concatenate([mean, seg_max], axis=1)
