"""Relational Graph Convolution (RGCN, Schlichtkrull et al. 2018).

Not used by the headline ParaGraph model (which is RGAT-based) but provided
as an alternative relational encoder for the design-choice ablations: RGCN
replaces attention with a per-relation mean aggregation, which makes it a
natural "no attention" baseline.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import init
from ..nn.module import Parameter
from ..nn.tensor import Tensor
from .message_passing import MessagePassing, validate_edge_index


class RGCNConv(MessagePassing):
    """One relational graph-convolution layer with mean aggregation."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        num_relations: int,
        use_edge_weight: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.num_relations = num_relations
        self.use_edge_weight = use_edge_weight
        self.weight = Parameter(
            init.xavier_uniform((num_relations, in_channels, out_channels), rng))
        self.root_weight = Parameter(init.xavier_uniform((in_channels, out_channels), rng))
        self.bias = Parameter(np.zeros(out_channels))

    @property
    def output_dim(self) -> int:
        return self.out_channels

    def forward(
        self,
        x: Tensor,
        edge_index: np.ndarray,
        edge_type: Optional[np.ndarray] = None,
        edge_weight: Optional[np.ndarray] = None,
    ) -> Tensor:
        num_nodes = x.shape[0]
        edge_index = validate_edge_index(edge_index, num_nodes)
        num_edges = edge_index.shape[1]
        if edge_type is None:
            edge_type = np.zeros(num_edges, dtype=np.int64)
        else:
            edge_type = np.asarray(edge_type, dtype=np.int64)
        if edge_weight is None:
            edge_weight = np.zeros(num_edges, dtype=np.float64)
        else:
            edge_weight = np.asarray(edge_weight, dtype=np.float64)

        out = x @ self.root_weight
        for relation in range(self.num_relations):
            mask = edge_type == relation
            if not mask.any():
                continue
            src = edge_index[0, mask]
            dst = edge_index[1, mask]
            projected = x @ self.weight[relation]
            messages = projected.index_select(src)
            if self.use_edge_weight:
                messages = messages * Tensor((1.0 + edge_weight[mask])[:, None])
            out = out + self.aggregate_mean(messages, dst, num_nodes)
        return out + self.bias

    def __repr__(self) -> str:  # pragma: no cover
        return (f"RGCNConv({self.in_channels}, {self.out_channels}, "
                f"relations={self.num_relations})")
