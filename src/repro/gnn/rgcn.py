"""Relational Graph Convolution (RGCN, Schlichtkrull et al. 2018).

Not used by the headline ParaGraph model (which is RGAT-based) but provided
as an alternative relational encoder for the design-choice ablations: RGCN
replaces attention with a per-relation mean aggregation, which makes it a
natural "no attention" baseline.

Like :class:`~repro.gnn.rgat.RGATConv`, the forward pass is vectorized over
relations through a cached :class:`~repro.gnn.edge_layout.RelationalEdgeLayout`:
messages are projected per relation block (gathered rows only — never all
nodes per relation), normalized by per-(relation, destination) edge counts,
and aggregated with a single scatter-add.  The seed per-relation loop is kept
as :meth:`RGCNConv.forward_reference` for the parity regression tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import functional as F
from ..nn import init
from ..nn.module import Parameter
from ..nn.tensor import Tensor, segment_sum_data
from .edge_layout import RelationalEdgeLayout, get_edge_layout
from .message_passing import MessagePassing, validate_edge_index


class RGCNConv(MessagePassing):
    """One relational graph-convolution layer with mean aggregation."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        num_relations: int,
        use_edge_weight: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.num_relations = num_relations
        self.use_edge_weight = use_edge_weight
        self.weight = Parameter(
            init.xavier_uniform((num_relations, in_channels, out_channels), rng))
        self.root_weight = Parameter(init.xavier_uniform((in_channels, out_channels), rng))
        self.bias = Parameter(np.zeros(out_channels))

    @property
    def output_dim(self) -> int:
        return self.out_channels

    accepts_layout = True

    def forward(
        self,
        x: Tensor,
        edge_index: np.ndarray,
        edge_type: Optional[np.ndarray] = None,
        edge_weight: Optional[np.ndarray] = None,
        layout: Optional[RelationalEdgeLayout] = None,
    ) -> Tensor:
        num_nodes = x.shape[0]
        if (layout is None or layout.num_relations != self.num_relations
                or layout.num_nodes != num_nodes):
            layout = get_edge_layout(edge_index, edge_type, num_nodes,
                                     self.num_relations)
        num_edges = layout.num_edges

        out = x @ self.root_weight
        if num_edges:
            src, dst, rel = layout.src, layout.dst, layout.rel
            # only source rows are projected, so the stacked all-node path
            # pays off once R*N row-projections undercut E gathered ones
            if self.num_relations * num_nodes <= num_edges:
                projected = x @ self.weight                   # (R, N, O)
                messages = projected[(rel, src)]              # (E, O)
            else:
                messages = F.segment_matmul(x.index_select(src), self.weight,
                                            layout.offsets)   # (E, O)
            scale = np.ones(num_edges, dtype=x.data.dtype)
            if self.use_edge_weight and edge_weight is not None:
                scale += layout.sort(edge_weight, dtype=x.data.dtype)
            # fold the per-(relation, destination) mean normalization into the
            # per-edge scale, then aggregate everything with one scatter-add
            counts = np.bincount(
                layout.cell_dst,
                minlength=num_nodes * self.num_relations).astype(x.data.dtype)
            scale /= counts[layout.cell_dst]
            messages = messages * Tensor(scale[:, None], dtype=x.data.dtype)
            out = out + messages.scatter_add(dst, num_nodes)
        return out + self.bias

    def forward_packed(self, x: np.ndarray, packed,
                       edge_weight: Optional[np.ndarray] = None) -> np.ndarray:
        """Packed-batch kernel over a merged block-diagonal layout.

        Same bit-identity discipline as :meth:`RGATConv.forward_packed`:
        the root projection, the per-relation message projections and the
        scatter-add all run per graph with solo shapes (including each
        graph's own dense/sparse branch decision and the solo
        ``segment_sum_data`` size threshold), while the per-edge mean/weight
        scaling runs once over the merged layout.  Inference-only.
        """
        layout = packed.layout
        num_nodes = layout.num_nodes
        num_edges = layout.num_edges
        node_offsets = packed.node_offsets
        root = self.root_weight.data
        weight = self.weight.data
        out = np.empty((num_nodes, self.out_channels),
                       dtype=np.result_type(x, root))
        for g in range(packed.num_graphs):
            n0, n1 = int(node_offsets[g]), int(node_offsets[g + 1])
            np.matmul(x[n0:n1], root, out=out[n0:n1])
        if num_edges:
            src, dst = layout.src, layout.dst
            # chunks partition every graph's edges: each message row is
            # written exactly once, so the buffer starts uninitialised
            messages = np.empty((num_edges, self.out_channels),
                                dtype=np.result_type(x, weight))
            for g, chunks in enumerate(packed.chunks):
                if not chunks:
                    continue
                n0, n1 = int(node_offsets[g]), int(node_offsets[g + 1])
                graph_edges = sum(hi - lo for _, lo, hi in chunks)
                if self.num_relations * (n1 - n0) <= graph_edges:
                    projected = x[n0:n1] @ weight          # (R, N_g, O)
                    for relation, lo, hi in chunks:
                        messages[lo:hi] = projected[relation][src[lo:hi] - n0]
                else:
                    F.packed_segment_matmul_data(x, src, weight, chunks,
                                                 messages)
            scale = np.ones(num_edges, dtype=x.dtype)
            if self.use_edge_weight and edge_weight is not None:
                scale += layout.sort(edge_weight, dtype=x.dtype)
            counts = np.bincount(
                layout.cell_dst,
                minlength=num_nodes * self.num_relations).astype(x.dtype)
            scale /= counts[layout.cell_dst]
            messages *= scale[:, None]
            for g in range(packed.num_graphs):
                rows = packed.solo_rows(g)
                if not rows.size:
                    continue
                n0, n1 = int(node_offsets[g]), int(node_offsets[g + 1])
                out[n0:n1] += segment_sum_data(messages[rows], dst[rows] - n0,
                                               n1 - n0)
        return out + self.bias.data

    def forward_reference(
        self,
        x: Tensor,
        edge_index: np.ndarray,
        edge_type: Optional[np.ndarray] = None,
        edge_weight: Optional[np.ndarray] = None,
        layout: Optional[RelationalEdgeLayout] = None,
    ) -> Tensor:
        """The seed per-relation-loop forward (*layout* is ignored); ground
        truth for the parity regression tests and the micro-benchmark."""
        num_nodes = x.shape[0]
        edge_index = validate_edge_index(edge_index, num_nodes)
        num_edges = edge_index.shape[1]
        if edge_type is None:
            edge_type = np.zeros(num_edges, dtype=np.int64)
        else:
            edge_type = np.asarray(edge_type, dtype=np.int64)
        if edge_weight is None:
            edge_weight = np.zeros(num_edges, dtype=np.float64)
        else:
            edge_weight = np.asarray(edge_weight, dtype=np.float64)

        out = x @ self.root_weight
        for relation in range(self.num_relations):
            mask = edge_type == relation
            if not mask.any():
                continue
            src = edge_index[0, mask]
            dst = edge_index[1, mask]
            projected = x @ self.weight[relation]
            messages = projected.index_select(src)
            if self.use_edge_weight:
                messages = messages * Tensor((1.0 + edge_weight[mask])[:, None])
            out = out + self.aggregate_mean(messages, dst, num_nodes)
        return out + self.bias

    def __repr__(self) -> str:  # pragma: no cover
        return (f"RGCNConv({self.in_channels}, {self.out_channels}, "
                f"relations={self.num_relations})")
