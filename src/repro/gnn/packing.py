"""Block-diagonal packing: many graphs, one fused multi-graph forward.

The serving hot path used to run one GNN forward per graph even after the
micro-batcher coalesced requests, so coalescing bought nothing.  Packing
turns a whole micro-batch into a single block-diagonal graph: node features
concatenate, edge indices shift by per-graph node offsets, and the cached
per-graph :class:`~repro.gnn.edge_layout.RelationalEdgeLayout` objects merge
into one relation-bucketed layout in O(E) — no re-sort, no re-validation,
no per-composition ``argsort``.

**Bit-identity contract.**  A packed forward is float64 bit-identical to
predicting each graph alone, for *any* packing order or composition.  BLAS
kernels are not bit-stable across matrix shapes (OpenBLAS picks micro-kernels
by row count), so the packed kernels in :mod:`repro.gnn.rgat` /
:mod:`repro.gnn.rgcn` keep every GEMM per graph — block views with exactly
the shapes a solo forward would use, each graph keeping its own dense/sparse
branch decision — while everything that *is* composition-stable fuses across
the merged layout: edge gathers, the leaky-relu / segment-softmax /
edge-weight tail, ``reduceat`` reductions, scatter aggregation, and pooling.
The ``packed-forward-parity`` scenario in :mod:`repro.synth.harness` sweeps
this contract under random packing orders.

**Cache keyspace.**  Merged layouts are cached in their own LRU
(:class:`PackedLayoutCache`), keyed by the ordered composition of the
per-graph content digests.  Packed compositions are combinatorial (every
micro-batch shuffle is a new key), so letting them share the
``edge_layout`` LRU would thrash the hot single-graph layouts serving also
needs; the per-graph lookups still go through that main cache, keeping
single-graph entries hot.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .edge_layout import (CacheInfo, EdgeLayoutCache, RelationalEdgeLayout,
                          get_edge_layout, layout_content_key)

__all__ = [
    "PACK_NODE_BUDGET",
    "PackedBatch",
    "PackedLayout",
    "PackedLayoutCache",
    "merge_layouts",
    "pack_graphs",
    "packed_layout_cache_info",
    "split_packs",
]

#: default node budget per sub-pack (see :func:`split_packs`): big enough to
#: amortise per-forward overhead over many small graphs, small enough that a
#: pack's per-edge buffers stay cache-resident — one giant merged pack is
#: *slower* than the per-graph loop once its working set spills the LLC
PACK_NODE_BUDGET = 4096


def split_packs(graphs: Sequence, node_budget: int = PACK_NODE_BUDGET) -> List[list]:
    """Split *graphs* into consecutive sub-packs of bounded total node count.

    Packing is bit-transparent per graph, so splitting a batch changes
    nothing numerically — it only bounds each fused forward's working set.
    Order is preserved, every pack is non-empty, and a single graph larger
    than the budget still packs (alone), so any batch splits successfully.
    """
    packs: List[list] = []
    pack: list = []
    nodes = 0
    for graph in graphs:
        count = int(graph.node_features.shape[0])
        if pack and nodes + count > node_budget:
            packs.append(pack)
            pack, nodes = [], 0
        pack.append(graph)
        nodes += count
    if pack:
        packs.append(pack)
    return packs

#: per-graph chunk: ``(relation, start, stop)`` in merged-layout coordinates
Chunk = Tuple[int, int, int]


@dataclass(frozen=True, eq=False)
class PackedLayout:
    """One block-diagonal layout covering a whole micro-batch of graphs.

    ``layout`` is a full :class:`RelationalEdgeLayout` over the merged graph
    (relation-major edge order; within a relation the edges of graph 0 come
    first, then graph 1, ...), so every fused per-edge kernel — segment
    softmax, scatter matrices, ``sort`` of concatenated edge weights — works
    unchanged.  The extra arrays recover per-graph structure:

    * ``node_offsets`` / ``edge_offsets`` — ``(G+1,)`` prefix sums; graph
      ``g`` owns nodes ``node_offsets[g]:node_offsets[g+1]`` and (in solo
      concatenation order) edges ``edge_offsets[g]:edge_offsets[g+1]``.
    * ``batch`` — ``(N_total,)`` sorted graph id per node, the pooling vector.
    * ``positions`` — ``(E_total,)`` merged position of each edge in solo
      concatenation order: ``merged_array[positions[e0:e1]]`` is graph ``g``'s
      per-edge data in exactly the order its solo layout produces.
    * ``chunks`` — per graph, the ``(relation, lo, hi)`` runs its edges
      occupy in the merged layout; the packed conv kernels iterate these so
      every BLAS call keeps solo shapes.
    """

    layout: RelationalEdgeLayout
    num_graphs: int
    node_offsets: np.ndarray     # (G+1,)
    edge_offsets: np.ndarray     # (G+1,)
    batch: np.ndarray            # (N_total,) sorted graph id per node
    positions: np.ndarray        # (E_total,) solo order -> merged position
    chunks: Tuple[Tuple[Chunk, ...], ...]

    @property
    def num_nodes(self) -> int:
        return self.layout.num_nodes

    @property
    def num_edges(self) -> int:
        return self.layout.num_edges

    def solo_rows(self, graph: int) -> np.ndarray:
        """Merged positions of graph *graph*'s edges, in solo layout order."""
        lo, hi = int(self.edge_offsets[graph]), int(self.edge_offsets[graph + 1])
        return self.positions[lo:hi]


@dataclass
class PackedBatch:
    """The per-call payload for one packed forward.

    The layout is cached and shared; the arrays here are request data:
    concatenated raw node features, edge weights in *original* (pre-layout)
    edge order — ``layout.layout.sort`` reorders them exactly as each solo
    forward would — and one row of auxiliary features / targets per graph.
    """

    node_features: np.ndarray    # (N_total, F)
    edge_weight: np.ndarray      # (E_total,) original per-graph edge order
    aux_features: np.ndarray     # (G, A)
    targets: np.ndarray          # (G,)
    layout: PackedLayout

    @property
    def num_graphs(self) -> int:
        return self.layout.num_graphs


def merge_layouts(layouts: Sequence[RelationalEdgeLayout]) -> PackedLayout:
    """Merge per-graph layouts into one block-diagonal layout in O(E).

    Reuses everything the per-graph builds already paid for (stable relation
    sort, dst-major views, validation): the merged arrays are computed by
    offset arithmetic alone.  Per relation, graph order and each graph's
    internal (solo) edge order are preserved, so per-destination reductions
    run in exactly the order the solo layouts produce — the floating-point
    guarantee the packed forward's bit-identity contract rests on.
    """
    if not layouts:
        raise ValueError("merge_layouts needs at least one layout")
    num_relations = layouts[0].num_relations
    if any(l.num_relations != num_relations for l in layouts):
        raise ValueError("all layouts must share num_relations")
    num_graphs = len(layouts)
    nodes = np.array([l.num_nodes for l in layouts], dtype=np.int64)
    edges = np.array([l.num_edges for l in layouts], dtype=np.int64)
    node_offsets = np.zeros(num_graphs + 1, dtype=np.int64)
    np.cumsum(nodes, out=node_offsets[1:])
    edge_offsets = np.zeros(num_graphs + 1, dtype=np.int64)
    np.cumsum(edges, out=edge_offsets[1:])
    batch = np.repeat(np.arange(num_graphs, dtype=np.int64), nodes)

    if num_graphs == 1:
        # single-graph packs reuse the solo layout object outright, sharing
        # its per-dtype scatter-matrix memo with the unpacked serving path
        solo = layouts[0]
        packed = PackedLayout(
            layout=solo, num_graphs=1, node_offsets=node_offsets,
            edge_offsets=edge_offsets, batch=batch,
            positions=np.arange(solo.num_edges, dtype=np.int64),
            chunks=(tuple(solo.blocks()),))
        for array in (packed.node_offsets, packed.edge_offsets, packed.batch,
                      packed.positions):
            array.setflags(write=False)
        return packed

    counts = np.stack([np.diff(l.offsets) for l in layouts])        # (G, R)
    offsets = np.zeros(num_relations + 1, dtype=np.int64)
    np.cumsum(counts.sum(axis=0), out=offsets[1:])
    # start[g, r]: where graph g's relation-r run begins in the merged order
    start = offsets[:-1] + np.cumsum(counts, axis=0) - counts       # (G, R)

    total_edges = int(edge_offsets[-1])
    src = np.empty(total_edges, dtype=np.int64)
    dst = np.empty(total_edges, dtype=np.int64)
    rel = np.empty(total_edges, dtype=np.int64)
    perm = np.empty(total_edges, dtype=np.int64)
    positions = np.empty(total_edges, dtype=np.int64)
    dst_order_parts: List[np.ndarray] = []
    dst_starts_parts: List[np.ndarray] = []
    dst_unique_parts: List[np.ndarray] = []
    chunks: List[Tuple[Chunk, ...]] = []
    for g, l in enumerate(layouts):
        e0, e1 = int(edge_offsets[g]), int(edge_offsets[g + 1])
        if e0 == e1:
            chunks.append(())
            continue
        # merged position of each solo edge: its relation run's start plus
        # its within-relation rank; strictly increasing over solo positions,
        # so the solo edge order survives inside every merged view
        map_g = (start[g] - l.offsets[:-1])[l.rel] + np.arange(e1 - e0)
        src[map_g] = l.src + node_offsets[g]
        dst[map_g] = l.dst + node_offsets[g]
        rel[map_g] = l.rel
        perm[map_g] = l.perm + e0
        positions[e0:e1] = map_g
        # node offsets make merged dst graph-major and map_g preserves the
        # within-graph tie order, so the solo dst-major machinery composes
        # by concatenation
        dst_order_parts.append(map_g[l.dst_order])
        dst_starts_parts.append(l.dst_starts + e0)
        dst_unique_parts.append(l.dst_unique + node_offsets[g])
        chunks.append(tuple(
            (r, int(start[g, r]), int(start[g, r] + counts[g, r]))
            for r in range(num_relations) if counts[g, r]))

    def concat(parts: List[np.ndarray]) -> np.ndarray:
        return np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)

    merged = RelationalEdgeLayout(
        num_nodes=int(node_offsets[-1]),
        num_relations=num_relations,
        perm=perm,
        src=src,
        dst=dst,
        rel=rel,
        offsets=offsets,
        dst_order=concat(dst_order_parts),
        dst_starts=concat(dst_starts_parts),
        dst_unique=concat(dst_unique_parts),
        cell_src=src * num_relations + rel,
        cell_dst=dst * num_relations + rel,
    )
    packed = PackedLayout(layout=merged, num_graphs=num_graphs,
                          node_offsets=node_offsets, edge_offsets=edge_offsets,
                          batch=batch, positions=positions,
                          chunks=tuple(chunks))
    for array in (merged.perm, merged.src, merged.dst, merged.rel,
                  merged.offsets, merged.dst_order, merged.dst_starts,
                  merged.dst_unique, merged.cell_src, merged.cell_dst,
                  packed.node_offsets, packed.edge_offsets, packed.batch,
                  packed.positions):
        array.setflags(write=False)
    return packed


class PackedLayoutCache:
    """Content-addressed LRU for merged :class:`PackedLayout` objects.

    Keyed by the *ordered composition* of per-graph layout digests
    (:func:`~repro.gnn.edge_layout.layout_content_key`), so the same
    micro-batch composition — regardless of which array objects carry it —
    reuses one merged layout (and its cached scatter matrices).  Deliberately
    separate from the ``edge_layout`` LRU: compositions are combinatorial and
    would otherwise evict the hot single-graph layouts.

    Same locking discipline as :class:`EdgeLayoutCache`: counters and the
    LRU order are lock-protected, merges run outside the lock, first insert
    wins on concurrent misses.
    """

    def __init__(self, capacity: int = 64) -> None:
        self.capacity = max(int(capacity), 0)
        self._entries: "OrderedDict[bytes, PackedLayout]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def _key(graph_keys: Sequence[bytes]) -> bytes:
        digest = hashlib.blake2b(digest_size=16)
        for graph_key in graph_keys:        # fixed-size digests: order-exact
            digest.update(graph_key)
        return digest.digest()

    def get(self, graph_keys: Sequence[bytes],
            layouts: Sequence[RelationalEdgeLayout]) -> PackedLayout:
        key = self._key(graph_keys)
        with self._lock:
            packed = self._entries.get(key)
            if packed is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return packed
            self.misses += 1
        packed = merge_layouts(layouts)
        if self.capacity:
            with self._lock:
                existing = self._entries.get(key)
                if existing is not None:
                    self._entries.move_to_end(key)
                    return existing
                self._entries[key] = packed
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.evictions += 1
        return packed

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def info(self) -> CacheInfo:
        with self._lock:
            return CacheInfo(hits=self.hits, misses=self.misses,
                             size=len(self._entries), capacity=self.capacity,
                             evictions=self.evictions)


#: process-wide packed-layout cache — its own keyspace, see the module
#: docstring; sized for a serving tier's working set of hot compositions.
_PACKED_CACHE = PackedLayoutCache(capacity=64)


def packed_layout_cache_info() -> CacheInfo:
    """Hit/miss statistics of the process-wide packed-layout cache."""
    return _PACKED_CACHE.info()


def pack_graphs(graphs: Iterable, num_relations: int,
                cache: Optional[PackedLayoutCache] = None,
                layout_cache: Optional[EdgeLayoutCache] = None) -> PackedBatch:
    """Pack encoded graphs into one block-diagonal :class:`PackedBatch`.

    Per-graph layouts come from the main ``edge_layout`` LRU (*layout_cache*,
    defaulting to the process-wide one) — those are the entries single-graph
    serving keeps hot — while the merged layout lives in the separate packed
    cache (*cache*).  Node features and edge weights concatenate in graph
    order; ``aux_features`` / ``targets`` stack one row per graph.
    """
    graphs = list(graphs)
    if not graphs:
        raise ValueError("pack_graphs needs at least one graph")
    # tracing hook: one global read when no collector is active
    from ..obs.tracing import span
    with span("engine.pack", num_graphs=len(graphs)):
        return _pack_graphs(graphs, num_relations, cache, layout_cache)


def _pack_graphs(graphs: List, num_relations: int,
                 cache: Optional[PackedLayoutCache],
                 layout_cache: Optional[EdgeLayoutCache]) -> PackedBatch:
    layouts = []
    keys = []
    for graph in graphs:
        num_nodes = int(graph.node_features.shape[0])
        key = layout_content_key(graph.edge_index, graph.edge_type,
                                 num_nodes, num_relations)
        keys.append(key)
        layouts.append(get_edge_layout(graph.edge_index, graph.edge_type,
                                       num_nodes, num_relations,
                                       cache=layout_cache, key=key))
    packed_cache = _PACKED_CACHE if cache is None else cache
    layout = packed_cache.get(keys, layouts)

    node_features = np.concatenate([g.node_features for g in graphs], axis=0)
    weights = [np.zeros(l.num_edges, dtype=np.float64) if g.edge_weight is None
               else np.asarray(g.edge_weight, dtype=np.float64)
               for g, l in zip(graphs, layouts)]
    edge_weight = (np.concatenate(weights) if layout.num_edges
                   else np.zeros(0, dtype=np.float64))
    aux_features = np.stack(
        [np.asarray(g.aux_features, dtype=np.float64) for g in graphs])
    targets = np.array([float(g.target) for g in graphs], dtype=np.float64)
    return PackedBatch(node_features=node_features, edge_weight=edge_weight,
                       aux_features=aux_features, targets=targets,
                       layout=layout)
