"""Relational Graph Attention convolution (RGAT, Busbridge et al. 2019).

The ParaGraph model uses three RGAT layers as its graph encoder (§IV-B of the
paper: "the model uses three graph convolution layers based on RGAT").  RGAT
extends GAT to multi-relational graphs: every relation (edge type) has its own
projection matrix and its own attention parameters, and "attention logits are
computed per each edge type" (§III-B).

This implementation follows the ARGAT (across-relation) normalization: the
attention coefficients of *all* edges entering a node — regardless of their
relation — are normalized jointly with a softmax.  ParaGraph's Child-edge
weights enter the layer multiplicatively: each message is scaled by
``1 + w_e`` where ``w_e`` is the (scaled) edge weight, so heavier edges (hot
loop bodies) contribute proportionally more to the embedding, while the
weightless augmentation edges (w = 0) are unaffected.

The forward pass is fully vectorized over relations: a cached
relation-bucketed :class:`~repro.gnn.edge_layout.RelationalEdgeLayout`
feeds either one stacked batched-matmul projection of all nodes (dense
graphs) or a gather → :func:`~repro.nn.functional.segment_matmul` of only
the rows each relation actually touches (sparse relations), followed by a
fused gather → message → segment-softmax → scatter-add with no Python loop
over relations.  The seed per-relation-loop implementation is kept as
:meth:`RGATConv.forward_reference` for parity regression tests and the
``benchmarks/test_perf_gnn_forward.py`` micro-benchmark.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..nn import functional as F
from ..nn import init
from ..nn.module import Parameter
from ..nn.tensor import Tensor, concatenate, is_inference, segment_sum_data
from .edge_layout import RelationalEdgeLayout, get_edge_layout
from .message_passing import MessagePassing, validate_edge_index


class RGATConv(MessagePassing):
    """One relational graph-attention layer.

    Parameters
    ----------
    in_channels, out_channels:
        Input / output node-feature dimensionality.
    num_relations:
        Number of edge types (8 for ParaGraph; 1 collapses to plain GAT).
    heads:
        Number of attention heads; head outputs are concatenated, so the
        effective output width is ``out_channels * heads``.
    negative_slope:
        Slope of the LeakyReLU applied to attention logits.
    use_edge_weight:
        Whether to modulate messages with the ParaGraph edge weights (this is
        the switch the ablation study flips between Augmented AST and full
        ParaGraph).
    add_self_messages:
        Add a learned self-transformation of each node to the aggregated
        messages (keeps information flowing for isolated nodes).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        num_relations: int,
        heads: int = 1,
        negative_slope: float = 0.2,
        use_edge_weight: bool = True,
        add_self_messages: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if num_relations < 1:
            raise ValueError("num_relations must be >= 1")
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.num_relations = num_relations
        self.heads = heads
        self.negative_slope = negative_slope
        self.use_edge_weight = use_edge_weight
        self.add_self_messages = add_self_messages

        # one projection and one attention vector pair per relation
        self.weight = Parameter(
            init.xavier_uniform((num_relations, in_channels, heads * out_channels), rng))
        self.att_src = Parameter(
            init.xavier_uniform((num_relations, heads, out_channels), rng))
        self.att_dst = Parameter(
            init.xavier_uniform((num_relations, heads, out_channels), rng))
        if add_self_messages:
            self.self_weight = Parameter(
                init.xavier_uniform((in_channels, heads * out_channels), rng))
        else:
            self.self_weight = None
        self.bias = Parameter(np.zeros(heads * out_channels))

    # ------------------------------------------------------------------ #
    @property
    def output_dim(self) -> int:
        return self.heads * self.out_channels

    #: :class:`~repro.gnn.models.ParaGraphModel` passes its per-forward cached
    #: edge layout to layers advertising this flag.
    accepts_layout = True

    def forward(
        self,
        x: Tensor,
        edge_index: np.ndarray,
        edge_type: Optional[np.ndarray] = None,
        edge_weight: Optional[np.ndarray] = None,
        layout: Optional[RelationalEdgeLayout] = None,
    ) -> Tensor:
        num_nodes = x.shape[0]
        if (layout is None or layout.num_relations != self.num_relations
                or layout.num_nodes != num_nodes):
            # validation (edge_index shape/range, edge_type range) happens
            # once inside the cached layout build, not per layer per forward
            layout = get_edge_layout(edge_index, edge_type, num_nodes,
                                     self.num_relations)
        num_edges = layout.num_edges

        heads, out_channels = self.heads, self.out_channels

        if num_edges and is_inference():
            # inference fast path: fused pure-NumPy kernel, no Tensor ops
            return self._forward_fused(x, layout, edge_weight)

        if num_edges == 0:
            aggregated = Tensor(np.zeros((num_nodes, heads * out_channels)),
                                dtype=x.data.dtype)
        else:
            src, dst, rel = layout.src, layout.dst, layout.rel

            # stacked per-relation projection: project every node once per
            # relation in a single batched matmul when the graph is dense
            # enough to amortize it, otherwise project only the gathered
            # source/destination rows relation-block by relation-block
            if self.num_relations * num_nodes <= 2 * num_edges:
                projected = x @ self.weight                  # (R, N, H*C)
                # per-node attention scores first, so per-edge work gathers
                # (E, H) scalars instead of (E, H, C) vectors
                p4 = projected.reshape(self.num_relations, num_nodes,
                                       heads, out_channels)
                score_src = (p4 * self.att_src.reshape(
                    self.num_relations, 1, heads, out_channels)).sum(axis=3)
                score_dst = (p4 * self.att_dst.reshape(
                    self.num_relations, 1, heads, out_channels)).sum(axis=3)
                h_src = projected[(rel, src)].reshape(num_edges, heads,
                                                      out_channels)
                logit = score_src[(rel, src)] + score_dst[(rel, dst)]  # (E, H)
            else:
                h_src = F.segment_matmul(x.index_select(src), self.weight,
                                         layout.offsets)     # (E, H*C)
                h_dst = F.segment_matmul(x.index_select(dst), self.weight,
                                         layout.offsets)
                h_src = h_src.reshape(num_edges, heads, out_channels)
                h_dst = h_dst.reshape(num_edges, heads, out_channels)
                att_src = self.att_src.index_select(rel)     # (E, H, C)
                att_dst = self.att_dst.index_select(rel)
                logit = (h_src * att_src).sum(axis=2) \
                    + (h_dst * att_dst).sum(axis=2)          # (E, H)
            logit = F.leaky_relu(logit, self.negative_slope)

            # across-relation attention normalization per destination node,
            # fused with the ParaGraph edge-weight modulation into a single
            # per-edge coefficient so h_src is scaled exactly once
            alpha = F.segment_softmax(logit, dst, num_nodes)  # (E, H)
            if self.use_edge_weight and edge_weight is not None:
                weights = layout.sort(edge_weight, dtype=x.data.dtype)
                alpha = alpha * Tensor((1.0 + weights)[:, None],
                                       dtype=x.data.dtype)
            weighted = h_src * alpha.reshape(num_edges, heads, 1)
            aggregated = self.aggregate_sum(weighted, dst, num_nodes)
            aggregated = aggregated.reshape(num_nodes, heads * out_channels)

        if self.self_weight is not None:
            aggregated = aggregated + (x @ self.self_weight)
        return aggregated + self.bias

    def _fused_pack(self, dtype):
        """Pre-packed single-GEMM weights for the fused dense kernel.

        ``W2`` is the relation-stacked projection reshaped to ``(F, R*H*C)``
        so all relations project in one BLAS call, and ``A_src`` / ``A_dst``
        fold the attention vectors into the projection
        (``score = x @ (W · att)``), shape ``(F, R*H)`` — attention scores
        never materialise the per-node, per-relation feature block.  Cached
        per conv *and per dtype* (float32 serving and float64 parity calls
        interleave across serving threads), keyed by the identity of the
        (possibly dtype-cast) parameter arrays so a pack lives until the
        weights change; entries are idempotent, so racing builders are safe
        without a lock.
        """
        weight, att_src, att_dst = self.weight.data, self.att_src.data, self.att_dst.data
        key = np.dtype(dtype).str
        cache = self.__dict__.setdefault("_fused_pack_cache", {})
        cached = cache.get(key)
        if cached is not None and cached[0] is weight and cached[1] is att_src \
                and cached[2] is att_dst:
            return cached[3:]
        num_relations, in_channels = weight.shape[0], weight.shape[1]
        heads, out_channels = self.heads, self.out_channels
        w4 = weight.reshape(num_relations, in_channels, heads, out_channels)
        packed_w = np.ascontiguousarray(
            weight.transpose(1, 0, 2).reshape(in_channels, -1))
        packed_a_src = np.ascontiguousarray(
            np.einsum("rfhc,rhc->rfh", w4, att_src)
            .transpose(1, 0, 2).reshape(in_channels, -1))
        packed_a_dst = np.ascontiguousarray(
            np.einsum("rfhc,rhc->rfh", w4, att_dst)
            .transpose(1, 0, 2).reshape(in_channels, -1))
        cache[key] = (weight, att_src, att_dst,
                      packed_w, packed_a_src, packed_a_dst)
        return packed_w, packed_a_src, packed_a_dst

    def _forward_fused(self, x: Tensor, layout: RelationalEdgeLayout,
                       edge_weight: Optional[np.ndarray]) -> Tensor:
        """Fused no-autodiff kernel: gather → message → softmax → scatter.

        Runs only under :func:`repro.nn.no_grad` (``Tensor.inference``); works
        on raw arrays with pre-packed weights, scales messages in place and
        aggregates through the cached sparse scatter matrix, so a forward
        pass allocates nothing but its per-edge buffers.
        """
        xd = x.data
        num_nodes = xd.shape[0]
        num_edges = layout.num_edges
        heads, out_channels = self.heads, self.out_channels
        src, dst, rel = layout.src, layout.dst, layout.rel
        weight = self.weight.data

        if self.num_relations * num_nodes <= 2 * num_edges:
            packed_w, packed_a_src, packed_a_dst = self._fused_pack(xd.dtype)
            projected = xd @ packed_w                        # (N, R*H*C)
            score_src = xd @ packed_a_src                    # (N, R*H)
            score_dst = xd @ packed_a_dst
            h = projected.reshape(-1, heads, out_channels)[layout.cell_src]
            logit = score_src.reshape(-1, heads)[layout.cell_src] \
                + score_dst.reshape(-1, heads)[layout.cell_dst]   # (E, H)
        else:
            out_dtype = np.result_type(xd, weight)
            x_src, x_dst = xd[src], xd[dst]
            h = np.zeros((num_edges, heads * out_channels), dtype=out_dtype)
            h_dst = np.zeros_like(h)
            for relation, lo, hi in layout.blocks():
                np.matmul(x_src[lo:hi], weight[relation], out=h[lo:hi])
                np.matmul(x_dst[lo:hi], weight[relation], out=h_dst[lo:hi])
            h = h.reshape(num_edges, heads, out_channels)
            h_dst = h_dst.reshape(num_edges, heads, out_channels)
            logit = np.einsum("ehc,ehc->eh", h, self.att_src.data[rel]) \
                + np.einsum("ehc,ehc->eh", h_dst, self.att_dst.data[rel])

        logit = np.where(logit > 0, logit, self.negative_slope * logit)
        # segment softmax over destinations, in place on the logit buffer;
        # per-node reductions run as reduceat over the layout's dst-major view
        seg_max = layout.segment_reduce(logit, op="max")
        logit -= seg_max[dst]
        np.exp(logit, out=logit)
        denom = layout.segment_reduce(logit, op="sum")
        logit /= (denom + 1e-16)[dst]                        # alpha (E, H)
        if self.use_edge_weight and edge_weight is not None:
            logit *= (1.0 + layout.sort(edge_weight, dtype=logit.dtype))[:, None]
        h *= logit[:, :, None]                               # in-place scaling
        messages = h.reshape(num_edges, heads * out_channels)
        matrix = layout.scatter_matrix(messages.dtype)
        if matrix is not None:
            aggregated = np.asarray(matrix @ messages)
        else:                       # no scipy: generic segment-sum fallback
            aggregated = segment_sum_data(messages, dst, num_nodes)
        if self.self_weight is not None:
            aggregated += xd @ self.self_weight.data
        aggregated += self.bias.data
        return Tensor(aggregated, dtype=aggregated.dtype)

    def forward_packed(self, x: np.ndarray, packed,
                       edge_weight: Optional[np.ndarray] = None) -> np.ndarray:
        """Fused packed-batch kernel: many graphs, one block-diagonal pass.

        *packed* is a :class:`~repro.gnn.packing.PackedLayout`; *x* is the
        concatenated node features, *edge_weight* the concatenated weights in
        original per-graph edge order.  Bit-identity contract (see
        :mod:`repro.gnn.packing`): every BLAS call runs per graph — block
        views with exactly the shapes the solo :meth:`_forward_fused` uses,
        and each graph keeps its own dense/sparse branch decision — while the
        composition-stable per-edge tail (leaky-relu, segment softmax,
        edge-weight scaling, scatter aggregation) runs once over the merged
        layout.  Inference-only: raw arrays, no autodiff.
        """
        layout = packed.layout
        heads, out_channels = self.heads, self.out_channels
        num_nodes = layout.num_nodes
        num_edges = layout.num_edges
        node_offsets = packed.node_offsets
        weight = self.weight.data
        out_dtype = np.result_type(x, weight)
        if num_edges == 0:
            aggregated = np.zeros((num_nodes, heads * out_channels),
                                  dtype=out_dtype)
        else:
            src, dst = layout.src, layout.dst
            # chunks partition every graph's edges, so each row of h / logit
            # is written exactly once below — the buffers start uninitialised
            h = np.empty((num_edges, heads, out_channels), dtype=out_dtype)
            logit = np.empty((num_edges, heads), dtype=out_dtype)
            flat = h.reshape(num_edges, heads * out_channels)
            att_src, att_dst = self.att_src.data, self.att_dst.data
            for g, chunks in enumerate(packed.chunks):
                if not chunks:
                    continue
                n0, n1 = int(node_offsets[g]), int(node_offsets[g + 1])
                graph_edges = sum(hi - lo for _, lo, hi in chunks)
                if self.num_relations * (n1 - n0) <= 2 * graph_edges:
                    packed_w, packed_a_src, packed_a_dst = self._fused_pack(x.dtype)
                    xg = x[n0:n1]
                    proj = (xg @ packed_w).reshape(-1, heads, out_channels)
                    score_src = (xg @ packed_a_src).reshape(-1, heads)
                    score_dst = (xg @ packed_a_dst).reshape(-1, heads)
                    base = n0 * self.num_relations   # global → graph-local cell
                    for _, lo, hi in chunks:
                        cell_s = layout.cell_src[lo:hi] - base
                        h[lo:hi] = proj[cell_s]
                        logit[lo:hi] = score_src[cell_s] \
                            + score_dst[layout.cell_dst[lo:hi] - base]
                else:
                    # GEMMs write straight into the packed buffer; within a
                    # chunk every edge shares one relation, so the attention
                    # vectors broadcast instead of gathering (E, H, C) rows
                    for relation, lo, hi in chunks:
                        np.matmul(x[src[lo:hi]], weight[relation],
                                  out=flat[lo:hi])
                        h_dst = (x[dst[lo:hi]] @ weight[relation]).reshape(
                            hi - lo, heads, out_channels)
                        np.einsum("ehc,hc->eh", h[lo:hi], att_src[relation],
                                  out=logit[lo:hi])
                        logit[lo:hi] += np.einsum("ehc,hc->eh", h_dst,
                                                  att_dst[relation])

            logit = np.where(logit > 0, logit, self.negative_slope * logit)
            seg_max = layout.segment_reduce(logit, op="max")
            logit -= seg_max[dst]
            np.exp(logit, out=logit)
            denom = layout.segment_reduce(logit, op="sum")
            logit /= (denom + 1e-16)[dst]
            if self.use_edge_weight and edge_weight is not None:
                logit *= (1.0 + layout.sort(edge_weight,
                                            dtype=logit.dtype))[:, None]
            h *= logit[:, :, None]
            messages = h.reshape(num_edges, heads * out_channels)
            matrix = layout.scatter_matrix(messages.dtype)
            if matrix is not None:
                aggregated = np.asarray(matrix @ messages)
            else:               # no scipy: per-graph segment sums, solo order
                aggregated = np.zeros((num_nodes, heads * out_channels),
                                      dtype=out_dtype)
                for g in range(packed.num_graphs):
                    rows = packed.solo_rows(g)
                    if not rows.size:
                        continue
                    n0, n1 = int(node_offsets[g]), int(node_offsets[g + 1])
                    aggregated[n0:n1] = segment_sum_data(
                        messages[rows], dst[rows] - n0, n1 - n0)
        if self.self_weight is not None:
            self_w = self.self_weight.data
            for g in range(packed.num_graphs):
                n0, n1 = int(node_offsets[g]), int(node_offsets[g + 1])
                aggregated[n0:n1] += x[n0:n1] @ self_w
        aggregated += self.bias.data
        return aggregated

    def forward_reference(
        self,
        x: Tensor,
        edge_index: np.ndarray,
        edge_type: Optional[np.ndarray] = None,
        edge_weight: Optional[np.ndarray] = None,
        layout: Optional[RelationalEdgeLayout] = None,
    ) -> Tensor:
        """The seed per-relation-loop forward (*layout* is ignored).

        Kept as the ground truth for the vectorized kernel: parity regression
        tests assert ``forward == forward_reference`` to float64 precision,
        and the GNN micro-benchmark measures the speedup against it.
        """
        num_nodes = x.shape[0]
        edge_index = validate_edge_index(edge_index, num_nodes)
        num_edges = edge_index.shape[1]
        if edge_type is None:
            edge_type = np.zeros(num_edges, dtype=np.int64)
        else:
            edge_type = np.asarray(edge_type, dtype=np.int64)
        if edge_type.shape != (num_edges,):
            raise ValueError("edge_type must have one entry per edge")
        if edge_type.size and (edge_type.min() < 0 or edge_type.max() >= self.num_relations):
            raise ValueError("edge_type outside [0, num_relations)")
        if edge_weight is None:
            edge_weight = np.zeros(num_edges, dtype=np.float64)
        else:
            edge_weight = np.asarray(edge_weight, dtype=np.float64)

        heads, out_channels = self.heads, self.out_channels

        if num_edges == 0:
            aggregated = Tensor(np.zeros((num_nodes, heads * out_channels)))
        else:
            logits_parts: List[Tensor] = []
            messages_parts: List[Tensor] = []
            dst_parts: List[np.ndarray] = []
            for relation in range(self.num_relations):
                mask = edge_type == relation
                if not mask.any():
                    continue
                src = edge_index[0, mask]
                dst = edge_index[1, mask]
                weights = edge_weight[mask]
                # project all nodes with this relation's matrix, then gather
                projected = (x @ self.weight[relation]).reshape(num_nodes, heads, out_channels)
                h_src = projected.index_select(src)          # (e_r, H, C)
                h_dst = projected.index_select(dst)
                logit = (h_src * self.att_src[relation]).sum(axis=2) \
                    + (h_dst * self.att_dst[relation]).sum(axis=2)   # (e_r, H)
                logit = F.leaky_relu(logit, self.negative_slope)
                message = h_src
                if self.use_edge_weight:
                    scale = (1.0 + weights)[:, None, None]
                    message = message * Tensor(scale)
                logits_parts.append(logit)
                messages_parts.append(message)
                dst_parts.append(dst)

            logits = concatenate(logits_parts, axis=0)          # (E, H)
            messages = concatenate(messages_parts, axis=0)      # (E, H, C)
            dst_all = np.concatenate(dst_parts)
            # across-relation attention normalization per destination node
            alpha = F.segment_softmax(logits, dst_all, num_nodes)   # (E, H)
            weighted = messages * alpha.reshape(alpha.shape[0], heads, 1)
            aggregated = self.aggregate_sum(weighted, dst_all, num_nodes)
            aggregated = aggregated.reshape(num_nodes, heads * out_channels)

        if self.self_weight is not None:
            aggregated = aggregated + (x @ self.self_weight)
        return aggregated + self.bias

    def __repr__(self) -> str:  # pragma: no cover
        return (f"RGATConv({self.in_channels}, {self.out_channels}, "
                f"relations={self.num_relations}, heads={self.heads})")
