"""Relational Graph Attention convolution (RGAT, Busbridge et al. 2019).

The ParaGraph model uses three RGAT layers as its graph encoder (§IV-B of the
paper: "the model uses three graph convolution layers based on RGAT").  RGAT
extends GAT to multi-relational graphs: every relation (edge type) has its own
projection matrix and its own attention parameters, and "attention logits are
computed per each edge type" (§III-B).

This implementation follows the ARGAT (across-relation) normalization: the
attention coefficients of *all* edges entering a node — regardless of their
relation — are normalized jointly with a softmax.  ParaGraph's Child-edge
weights enter the layer multiplicatively: each message is scaled by
``1 + w_e`` where ``w_e`` is the (scaled) edge weight, so heavier edges (hot
loop bodies) contribute proportionally more to the embedding, while the
weightless augmentation edges (w = 0) are unaffected.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..nn import functional as F
from ..nn import init
from ..nn.module import Parameter
from ..nn.tensor import Tensor, concatenate
from .message_passing import MessagePassing, validate_edge_index


class RGATConv(MessagePassing):
    """One relational graph-attention layer.

    Parameters
    ----------
    in_channels, out_channels:
        Input / output node-feature dimensionality.
    num_relations:
        Number of edge types (8 for ParaGraph; 1 collapses to plain GAT).
    heads:
        Number of attention heads; head outputs are concatenated, so the
        effective output width is ``out_channels * heads``.
    negative_slope:
        Slope of the LeakyReLU applied to attention logits.
    use_edge_weight:
        Whether to modulate messages with the ParaGraph edge weights (this is
        the switch the ablation study flips between Augmented AST and full
        ParaGraph).
    add_self_messages:
        Add a learned self-transformation of each node to the aggregated
        messages (keeps information flowing for isolated nodes).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        num_relations: int,
        heads: int = 1,
        negative_slope: float = 0.2,
        use_edge_weight: bool = True,
        add_self_messages: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if num_relations < 1:
            raise ValueError("num_relations must be >= 1")
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.num_relations = num_relations
        self.heads = heads
        self.negative_slope = negative_slope
        self.use_edge_weight = use_edge_weight
        self.add_self_messages = add_self_messages

        # one projection and one attention vector pair per relation
        self.weight = Parameter(
            init.xavier_uniform((num_relations, in_channels, heads * out_channels), rng))
        self.att_src = Parameter(
            init.xavier_uniform((num_relations, heads, out_channels), rng))
        self.att_dst = Parameter(
            init.xavier_uniform((num_relations, heads, out_channels), rng))
        if add_self_messages:
            self.self_weight = Parameter(
                init.xavier_uniform((in_channels, heads * out_channels), rng))
        else:
            self.self_weight = None
        self.bias = Parameter(np.zeros(heads * out_channels))

    # ------------------------------------------------------------------ #
    @property
    def output_dim(self) -> int:
        return self.heads * self.out_channels

    def forward(
        self,
        x: Tensor,
        edge_index: np.ndarray,
        edge_type: Optional[np.ndarray] = None,
        edge_weight: Optional[np.ndarray] = None,
    ) -> Tensor:
        num_nodes = x.shape[0]
        edge_index = validate_edge_index(edge_index, num_nodes)
        num_edges = edge_index.shape[1]
        if edge_type is None:
            edge_type = np.zeros(num_edges, dtype=np.int64)
        else:
            edge_type = np.asarray(edge_type, dtype=np.int64)
        if edge_type.shape != (num_edges,):
            raise ValueError("edge_type must have one entry per edge")
        if edge_type.size and (edge_type.min() < 0 or edge_type.max() >= self.num_relations):
            raise ValueError("edge_type outside [0, num_relations)")
        if edge_weight is None:
            edge_weight = np.zeros(num_edges, dtype=np.float64)
        else:
            edge_weight = np.asarray(edge_weight, dtype=np.float64)

        heads, out_channels = self.heads, self.out_channels

        if num_edges == 0:
            aggregated = Tensor(np.zeros((num_nodes, heads * out_channels)))
        else:
            logits_parts: List[Tensor] = []
            messages_parts: List[Tensor] = []
            dst_parts: List[np.ndarray] = []
            for relation in range(self.num_relations):
                mask = edge_type == relation
                if not mask.any():
                    continue
                src = edge_index[0, mask]
                dst = edge_index[1, mask]
                weights = edge_weight[mask]
                # project all nodes with this relation's matrix, then gather
                projected = (x @ self.weight[relation]).reshape(num_nodes, heads, out_channels)
                h_src = projected.index_select(src)          # (e_r, H, C)
                h_dst = projected.index_select(dst)
                logit = (h_src * self.att_src[relation]).sum(axis=2) \
                    + (h_dst * self.att_dst[relation]).sum(axis=2)   # (e_r, H)
                logit = F.leaky_relu(logit, self.negative_slope)
                message = h_src
                if self.use_edge_weight:
                    scale = (1.0 + weights)[:, None, None]
                    message = message * Tensor(scale)
                logits_parts.append(logit)
                messages_parts.append(message)
                dst_parts.append(dst)

            logits = concatenate(logits_parts, axis=0)          # (E, H)
            messages = concatenate(messages_parts, axis=0)      # (E, H, C)
            dst_all = np.concatenate(dst_parts)
            # across-relation attention normalization per destination node
            alpha = F.segment_softmax(logits, dst_all, num_nodes)   # (E, H)
            weighted = messages * alpha.reshape(alpha.shape[0], heads, 1)
            aggregated = self.aggregate_sum(weighted, dst_all, num_nodes)
            aggregated = aggregated.reshape(num_nodes, heads * out_channels)

        if self.self_weight is not None:
            aggregated = aggregated + (x @ self.self_weight)
        return aggregated + self.bias

    def __repr__(self) -> str:  # pragma: no cover
        return (f"RGATConv({self.in_channels}, {self.out_channels}, "
                f"relations={self.num_relations}, heads={self.heads})")
