"""Message-passing scaffolding shared by the GNN convolution layers.

The convolutions in this package follow the standard gather → message →
aggregate → update scheme over an edge list:

1. gather the source / destination node states for every edge,
2. compute per-edge messages (possibly modulated by attention coefficients
   and by the ParaGraph edge weights),
3. aggregate messages per destination node (sum or mean),
4. update node states.

:class:`MessagePassing` provides the shared plumbing; concrete layers
(:class:`~repro.gnn.rgat.RGATConv`, :class:`~repro.gnn.rgcn.RGCNConv`,
:class:`~repro.gnn.gat.GATConv`) override :meth:`forward`.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Optional, Tuple

import numpy as np

from ..nn import functional as F
from ..nn.module import Module
from ..nn.tensor import Tensor


def validate_edge_index(edge_index: np.ndarray, num_nodes: int) -> np.ndarray:
    """Check an edge-index array and return it as int64 of shape (2, E)."""
    edge_index = np.asarray(edge_index, dtype=np.int64)
    if edge_index.ndim != 2 or edge_index.shape[0] != 2:
        raise ValueError(f"edge_index must have shape (2, E), got {edge_index.shape}")
    if edge_index.size and (edge_index.min() < 0 or edge_index.max() >= num_nodes):
        raise ValueError("edge_index references nodes outside [0, num_nodes)")
    return edge_index


def add_self_loops(edge_index: np.ndarray, num_nodes: int,
                   edge_type: Optional[np.ndarray] = None,
                   self_loop_type: int = 0,
                   edge_weight: Optional[np.ndarray] = None,
                   self_loop_weight: float = 0.0) -> Tuple[np.ndarray, Optional[np.ndarray], Optional[np.ndarray]]:
    """Append one self-loop per node to the edge list.

    Self-loops let a node keep its own state during aggregation; they are
    given their own relation id (``self_loop_type``) so the relational layers
    learn a separate transformation for them.
    """
    loops = np.arange(num_nodes, dtype=np.int64)
    loop_index = np.stack([loops, loops])
    new_index = np.concatenate([edge_index, loop_index], axis=1)
    new_type = None
    if edge_type is not None:
        new_type = np.concatenate([np.asarray(edge_type, dtype=np.int64),
                                   np.full(num_nodes, self_loop_type, dtype=np.int64)])
    new_weight = None
    if edge_weight is not None:
        new_weight = np.concatenate([np.asarray(edge_weight, dtype=np.float64),
                                     np.full(num_nodes, self_loop_weight)])
    return new_index, new_type, new_weight


#: content-addressed LRU for :func:`cached_add_self_loops` (key: digest of the
#: inputs); sized for a serving tier's working set of distinct graphs and
#: lock-protected so concurrent serving workers can share it.
_SELF_LOOP_CACHE: "OrderedDict[bytes, Tuple[np.ndarray, Optional[np.ndarray], Optional[np.ndarray]]]" = OrderedDict()
_SELF_LOOP_CACHE_CAPACITY = 128
_SELF_LOOP_CACHE_LOCK = threading.Lock()


def cached_add_self_loops(edge_index: np.ndarray, num_nodes: int,
                          edge_type: Optional[np.ndarray] = None,
                          self_loop_type: int = 0,
                          edge_weight: Optional[np.ndarray] = None,
                          self_loop_weight: float = 0.0) -> Tuple[np.ndarray, Optional[np.ndarray], Optional[np.ndarray]]:
    """:func:`add_self_loops` with a content-addressed LRU cache.

    Repeated inference over the same graph (the ``Session`` serving path)
    re-augments identical edge lists on every call; this variant memoizes the
    concatenated arrays.  The returned arrays are shared between callers and
    marked read-only — copy before mutating.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(np.ascontiguousarray(edge_index, dtype=np.int64).tobytes())
    digest.update(f"|{int(num_nodes)}|{int(self_loop_type)}|{float(self_loop_weight)}".encode())
    for extra in (edge_type, edge_weight):
        digest.update(b"|")
        if extra is not None:
            digest.update(np.ascontiguousarray(extra).tobytes())
    key = digest.digest()
    with _SELF_LOOP_CACHE_LOCK:
        hit = _SELF_LOOP_CACHE.get(key)
        if hit is not None:
            _SELF_LOOP_CACHE.move_to_end(key)
            return hit
    result = add_self_loops(edge_index, num_nodes, edge_type=edge_type,
                            self_loop_type=self_loop_type, edge_weight=edge_weight,
                            self_loop_weight=self_loop_weight)
    for array in result:
        if array is not None:
            array.setflags(write=False)
    with _SELF_LOOP_CACHE_LOCK:
        existing = _SELF_LOOP_CACHE.get(key)
        if existing is not None:
            _SELF_LOOP_CACHE.move_to_end(key)
            return existing
        _SELF_LOOP_CACHE[key] = result
        while len(_SELF_LOOP_CACHE) > _SELF_LOOP_CACHE_CAPACITY:
            _SELF_LOOP_CACHE.popitem(last=False)
    return result


class MessagePassing(Module):
    """Base class holding common aggregation helpers."""

    def aggregate_sum(self, messages: Tensor, dst: np.ndarray, num_nodes: int) -> Tensor:
        """Sum messages per destination node."""
        return F.segment_sum(messages, dst, num_nodes)

    def aggregate_mean(self, messages: Tensor, dst: np.ndarray, num_nodes: int) -> Tensor:
        """Average messages per destination node."""
        return F.segment_mean(messages, dst, num_nodes)

    def forward(self, x: Tensor, edge_index: np.ndarray, **kwargs) -> Tensor:
        raise NotImplementedError
