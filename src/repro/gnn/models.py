"""The ParaGraph runtime-prediction model (paper §IV-B).

Architecture, following the paper:

* three RGAT graph-convolution layers with ReLU activations embed the graph,
* a global mean pooling produces one vector per kernel graph,
* a fully-connected layer embeds the two auxiliary features (number of teams
  and number of threads used to execute the kernel),
* the graph embedding and the feature embedding are concatenated and passed
  through fully-connected layers ending in a single runtime prediction.

The model consumes :class:`~repro.paragraph.encoders.GraphBatch` objects and
predicts the (scaled) runtime for each graph in the batch.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..api.registries import conv_registry, register_conv
from ..nn import functional as F
from ..nn.context import InferenceContext, current_default_dtype
from ..nn.layers import Dropout, Linear
from ..nn.module import Module
from ..nn.tensor import Tensor, concatenate
from ..paragraph.encoders import GraphBatch
from ..paragraph.edges import NUM_EDGE_TYPES
from .edge_layout import get_edge_layout
from .gat import GATConv
from .pooling import (global_mean_max_pool, global_mean_pool, global_sum_pool,
                      packed_readout)
from .rgat import RGATConv
from .rgcn import RGCNConv


# --------------------------------------------------------------------- #
# convolution registry: every factory takes the same keyword signature so
# model-selection code can treat the kinds uniformly (repro.api.register_conv
# adds new kinds without touching this module).
# --------------------------------------------------------------------- #
@register_conv("rgat")
def _make_rgat(in_dim, hidden_dim, *, num_relations, heads, use_edge_weight, rng):
    return RGATConv(in_dim, hidden_dim, num_relations, heads=heads,
                    use_edge_weight=use_edge_weight, rng=rng)


@register_conv("rgcn")
def _make_rgcn(in_dim, hidden_dim, *, num_relations, heads, use_edge_weight, rng):
    return RGCNConv(in_dim, hidden_dim, num_relations,
                    use_edge_weight=use_edge_weight, rng=rng)


@register_conv("gat")
def _make_gat(in_dim, hidden_dim, *, num_relations, heads, use_edge_weight, rng):
    return GATConv(in_dim, hidden_dim, heads=heads,
                   use_edge_weight=use_edge_weight, rng=rng)


class ParaGraphModel(Module):
    """RGAT-based GNN predicting kernel runtime from a ParaGraph.

    Parameters
    ----------
    node_feature_dim:
        Width of the one-hot node features (``GraphEncoder.feature_dim``).
    hidden_dim:
        Width of the graph-convolution layers.
    num_relations:
        Number of edge types (8 for ParaGraph, 1 for the Raw AST ablation).
    num_aux_features:
        Number of auxiliary scalars (2: teams, threads).
    aux_dim:
        Width of the auxiliary-feature embedding.
    head_dims:
        Widths of the fully-connected layers applied after concatenation.
    conv:
        Which relational convolution to use: ``"rgat"`` (paper), ``"rgcn"``
        or ``"gat"`` (design-ablation alternatives), or any kind added with
        :func:`repro.api.register_conv`.
    use_edge_weight:
        Forwarded to the convolution layers; switching it off turns the model
        into the Augmented-AST ablation even when weights are present.
    readout:
        Graph-level pooling: ``"mean_max"`` (default — concatenated mean and
        max keeps both the average structure and the hot-spot magnitudes that
        the weighted edges produce), ``"mean"`` or ``"sum"``.
    dropout:
        Dropout probability applied after each convolution (0 disables).
    """

    def __init__(
        self,
        node_feature_dim: int,
        hidden_dim: int = 64,
        num_relations: int = NUM_EDGE_TYPES,
        num_aux_features: int = 2,
        aux_dim: int = 16,
        head_dims: Sequence[int] = (64, 32),
        num_conv_layers: int = 3,
        conv: str = "rgat",
        heads: int = 1,
        use_edge_weight: bool = True,
        readout: str = "mean_max",
        dropout: float = 0.0,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.node_feature_dim = node_feature_dim
        self.hidden_dim = hidden_dim
        self.num_relations = num_relations
        self.conv_kind = conv

        if conv not in conv_registry:
            raise ValueError(f"unknown convolution kind {conv!r}; "
                             f"registered kinds: {conv_registry.keys()}")
        factory = conv_registry.get(conv)

        def make_conv(in_dim: int) -> Module:
            return factory(in_dim, hidden_dim, num_relations=num_relations,
                           heads=heads, use_edge_weight=use_edge_weight, rng=rng)

        self.convs = []
        in_dim = node_feature_dim
        for i in range(num_conv_layers):
            layer = make_conv(in_dim)
            self.register_module(f"conv{i}", layer)
            self.convs.append(layer)
            in_dim = layer.output_dim

        self.dropout = Dropout(dropout, rng=rng) if dropout > 0 else None
        if readout not in {"mean", "sum", "mean_max"}:
            raise ValueError(f"unknown readout {readout!r}")
        self.readout = readout
        self.graph_dim = in_dim * (2 if readout == "mean_max" else 1)

        # graph embedding head: two FC layers with ReLU (paper §IV-B)
        self.graph_fc1 = Linear(self.graph_dim, head_dims[0], rng=rng)
        self.graph_fc2 = Linear(head_dims[0], head_dims[1], rng=rng)

        # auxiliary feature branch (teams, threads)
        self.aux_fc = Linear(num_aux_features, aux_dim, rng=rng)

        # final prediction layer over the concatenated embeddings
        self.out_fc = Linear(head_dims[1] + aux_dim, 1, rng=rng)

    # ------------------------------------------------------------------ #
    def encode_graphs(self, batch: GraphBatch) -> Tensor:
        """Return the pooled per-graph embedding (before the head layers)."""
        x = Tensor(batch.node_features)
        # relation-bucketed edge layout: built (or fetched from the content-
        # addressed cache) once per forward and shared by every conv layer,
        # so sorting + validation never repeat across the 3-layer stack
        layout = get_edge_layout(batch.edge_index, batch.edge_type,
                                 int(batch.node_features.shape[0]),
                                 self.num_relations)
        for conv_layer in self.convs:
            kwargs = {"layout": layout} if getattr(conv_layer, "accepts_layout",
                                                   False) else {}
            x = F.relu(conv_layer(x, batch.edge_index,
                                  edge_type=batch.edge_type,
                                  edge_weight=batch.edge_weight, **kwargs))
            if self.dropout is not None:
                x = self.dropout(x)
        if self.readout == "sum":
            return global_sum_pool(x, batch.batch, batch.num_graphs)
        if self.readout == "mean_max":
            return global_mean_max_pool(x, batch.batch, batch.num_graphs)
        return global_mean_pool(x, batch.batch, batch.num_graphs)

    def forward(self, batch: GraphBatch) -> Tensor:
        """Predict one (scaled) runtime per graph; returns shape (batch,)."""
        pooled = self.encode_graphs(batch)
        g = F.relu(self.graph_fc1(pooled))
        g = F.relu(self.graph_fc2(g))
        aux = F.relu(self.aux_fc(Tensor(batch.aux_features)))
        joined = concatenate([g, aux], axis=1)
        prediction = self.out_fc(joined)
        return prediction.reshape(-1)

    def predict(self, batch: GraphBatch, dtype=None) -> np.ndarray:
        """Inference helper returning a plain NumPy array.

        Runs inside an :class:`repro.nn.InferenceContext` — no autodiff
        graph is recorded, and when *dtype* is given (``np.float32`` for
        serving) parameters and activations resolve to that dtype for the
        duration of the forward pass; ``dtype=None`` keeps full float64
        training parity.  The context is thread-local, so concurrent
        ``predict`` calls (even in different dtypes, on a shared model)
        don't interfere: parameter views are immutable per-context casts,
        never in-place mutations.  The shared ``training`` flag is
        deliberately left untouched (eval semantics come from the
        inference context itself — ``Dropout`` is identity under it), so
        serving never mutates module state a concurrent thread observes.
        """
        with InferenceContext(dtype=dtype):
            return self.forward(batch).data.copy()

    # ------------------------------------------------------------------ #
    def supports_packed(self) -> bool:
        """Whether every conv layer has a packed block-diagonal kernel."""
        return all(hasattr(layer, "forward_packed") for layer in self.convs)

    def forward_packed(self, batch) -> np.ndarray:
        """One fused inference forward over a packed multi-graph batch.

        Raw-array twin of :meth:`forward` for a
        :class:`~repro.gnn.packing.PackedBatch`: the conv layers run their
        packed kernels over the merged block-diagonal layout, the readout
        pools over the packed batch vector, and the head layers run one
        graph row at a time so every GEMV keeps the exact shapes of a
        single-graph forward — float64 results are bit-identical to
        predicting each graph alone (dropout is identity at inference, so
        skipping it here changes nothing).  Returns shape ``(num_graphs,)``.
        """
        packed = batch.layout
        dtype = current_default_dtype()
        x = np.asarray(batch.node_features, dtype=dtype)
        for conv_layer in self.convs:
            # the conv hands back a fresh buffer, so the ReLU runs in place
            x = conv_layer.forward_packed(x, packed, batch.edge_weight)
            np.maximum(x, 0.0, out=x)
        pooled = packed_readout(x, packed.batch, packed.num_graphs,
                                self.readout)
        aux = np.asarray(batch.aux_features, dtype=dtype)
        w1, b1 = self.graph_fc1.weight.data, self.graph_fc1.bias.data
        w2, b2 = self.graph_fc2.weight.data, self.graph_fc2.bias.data
        wa, ba = self.aux_fc.weight.data, self.aux_fc.bias.data
        wo, bo = self.out_fc.weight.data, self.out_fc.bias.data
        out = np.empty(packed.num_graphs, dtype=pooled.dtype)
        for g in range(packed.num_graphs):
            row = np.maximum(pooled[g:g + 1] @ w1 + b1, 0.0)
            row = np.maximum(row @ w2 + b2, 0.0)
            aux_row = np.maximum(aux[g:g + 1] @ wa + ba, 0.0)
            joined = np.concatenate([row, aux_row], axis=1)
            out[g] = (joined @ wo + bo)[0, 0]
        return out

    def predict_packed(self, batch, dtype=None) -> np.ndarray:
        """Packed inference helper; same context semantics as :meth:`predict`."""
        with InferenceContext(dtype=dtype):
            return self.forward_packed(batch)


class COMPOFFStyleMLP(Module):
    """An MLP over flat feature vectors, mirroring the COMPOFF baseline shape.

    Kept in the GNN package so model-selection code can treat graph and
    non-graph regressors uniformly; the actual COMPOFF feature extraction
    lives in :mod:`repro.compoff`.
    """

    def __init__(self, num_features: int, hidden_dims: Sequence[int] = (64, 64, 32),
                 seed: Optional[int] = None) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        dims = [num_features] + list(hidden_dims)
        self.layers = []
        for i in range(len(dims) - 1):
            layer = Linear(dims[i], dims[i + 1], rng=rng)
            self.register_module(f"fc{i}", layer)
            self.layers.append(layer)
        self.out = Linear(dims[-1], 1, rng=rng)

    def forward(self, features: Tensor) -> Tensor:
        x = features if isinstance(features, Tensor) else Tensor(features)
        for layer in self.layers:
            x = F.relu(layer(x))
        return self.out(x).reshape(-1)
