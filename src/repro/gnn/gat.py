"""Plain (single-relation) Graph Attention convolution.

A GAT layer is an RGAT layer with one relation; it is what the Raw-AST
ablation effectively reduces to when only ``Child`` edges exist.  Provided
both for the ablation benches and as a lighter-weight encoder option.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn.tensor import Tensor
from .message_passing import MessagePassing
from .rgat import RGATConv


class GATConv(MessagePassing):
    """Single-relation graph attention layer (wraps :class:`RGATConv`)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        heads: int = 1,
        negative_slope: float = 0.2,
        use_edge_weight: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.inner = RGATConv(
            in_channels,
            out_channels,
            num_relations=1,
            heads=heads,
            negative_slope=negative_slope,
            use_edge_weight=use_edge_weight,
            rng=rng,
        )

    @property
    def output_dim(self) -> int:
        return self.inner.output_dim

    accepts_layout = True

    def forward(
        self,
        x: Tensor,
        edge_index: np.ndarray,
        edge_type: Optional[np.ndarray] = None,
        edge_weight: Optional[np.ndarray] = None,
        layout=None,
    ) -> Tensor:
        # a multi-relation *layout* does not apply to the single-relation
        # inner conv — it rebuilds (and caches) its own collapsed layout
        num_edges = np.asarray(edge_index).shape[1]
        return self.inner(x, edge_index,
                          edge_type=np.zeros(num_edges, dtype=np.int64),
                          edge_weight=edge_weight)
