"""``repro.gnn`` — graph neural-network layers and the ParaGraph model.

Substitute for PyTorch-Geometric: relational graph attention (RGAT), RGCN
and GAT convolutions, global pooling readouts, and the full
:class:`ParaGraphModel` (3×RGAT + auxiliary-feature branch + FC head).
"""

from .gat import GATConv
from .message_passing import MessagePassing, add_self_loops, validate_edge_index
from .models import COMPOFFStyleMLP, ParaGraphModel
from .pooling import (
    global_max_pool,
    global_mean_max_pool,
    global_mean_pool,
    global_sum_pool,
)
from .rgat import RGATConv
from .rgcn import RGCNConv

__all__ = [
    "COMPOFFStyleMLP",
    "GATConv",
    "MessagePassing",
    "ParaGraphModel",
    "RGATConv",
    "RGCNConv",
    "add_self_loops",
    "global_max_pool",
    "global_mean_max_pool",
    "global_mean_pool",
    "global_sum_pool",
    "validate_edge_index",
]
