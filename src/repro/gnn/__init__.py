"""``repro.gnn`` — graph neural-network layers and the ParaGraph model.

Substitute for PyTorch-Geometric: relational graph attention (RGAT), RGCN
and GAT convolutions, global pooling readouts, and the full
:class:`ParaGraphModel` (3×RGAT + auxiliary-feature branch + FC head).

The relational convolutions are vectorized over relations via the cached
:class:`RelationalEdgeLayout` (relation-bucketed CSR-style edge layout,
validated and sorted once per distinct graph), and ``RGATConv`` additionally
carries a fused pure-NumPy kernel that serves ``no_grad`` forwards; the seed
per-relation-loop implementations survive as ``forward_reference`` for the
parity regression tests and ``benchmarks/test_perf_gnn_forward.py``.

:mod:`repro.gnn.packing` packs many graphs into one block-diagonal
``PackedLayout`` so a whole serving micro-batch costs a single fused
forward (``ParaGraphModel.predict_packed``) that is float64 bit-identical
to predicting each graph alone.
"""

from .edge_layout import (
    EdgeLayoutCache,
    RelationalEdgeLayout,
    edge_layout_cache_info,
    get_edge_layout,
    layout_content_key,
)
from .gat import GATConv
from .message_passing import (
    MessagePassing,
    add_self_loops,
    cached_add_self_loops,
    validate_edge_index,
)
from .models import COMPOFFStyleMLP, ParaGraphModel
from .packing import (
    PACK_NODE_BUDGET,
    PackedBatch,
    PackedLayout,
    PackedLayoutCache,
    merge_layouts,
    pack_graphs,
    packed_layout_cache_info,
    split_packs,
)
from .pooling import (
    global_max_pool,
    global_mean_max_pool,
    global_mean_pool,
    global_sum_pool,
    packed_readout,
)
from .rgat import RGATConv
from .rgcn import RGCNConv

__all__ = [
    "COMPOFFStyleMLP",
    "EdgeLayoutCache",
    "PACK_NODE_BUDGET",
    "GATConv",
    "MessagePassing",
    "PackedBatch",
    "PackedLayout",
    "PackedLayoutCache",
    "ParaGraphModel",
    "RGATConv",
    "RGCNConv",
    "RelationalEdgeLayout",
    "add_self_loops",
    "cached_add_self_loops",
    "edge_layout_cache_info",
    "get_edge_layout",
    "global_max_pool",
    "global_mean_max_pool",
    "global_mean_pool",
    "global_sum_pool",
    "layout_content_key",
    "merge_layouts",
    "pack_graphs",
    "packed_layout_cache_info",
    "packed_readout",
    "split_packs",
    "validate_edge_index",
]
