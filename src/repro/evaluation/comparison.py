"""ParaGraph vs. COMPOFF comparison (Figs. 8 and 9).

The paper compares the two cost models on the NVIDIA V100 data: Fig. 8 plots
the per-data-point prediction error of each model against the actual runtime
(COMPOFF is noticeably worse on short-running kernels), and Fig. 9 plots
predicted vs. actual runtime for both (ParaGraph correlates more tightly).

The driver here trains both models on an identical train/validation split of
the same (simulated) V100 measurements: ParaGraph sees the program graphs,
COMPOFF sees the hand-engineered operation-count features.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..api.config import ModelConfig
from ..compoff.features import FeatureSample, extract_features
from ..compoff.model import COMPOFFConfig, COMPOFFModel
from ..hardware.specs import HardwareSpec, V100
from ..ml import metrics as M
from ..ml.dataset import GraphDataset
from ..ml.trainer import Trainer, TrainingConfig
from ..paragraph.encoders import GraphEncoder
from ..paragraph.variants import GraphVariant
from ..pipeline.graph_generation import encode_configuration
from ..pipeline.runtime_collection import RuntimeCollector
from ..pipeline.variant_generation import (
    Configuration,
    SweepConfig,
    generate_configurations,
)


@dataclass
class ComparisonResult:
    """Predictions of both models on the shared validation split."""

    platform: HardwareSpec
    actual_us: np.ndarray
    paragraph_predictions_us: np.ndarray
    compoff_predictions_us: np.ndarray

    # ------------------------------------------------------------------ #
    def figure8_points(self) -> Dict[str, List[Tuple[float, float]]]:
        """(actual runtime, relative error) pairs per model (Fig. 8)."""
        span = M.runtime_range(self.actual_us)
        out: Dict[str, List[Tuple[float, float]]] = {}
        for name, predictions in (("ParaGraph", self.paragraph_predictions_us),
                                  ("COMPOFF", self.compoff_predictions_us)):
            errors = np.abs(self.actual_us - predictions) / span
            out[name] = list(zip(self.actual_us.tolist(), errors.tolist()))
        return out

    def figure9_points(self) -> Dict[str, List[Tuple[float, float]]]:
        """(actual, predicted) runtime pairs per model (Fig. 9)."""
        return {
            "ParaGraph": list(zip(self.actual_us.tolist(),
                                  self.paragraph_predictions_us.tolist())),
            "COMPOFF": list(zip(self.actual_us.tolist(),
                                self.compoff_predictions_us.tolist())),
        }

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Scalar metrics of both models on the validation split."""
        return {
            "ParaGraph": M.regression_report(self.actual_us, self.paragraph_predictions_us),
            "COMPOFF": M.regression_report(self.actual_us, self.compoff_predictions_us),
        }


def run_comparison(
    platform: HardwareSpec = V100,
    sweep: Optional[SweepConfig] = None,
    training: Optional[TrainingConfig] = None,
    compoff_config: Optional[COMPOFFConfig] = None,
    hidden_dim: int = 24,
    train_fraction: float = 0.9,
    seed: int = 0,
) -> ComparisonResult:
    """Train ParaGraph and COMPOFF on the same measurements and compare."""
    sweep = sweep or SweepConfig(size_scales=(0.5, 1.0), team_counts=(64,),
                                 thread_counts=(4, 16))
    training = training or TrainingConfig(epochs=25, batch_size=32,
                                          learning_rate=3e-3, seed=seed)
    compoff_config = compoff_config or COMPOFFConfig(epochs=150, seed=seed)

    configurations = generate_configurations(sweep)
    collector = RuntimeCollector(platform)
    measurements = collector.collect(configurations)
    if len(measurements) < 10:
        raise ValueError("comparison needs at least 10 measurements; widen the sweep")

    # shared split over measurement indices
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(measurements))
    cut = max(1, min(int(round(train_fraction * len(measurements))), len(measurements) - 1))
    train_idx, val_idx = order[:cut], order[cut:]

    encoder = GraphEncoder()

    def encode_graph(index: int):
        measurement = measurements[index]
        return encode_configuration(
            measurement.configuration, encoder, measurement.runtime_us,
            graph_variant=GraphVariant.PARAGRAPH, platform_name=platform.name)

    def encode_compoff(index: int) -> FeatureSample:
        measurement = measurements[index]
        configuration: Configuration = measurement.configuration
        features = extract_features(
            configuration.variant, configuration.sizes,
            num_teams=configuration.num_teams, num_threads=configuration.num_threads)
        return FeatureSample(features=features, runtime_us=measurement.runtime_us,
                             metadata=configuration.metadata)

    train_graphs = GraphDataset([encode_graph(i) for i in train_idx], name="train")
    val_graphs = GraphDataset([encode_graph(i) for i in val_idx], name="val")
    train_features = [encode_compoff(i) for i in train_idx]
    val_features = [encode_compoff(i) for i in val_idx]

    # ParaGraph model (architecture resolved through the api registry)
    model = ModelConfig(hidden_dim=hidden_dim).build(
        node_feature_dim=encoder.feature_dim, use_edge_weight=True, seed=seed)
    trainer = Trainer(model, training)
    trainer.fit(train_graphs, val_graphs)
    paragraph_predictions = trainer.predict(val_graphs)

    # COMPOFF baseline
    compoff = COMPOFFModel(compoff_config)
    compoff.fit(train_features)
    compoff_predictions = compoff.predict(val_features)

    return ComparisonResult(
        platform=platform,
        actual_us=val_graphs.targets(),
        paragraph_predictions_us=paragraph_predictions,
        compoff_predictions_us=compoff_predictions,
    )
