"""Plain-text rendering of the reproduced tables and figure series.

The benchmarks print these so ``pytest benchmarks/ --benchmark-only`` output
contains the same rows / series the paper reports, and ``EXPERIMENTS.md``
records them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Sequence[str] = (),
                 float_format: str = "{:.4g}") -> str:
    """Render a list of dict rows as an aligned ASCII table."""
    if not rows:
        return "(empty table)"
    columns = list(columns) if columns else list(rows[0].keys())

    def cell(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[cell(row.get(column, "")) for column in columns] for row in rows]
    widths = [max(len(column), *(len(r[i]) for r in rendered))
              for i, column in enumerate(columns)]
    header = " | ".join(column.ljust(width) for column, width in zip(columns, widths))
    separator = "-+-".join("-" * width for width in widths)
    body = "\n".join(" | ".join(value.ljust(width) for value, width in zip(row, widths))
                     for row in rendered)
    return f"{header}\n{separator}\n{body}"


def format_series(series: Mapping[str, Mapping[str, float]],
                  value_format: str = "{:.4f}") -> str:
    """Render nested {series -> {x -> y}} mappings (the figure data) as text."""
    lines: List[str] = []
    for name, points in series.items():
        lines.append(f"[{name}]")
        for key, value in points.items():
            lines.append(f"  {key:>12s}: {value_format.format(value)}")
    return "\n".join(lines)


def format_curves(curves: Mapping[str, Sequence[float]], every: int = 5,
                  value_format: str = "{:.4f}") -> str:
    """Render training curves, sampling every *every*-th epoch."""
    lines: List[str] = []
    for name, values in curves.items():
        sampled = [f"{value_format.format(v)}" for i, v in enumerate(values)
                   if i % every == 0 or i == len(values) - 1]
        lines.append(f"{name}: " + " -> ".join(sampled))
    return "\n".join(lines)


def table1_text() -> str:
    """Render Table I (benchmark applications) from the kernel registry."""
    from ..kernels.registry import table1_rows

    return format_table(table1_rows(), ("application", "num_kernels", "domain"))
