"""``repro.evaluation`` — drivers that regenerate the paper's tables & figures.

* Tables II & III and Figures 4–6: :mod:`repro.evaluation.experiments`
* Table IV and Figure 7 (ablation): :mod:`repro.evaluation.ablation`
* Figures 8 & 9 (vs. COMPOFF): :mod:`repro.evaluation.comparison`
* Text rendering of all of the above: :mod:`repro.evaluation.reports`
"""

from .ablation import AblationResult, run_ablation, run_mi50_ablation_curves
from .comparison import ComparisonResult, run_comparison
from .experiments import (
    ExperimentScale,
    figure4_series,
    figure5_series,
    figure6_series,
    pinned_session,
    run_main_experiment,
    table2_rows,
    table3_rows,
)
from .reports import format_curves, format_series, format_table, table1_text

__all__ = [
    "AblationResult",
    "ComparisonResult",
    "ExperimentScale",
    "figure4_series",
    "figure5_series",
    "figure6_series",
    "format_curves",
    "format_series",
    "format_table",
    "pinned_session",
    "run_ablation",
    "run_comparison",
    "run_main_experiment",
    "run_mi50_ablation_curves",
    "table1_text",
    "table2_rows",
    "table3_rows",
]
