"""Experiment drivers for the paper's main results (Tables II–III, Figs. 4–6).

Every driver consumes a :class:`~repro.pipeline.workflow.WorkflowResult`
(one trained ParaGraph model per platform over the same configuration sweep)
and produces the rows / series of the corresponding table or figure, so the
benchmarks under ``benchmarks/`` only need to run the workflow once and call
into these functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..api.config import DataConfig, ModelConfig, ReproConfig
from ..api.session import Session
from ..hardware.specs import ALL_PLATFORMS, HardwareSpec
from ..ml import metrics as M
from ..pipeline.dataset_builder import table2_statistics
from ..pipeline.variant_generation import SweepConfig
from ..pipeline.workflow import PlatformResult, WorkflowResult


# --------------------------------------------------------------------- #
# Table II — dataset statistics
# --------------------------------------------------------------------- #
def table2_rows(result: WorkflowResult) -> List[Dict[str, object]]:
    """Data points / runtime range / std-dev per platform (Table II)."""
    return table2_statistics(result.build)


# --------------------------------------------------------------------- #
# Table III — RMSE / normalized RMSE per platform
# --------------------------------------------------------------------- #
def table3_rows(result: WorkflowResult) -> List[Dict[str, object]]:
    """RMSE (ms) and normalized RMSE per platform (Table III)."""
    rows: List[Dict[str, object]] = []
    for name, platform_result in result.platforms.items():
        rows.append({
            "platform": name,
            "rmse_ms": platform_result.metrics["rmse"] / 1000.0,
            "normalized_rmse": platform_result.metrics["normalized_rmse"],
        })
    return rows


# --------------------------------------------------------------------- #
# Fig. 4 — relative error per 10-second runtime bin
# --------------------------------------------------------------------- #
def figure4_series(result: WorkflowResult,
                   bin_width_seconds: float = 10.0,
                   dtype=None) -> Dict[str, Dict[str, float]]:
    """Per-platform binned relative errors (Fig. 4).

    Predictions run on the no-graph inference fast path; *dtype* defaults to
    float64 so the regenerated figures stay bit-stable against the paper
    numbers (pass ``numpy.float32`` to measure at serving precision).
    """
    series: Dict[str, Dict[str, float]] = {}
    for name, platform_result in result.platforms.items():
        validation = platform_result.validation
        predictions = platform_result.trainer.predict(validation, dtype=dtype)
        series[name] = M.binned_relative_error(
            validation.targets(), predictions, bin_width_seconds=bin_width_seconds)
    return series


# --------------------------------------------------------------------- #
# Fig. 5 — validation normalized RMSE per epoch
# --------------------------------------------------------------------- #
def figure5_series(result: WorkflowResult) -> Dict[str, List[float]]:
    """Per-platform normalized-RMSE training curves (Fig. 5)."""
    return {name: list(platform_result.history.val_normalized_rmses)
            for name, platform_result in result.platforms.items()}


# --------------------------------------------------------------------- #
# Fig. 6 — error rate per application
# --------------------------------------------------------------------- #
def figure6_series(result: WorkflowResult, dtype=None) -> Dict[str, Dict[str, float]]:
    """Per-platform, per-application mean relative error (Fig. 6).

    Predictions run on the no-graph inference fast path; see
    :func:`figure4_series` for the *dtype* convention.
    """
    series: Dict[str, Dict[str, float]] = {}
    for name, platform_result in result.platforms.items():
        validation = platform_result.validation
        predictions = platform_result.trainer.predict(validation, dtype=dtype)
        applications = validation.metadata_column("application", "unknown")
        series[name] = M.per_group_relative_error(
            validation.targets(), predictions, applications)
    return series


# --------------------------------------------------------------------- #
# one-call experiment used by the benchmarks
# --------------------------------------------------------------------- #
@dataclass
class ExperimentScale:
    """Size of the experiment: the benchmarks use ``small`` so a full table
    regenerates in minutes; ``paper`` approaches the paper's dataset size."""

    sweep: SweepConfig = field(default_factory=SweepConfig)
    epochs: int = 40
    hidden_dim: int = 32
    seed: int = 0

    @classmethod
    def small(cls) -> "ExperimentScale":
        return cls(
            sweep=SweepConfig(size_scales=(0.5, 1.0), team_counts=(64,),
                              thread_counts=(8, 64), repetitions=1),
            epochs=25,
            hidden_dim=24,
        )

    @classmethod
    def medium(cls) -> "ExperimentScale":
        return cls(
            sweep=SweepConfig(size_scales=(0.5, 1.0, 2.0), team_counts=(32, 128),
                              thread_counts=(4, 22, 128), repetitions=1),
            epochs=60,
            hidden_dim=32,
        )

    @classmethod
    def paper(cls) -> "ExperimentScale":
        return cls(
            sweep=SweepConfig(size_scales=(0.25, 0.5, 1.0, 2.0, 4.0),
                              team_counts=(16, 32, 64, 128, 256),
                              thread_counts=(2, 8, 22, 64, 256),
                              repetitions=2),
            epochs=100,
            hidden_dim=64,
        )


def run_main_experiment(
    scale: Optional[ExperimentScale] = None,
    platforms: Sequence[HardwareSpec] = ALL_PLATFORMS,
) -> WorkflowResult:
    """Run the full pipeline at the requested scale (Tables II-III, Figs. 4-6)."""
    scale = scale or ExperimentScale.small()
    from ..ml.trainer import TrainingConfig

    config = ReproConfig(
        data=DataConfig(sweep=scale.sweep, platforms=tuple(platforms)),
        model=ModelConfig(hidden_dim=scale.hidden_dim),
        training=TrainingConfig(epochs=scale.epochs, batch_size=32,
                                learning_rate=3e-3, seed=scale.seed),
        seed=scale.seed,
    )
    return Session(config).workflow()


def pinned_session(ref: str, *, registry_root: str) -> Session:
    """Warm-start a registry-pinned model set for evaluation or soaks.

    Resolves ``name@version`` (or a bare name via the ``latest`` pointer)
    in the :class:`repro.store.ModelRegistry` at *registry_root* and loads
    it with zero retraining, so an evaluation or soak run is reproducible
    against one frozen set of weights.  The returned session serves
    predictions but carries no datasets; drivers that need the training
    build (``workflow()``) must train in-process instead.
    """
    from ..store.registry import ModelRegistry

    return ModelRegistry(registry_root).load(ref)
