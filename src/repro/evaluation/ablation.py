"""Ablation study drivers (Table IV and Fig. 7).

The paper compares three levels of the representation — Raw AST, Augmented
AST, ParaGraph — by training the same GNN on each and reporting the
validation RMSE per platform (Table IV) and the training curves on the MI50
(Fig. 7).  These drivers rebuild the datasets with the requested
:class:`~repro.paragraph.variants.GraphVariant` (the simulated runtimes are
deterministic per configuration, so all three variants see identical labels)
and train one model per variant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..api.config import DataConfig, GraphConfig, ModelConfig, ReproConfig
from ..api.pipeline import Pipeline
from ..api.stages import DatasetStage, TrainStage
from ..hardware.specs import ALL_PLATFORMS, HardwareSpec, MI50
from ..ml.trainer import History, TrainingConfig
from ..paragraph.variants import ABLATION_ORDER, GraphVariant
from ..pipeline.variant_generation import SweepConfig, generate_configurations
from ..pipeline.workflow import PlatformResult


@dataclass
class AblationResult:
    """Per-variant, per-platform results of the ablation."""

    results: Dict[str, Dict[str, PlatformResult]] = field(default_factory=dict)
    # results[graph_variant.value][platform_name]

    def rmse_table(self) -> List[Dict[str, object]]:
        """Rows shaped like Table IV: one row per platform, one column per variant."""
        platforms: List[str] = []
        for by_platform in self.results.values():
            for name in by_platform:
                if name not in platforms:
                    platforms.append(name)
        rows: List[Dict[str, object]] = []
        for platform in platforms:
            row: Dict[str, object] = {"platform": platform}
            for variant_value, by_platform in self.results.items():
                if platform in by_platform:
                    row[variant_value] = by_platform[platform].metrics["rmse"] / 1000.0
            rows.append(row)
        return rows

    def histories_for(self, platform_name: str) -> Dict[str, History]:
        """Training histories per variant on one platform (Fig. 7)."""
        return {
            variant_value: by_platform[platform_name].history
            for variant_value, by_platform in self.results.items()
            if platform_name in by_platform
        }


def run_ablation(
    sweep: Optional[SweepConfig] = None,
    training: Optional[TrainingConfig] = None,
    platforms: Sequence[HardwareSpec] = ALL_PLATFORMS,
    variants: Sequence[GraphVariant] = ABLATION_ORDER,
    hidden_dim: int = 24,
    seed: int = 0,
) -> AblationResult:
    """Train the model on every (graph variant, platform) combination."""
    sweep = sweep or SweepConfig(size_scales=(0.5, 1.0), team_counts=(64,),
                                 thread_counts=(4, 16))
    training = training or TrainingConfig(epochs=25, batch_size=32,
                                          learning_rate=3e-3, seed=seed)
    configurations = generate_configurations(sweep)
    result = AblationResult()
    for graph_variant in variants:
        config = ReproConfig(
            data=DataConfig(sweep=sweep, platforms=tuple(platforms)),
            graph=GraphConfig(variant=graph_variant),
            model=ModelConfig(hidden_dim=hidden_dim),
            training=training,
            seed=seed,
        )
        # the shared configurations keep all variants on identical labels
        context = Pipeline([DatasetStage(config), TrainStage(config)]).run(
            configurations=configurations)
        result.results[graph_variant.value] = context["platform_results"]
    return result


def run_mi50_ablation_curves(
    sweep: Optional[SweepConfig] = None,
    training: Optional[TrainingConfig] = None,
    hidden_dim: int = 24,
    seed: int = 0,
) -> Dict[str, History]:
    """Fig. 7: RMSE-per-epoch curves of the three variants on the AMD MI50."""
    ablation = run_ablation(sweep=sweep, training=training, platforms=(MI50,),
                            hidden_dim=hidden_dim, seed=seed)
    return ablation.histories_for(MI50.name)
