"""Ablation study drivers (Table IV and Fig. 7).

The paper compares three levels of the representation — Raw AST, Augmented
AST, ParaGraph — by training the same GNN on each and reporting the
validation RMSE per platform (Table IV) and the training curves on the MI50
(Fig. 7).  These drivers rebuild the datasets with the requested
:class:`~repro.paragraph.variants.GraphVariant` (the simulated runtimes are
deterministic per configuration, so all three variants see identical labels)
and train one model per variant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..hardware.specs import ALL_PLATFORMS, HardwareSpec, MI50
from ..ml.trainer import History, TrainingConfig
from ..paragraph.encoders import GraphEncoder
from ..paragraph.variants import ABLATION_ORDER, GraphVariant
from ..pipeline.dataset_builder import DatasetBuilder
from ..pipeline.variant_generation import SweepConfig, generate_configurations
from ..pipeline.workflow import PlatformResult, WorkflowConfig, train_on_dataset


@dataclass
class AblationResult:
    """Per-variant, per-platform results of the ablation."""

    results: Dict[str, Dict[str, PlatformResult]] = field(default_factory=dict)
    # results[graph_variant.value][platform_name]

    def rmse_table(self) -> List[Dict[str, object]]:
        """Rows shaped like Table IV: one row per platform, one column per variant."""
        platforms: List[str] = []
        for by_platform in self.results.values():
            for name in by_platform:
                if name not in platforms:
                    platforms.append(name)
        rows: List[Dict[str, object]] = []
        for platform in platforms:
            row: Dict[str, object] = {"platform": platform}
            for variant_value, by_platform in self.results.items():
                if platform in by_platform:
                    row[variant_value] = by_platform[platform].metrics["rmse"] / 1000.0
            rows.append(row)
        return rows

    def histories_for(self, platform_name: str) -> Dict[str, History]:
        """Training histories per variant on one platform (Fig. 7)."""
        return {
            variant_value: by_platform[platform_name].history
            for variant_value, by_platform in self.results.items()
            if platform_name in by_platform
        }


def run_ablation(
    sweep: Optional[SweepConfig] = None,
    training: Optional[TrainingConfig] = None,
    platforms: Sequence[HardwareSpec] = ALL_PLATFORMS,
    variants: Sequence[GraphVariant] = ABLATION_ORDER,
    hidden_dim: int = 24,
    seed: int = 0,
) -> AblationResult:
    """Train the model on every (graph variant, platform) combination."""
    sweep = sweep or SweepConfig(size_scales=(0.5, 1.0), team_counts=(64,),
                                 thread_counts=(4, 16))
    training = training or TrainingConfig(epochs=25, batch_size=32,
                                          learning_rate=3e-3, seed=seed)
    configurations = generate_configurations(sweep)
    result = AblationResult()
    for graph_variant in variants:
        encoder = GraphEncoder()
        builder = DatasetBuilder(platforms=platforms, graph_variant=graph_variant,
                                 encoder=encoder)
        build = builder.build(configurations=configurations)
        workflow_config = WorkflowConfig(
            sweep=sweep,
            graph_variant=graph_variant,
            training=training,
            hidden_dim=hidden_dim,
            seed=seed,
        )
        by_platform: Dict[str, PlatformResult] = {}
        for platform in platforms:
            dataset = build.datasets[platform.name]
            if len(dataset) < 4:
                continue
            by_platform[platform.name] = train_on_dataset(
                dataset, encoder, workflow_config, platform)
        result.results[graph_variant.value] = by_platform
    return result


def run_mi50_ablation_curves(
    sweep: Optional[SweepConfig] = None,
    training: Optional[TrainingConfig] = None,
    hidden_dim: int = 24,
    seed: int = 0,
) -> Dict[str, History]:
    """Fig. 7: RMSE-per-epoch curves of the three variants on the AMD MI50."""
    ablation = run_ablation(sweep=sweep, training=training, platforms=(MI50,),
                            hidden_dim=hidden_dim, seed=seed)
    return ablation.histories_for(MI50.name)
