"""Hardware descriptions of the four accelerators used in the paper.

The paper measures kernels on ORNL Summit nodes (IBM POWER9 CPUs, NVIDIA
V100 GPUs) and LLNL Corona nodes (AMD EPYC 7401 CPUs, AMD MI50 GPUs).  Those
machines are not available here, so each device is described by a compact
analytical spec — peak double-precision throughput, memory bandwidth,
parallel overheads, host↔device link characteristics and a measurement-noise
level — consumed by :mod:`repro.hardware.simulator`.

The numbers are public datasheet figures (rounded); they are not meant to
reproduce the paper's absolute runtimes, only the qualitative structure:
GPUs dominate large data-parallel kernels, CPUs win tiny kernels (launch
overhead), ``*_mem`` variants pay for PCIe/NVLink transfers, and CPU
measurements are far noisier / more dispersed than GPU ones (Table II's
standard deviations).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Tuple


class DeviceKind(Enum):
    CPU = "cpu"
    GPU = "gpu"


@dataclass(frozen=True)
class HardwareSpec:
    """Analytical description of one accelerator."""

    name: str
    kind: DeviceKind
    cluster: str
    #: physical cores (CPU) or compute units / SMs (GPU)
    compute_units: int
    #: peak double-precision throughput of the whole device, GFLOP/s
    peak_gflops: float
    #: sustainable device-memory bandwidth, GB/s
    memory_bandwidth_gbs: float
    #: host↔device transfer bandwidth, GB/s (0 for CPUs: no transfer needed)
    transfer_bandwidth_gbs: float
    #: per-transfer fixed latency, microseconds
    transfer_latency_us: float
    #: fixed cost of launching a kernel / opening a parallel region, microseconds
    launch_overhead_us: float
    #: teams*threads (or parallel iterations) needed to reach peak throughput
    saturation_parallelism: int
    #: fraction of work that does not parallelize (Amdahl-style)
    serial_fraction: float
    #: sigma of the multiplicative log-normal measurement noise
    noise_sigma: float

    @property
    def is_gpu(self) -> bool:
        return self.kind is DeviceKind.GPU

    @property
    def peak_flops_per_us(self) -> float:
        """Peak device throughput in FLOP per microsecond."""
        return self.peak_gflops * 1e3

    @property
    def memory_bytes_per_us(self) -> float:
        """Device memory bandwidth in bytes per microsecond."""
        return self.memory_bandwidth_gbs * 1e3

    @property
    def transfer_bytes_per_us(self) -> float:
        """Host↔device bandwidth in bytes per microsecond."""
        return self.transfer_bandwidth_gbs * 1e3


# --------------------------------------------------------------------- #
# Summit (ORNL): IBM POWER9 + NVIDIA V100, LLVM/Clang 13 + nvptx
# --------------------------------------------------------------------- #
POWER9 = HardwareSpec(
    name="IBM POWER9",
    kind=DeviceKind.CPU,
    cluster="Summit",
    compute_units=22,
    peak_gflops=540.0,
    memory_bandwidth_gbs=135.0,
    transfer_bandwidth_gbs=0.0,
    transfer_latency_us=0.0,
    launch_overhead_us=18.0,
    saturation_parallelism=22 * 4,
    serial_fraction=0.015,
    noise_sigma=0.28,
)

V100 = HardwareSpec(
    name="NVIDIA V100",
    kind=DeviceKind.GPU,
    cluster="Summit",
    compute_units=80,
    peak_gflops=7000.0,
    memory_bandwidth_gbs=900.0,
    transfer_bandwidth_gbs=45.0,      # NVLink2 host link on Summit
    transfer_latency_us=12.0,
    launch_overhead_us=22.0,
    saturation_parallelism=10_240,
    serial_fraction=0.0,
    noise_sigma=0.09,
)

# --------------------------------------------------------------------- #
# Corona (LLNL): AMD EPYC 7401 + AMD MI50, LLVM/Clang 15 + rocm
# --------------------------------------------------------------------- #
EPYC7401 = HardwareSpec(
    name="AMD EPYC7401",
    kind=DeviceKind.CPU,
    cluster="Corona",
    compute_units=24,
    peak_gflops=380.0,
    memory_bandwidth_gbs=120.0,
    transfer_bandwidth_gbs=0.0,
    transfer_latency_us=0.0,
    launch_overhead_us=14.0,
    saturation_parallelism=24 * 2,
    serial_fraction=0.012,
    noise_sigma=0.24,
)

MI50 = HardwareSpec(
    name="AMD MI50",
    kind=DeviceKind.GPU,
    cluster="Corona",
    compute_units=60,
    peak_gflops=6600.0,
    memory_bandwidth_gbs=1024.0,
    transfer_bandwidth_gbs=16.0,      # PCIe gen3 x16
    transfer_latency_us=18.0,
    launch_overhead_us=28.0,
    saturation_parallelism=7_680,
    serial_fraction=0.0,
    noise_sigma=0.11,
)

#: The four evaluation platforms, in the order of the paper's result tables.
ALL_PLATFORMS: Tuple[HardwareSpec, ...] = (POWER9, V100, EPYC7401, MI50)

_BY_NAME: Dict[str, HardwareSpec] = {spec.name: spec for spec in ALL_PLATFORMS}
_ALIASES: Dict[str, str] = {
    "power9": "IBM POWER9",
    "v100": "NVIDIA V100",
    "epyc": "AMD EPYC7401",
    "epyc7401": "AMD EPYC7401",
    "mi50": "AMD MI50",
}


def get_platform(name: str) -> HardwareSpec:
    """Look up a platform by full name or short alias (``v100``, ``mi50`` …)."""
    if name in _BY_NAME:
        return _BY_NAME[name]
    key = name.replace(" ", "").replace("-", "").lower()
    if key in _ALIASES:
        return _BY_NAME[_ALIASES[key]]
    raise KeyError(f"unknown platform {name!r}; known: {sorted(_BY_NAME)}")


def cpu_platforms() -> List[HardwareSpec]:
    return [spec for spec in ALL_PLATFORMS if not spec.is_gpu]


def gpu_platforms() -> List[HardwareSpec]:
    return [spec for spec in ALL_PLATFORMS if spec.is_gpu]
