"""Measurement-noise model for the simulated runtime collection.

Real runtime measurements on Summit / Corona are noisy (shared nodes, DVFS,
OS jitter); the paper's Table II shows CPU runtimes with very large standard
deviations.  The simulator reproduces that character with a multiplicative
log-normal noise term whose sigma comes from the hardware spec.

Noise is **deterministic given the configuration**: the random generator is
seeded from a stable hash of the (kernel, variant, platform, sizes, teams,
threads, repetition) tuple, so datasets are reproducible across runs and
machines without storing anything.
"""

from __future__ import annotations

import hashlib
from typing import Mapping, Optional

import numpy as np


def stable_seed(*parts: object) -> int:
    """Derive a 64-bit seed from the repr of the given parts (stable across runs)."""
    digest = hashlib.sha256("||".join(repr(p) for p in parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class NoiseModel:
    """Multiplicative log-normal noise with optional additive jitter floor."""

    def __init__(self, sigma: float, jitter_us: float = 0.5) -> None:
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.sigma = float(sigma)
        self.jitter_us = float(jitter_us)

    def apply(self, runtime_us: float, *seed_parts: object) -> float:
        """Return the noisy runtime for a deterministic configuration seed."""
        if runtime_us < 0:
            raise ValueError("runtime must be non-negative")
        rng = np.random.default_rng(stable_seed(*seed_parts))
        factor = float(np.exp(rng.normal(0.0, self.sigma))) if self.sigma > 0 else 1.0
        jitter = float(rng.exponential(self.jitter_us)) if self.jitter_us > 0 else 0.0
        return runtime_us * factor + jitter

    def sample_factors(self, count: int, seed: Optional[int] = None) -> np.ndarray:
        """Draw *count* multiplicative noise factors (for statistics tests)."""
        rng = np.random.default_rng(seed)
        return np.exp(rng.normal(0.0, self.sigma, size=count))
