"""``repro.hardware`` — analytical accelerator simulator.

Substitute for the paper's runtime measurements on Summit (IBM POWER9 +
NVIDIA V100) and Corona (AMD EPYC 7401 + AMD MI50): device specs, a
roofline-style runtime model with parallel-efficiency / occupancy / transfer
terms, and a deterministic measurement-noise model.
"""

from .noise import NoiseModel, stable_seed
from .simulator import RuntimeSimulator, SimulationResult, analytical_cost_model
from .specs import (
    ALL_PLATFORMS,
    DeviceKind,
    EPYC7401,
    HardwareSpec,
    MI50,
    POWER9,
    V100,
    cpu_platforms,
    get_platform,
    gpu_platforms,
)

__all__ = [
    "ALL_PLATFORMS",
    "DeviceKind",
    "EPYC7401",
    "HardwareSpec",
    "MI50",
    "NoiseModel",
    "POWER9",
    "RuntimeSimulator",
    "SimulationResult",
    "V100",
    "analytical_cost_model",
    "cpu_platforms",
    "get_platform",
    "gpu_platforms",
    "stable_seed",
]
