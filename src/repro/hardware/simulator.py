"""Analytical runtime simulator — the "Runtime Measurement Module" substitute.

The original pipeline compiled each variant and measured it on Summit and
Corona with ``gettimeofday`` around the kernel (paper §IV-A.3).  Without that
hardware, this module predicts the runtime of a kernel variant on a
:class:`~repro.hardware.specs.HardwareSpec` with a roofline-style model:

1. static analysis of the variant (operation counts, iteration space,
   arithmetic intensity) via :func:`repro.advisor.kernel_analysis.analyze_kernel`,
2. effective parallel throughput given the requested teams/threads, the
   device's core count, its occupancy knee and the parallel iteration count
   exposed by the chosen ``collapse`` level,
3. runtime = max(compute time, memory time) + launch / parallel-region
   overhead + (for ``*_mem`` variants) host↔device transfer time,
4. multiplicative log-normal measurement noise (deterministic per
   configuration).

The absolute numbers are synthetic, but the *structure* the GNN must learn is
the same as on the real clusters: runtimes scale with trip counts and data
sizes, GPU offloading wins only when the kernel exposes enough parallelism to
amortize launch and transfer costs, collapsing nested loops helps when the
outer loop alone cannot saturate the device, and CPU measurements are noisy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..advisor.kernel_analysis import KernelAnalysis, analyze_kernel_cached
from ..advisor.transformations import KernelVariant
from .noise import NoiseModel
from .specs import HardwareSpec


@dataclass(frozen=True)
class SimulationResult:
    """Breakdown of one simulated measurement (all times in microseconds)."""

    runtime_us: float
    compute_us: float
    memory_us: float
    transfer_us: float
    overhead_us: float
    occupancy: float
    parallel_iterations: int

    @property
    def noiseless_us(self) -> float:
        return max(self.compute_us, self.memory_us) + self.transfer_us + self.overhead_us


class RuntimeSimulator:
    """Simulates kernel-variant execution on one hardware platform."""

    def __init__(self, platform: HardwareSpec, noisy: bool = True,
                 jitter_us: float = 0.5) -> None:
        self.platform = platform
        self.noisy = noisy
        self.noise = NoiseModel(platform.noise_sigma if noisy else 0.0, jitter_us if noisy else 0.0)

    # ------------------------------------------------------------------ #
    def _effective_parallelism(self, variant: KernelVariant, analysis: KernelAnalysis,
                               num_teams: int, num_threads: int) -> float:
        """Fraction of the device's peak the configuration can use (0..1]."""
        platform = self.platform
        parallel_iters = analysis.parallel_iterations_with_collapse(variant.collapse)
        if platform.is_gpu:
            # requested concurrency: teams map to CUs/SMs, threads to lanes
            requested = max(1, num_teams * max(num_threads, 1))
            usable = min(parallel_iters, requested, platform.saturation_parallelism)
            occupancy = usable / platform.saturation_parallelism
            # a kernel with very few iterations cannot even fill one wavefront
            occupancy = max(occupancy, min(parallel_iters, 64) / platform.saturation_parallelism)
        else:
            threads = max(1, min(num_threads, platform.compute_units))
            # load imbalance when the iteration count does not divide the threads
            usable_threads = min(threads, parallel_iters)
            imbalance = usable_threads / max(1.0, float(threads)) if parallel_iters < threads else 1.0
            amdahl = 1.0 / (platform.serial_fraction
                            + (1.0 - platform.serial_fraction) / usable_threads)
            occupancy = (amdahl / platform.compute_units) * imbalance
        return max(min(occupancy, 1.0), 1e-6)

    def _transfer_time(self, variant: KernelVariant, sizes: Mapping[str, int]) -> float:
        """Host↔device transfer cost for ``*_mem`` variants, microseconds."""
        if not variant.includes_data_transfer or not self.platform.is_gpu:
            return 0.0
        platform = self.platform
        total = 0.0
        for array in variant.kernel.arrays:
            bytes_moved = array.num_bytes(sizes)
            # tofrom arrays cross the link twice (copy in and copy out)
            trips = 2 if array.direction == "tofrom" else 1
            total += trips * (platform.transfer_latency_us
                              + bytes_moved / platform.transfer_bytes_per_us)
        return total

    # ------------------------------------------------------------------ #
    def simulate(
        self,
        variant: KernelVariant,
        sizes: Optional[Mapping[str, int]] = None,
        num_teams: int = 64,
        num_threads: int = 16,
        repetition: int = 0,
    ) -> SimulationResult:
        """Simulate one measurement of *variant* and return the breakdown."""
        if variant.is_gpu != self.platform.is_gpu:
            raise ValueError(
                f"variant {variant.kind.value!r} cannot run on {self.platform.name} "
                f"({'GPU' if self.platform.is_gpu else 'CPU'} platform)")
        concrete = variant.kernel.sizes_with_defaults(sizes)
        analysis = analyze_kernel_cached(variant.kernel, concrete)
        occupancy = self._effective_parallelism(variant, analysis, num_teams, num_threads)

        flops = analysis.operations.total_flops
        bytes_touched = analysis.operations.memory_bytes
        compute_us = flops / (self.platform.peak_flops_per_us * occupancy)
        # memory bandwidth saturates with a milder (square-root) dependence on
        # occupancy: even a partially filled device can stream memory well
        bandwidth_fraction = min(1.0, max(occupancy ** 0.5, 0.02))
        memory_us = bytes_touched / (self.platform.memory_bytes_per_us * bandwidth_fraction)
        transfer_us = self._transfer_time(variant, concrete)
        overhead_us = self.platform.launch_overhead_us

        noiseless = max(compute_us, memory_us) + transfer_us + overhead_us
        runtime = self.noise.apply(
            noiseless,
            self.platform.name, variant.name, tuple(sorted(concrete.items())),
            num_teams, num_threads, repetition,
        ) if self.noisy else noiseless

        return SimulationResult(
            runtime_us=float(runtime),
            compute_us=float(compute_us),
            memory_us=float(memory_us),
            transfer_us=float(transfer_us),
            overhead_us=float(overhead_us),
            occupancy=float(occupancy),
            parallel_iterations=analysis.parallel_iterations_with_collapse(variant.collapse),
        )

    def measure(self, variant: KernelVariant, sizes: Optional[Mapping[str, int]] = None,
                num_teams: int = 64, num_threads: int = 16, repetition: int = 0) -> float:
        """Convenience wrapper returning only the runtime in microseconds."""
        return self.simulate(variant, sizes, num_teams, num_threads, repetition).runtime_us


def analytical_cost_model(platform: HardwareSpec):
    """Return a noise-free cost-model callable for :class:`OpenMPAdvisor`.

    The returned function signature matches ``repro.advisor.CostModel``.
    """
    simulator = RuntimeSimulator(platform, noisy=False)

    def cost(variant: KernelVariant, sizes: Mapping[str, int],
             num_teams: int, num_threads: int) -> float:
        return simulator.simulate(variant, sizes, num_teams, num_threads).runtime_us

    return cost
