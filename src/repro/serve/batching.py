"""Request queueing and micro-batch formation for the serving runtime.

The serving :class:`~repro.serve.server.Server` separates *what to run*
(this module) from *how to run it* (the worker pool in ``server.py``):

* every request is tagged with a :class:`ShardKey` — the platform it
  targets plus the parse mode and forward dtype — so only requests that can
  legally share one GNN forward are ever coalesced,
* single predictions (``Server.submit``) enter a per-shard queue and are
  **coalesced into micro-batches**: a batch closes when it reaches
  ``max_batch_size`` or when its oldest request has waited
  ``batch_window_s``, whichever comes first — under the default packed
  block-diagonal forward (:mod:`repro.gnn.packing`) a coalesced float64
  result is bit-identical to a solo prediction for *any* batch
  composition,
* explicit batch calls (``Server.predict_batch``) travel as one
  :class:`WorkItem` and are never merged with other traffic: the caller's
  batching is preserved exactly, so a fixed request list produces the
  same bits regardless of concurrent traffic (and, packed or not, float64
  results match the single-threaded reference bit for bit).

The queue also enforces the *admission* half of the failure model (see
``repro.reliability`` and SERVING.md's "Failure model"):

* a ``max_queue_depth`` bound sheds work at enqueue time with
  :class:`~repro.reliability.errors.ServerOverloaded` instead of letting
  the backlog (and every queued caller's latency) grow without bound,
* per-request **deadlines** are honoured at *dequeue* time too: a request
  whose deadline passed while queued is dropped with
  :class:`~repro.reliability.errors.DeadlineExceeded` before a worker
  wastes a forward on an answer nobody is waiting for,
* post-``close()`` use raises the typed
  :class:`~repro.reliability.errors.ServerClosedError` (a ``RuntimeError``
  subclass, so existing ``except RuntimeError`` handlers keep working).

:class:`MicroBatcher` owns the shards, one condition variable, and the
batch-formation policy; it is fully lock-protected and deliberately knows
nothing about models or graphs, so its scheduling behaviour is unit-testable
without training anything.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Deque, List, NamedTuple, Optional, Tuple

from ..obs.metrics import MetricsRegistry
from ..obs.tracing import complete_trace
from ..reliability.errors import (
    DeadlineExceeded,
    ServerClosedError,
    ServerOverloaded,
)
from ..reliability.faults import SITE_SCHEDULE, fault_point

__all__ = ["BatcherStats", "MicroBatcher", "SHUTDOWN_MESSAGE", "ShardKey",
           "WorkItem"]

#: raised by both the queue and the inline Server path on post-close use —
#: one string so the two rejection sites can never drift apart
SHUTDOWN_MESSAGE = ("the serving queue is shut down; create a new Server "
                    "(or don't close this one) to keep serving")


class ShardKey(NamedTuple):
    """What must match for two requests to share one batched forward."""

    platform: str            # canonical platform name (one model each)
    snippet: bool            # parse mode changes the graph, so never mix
    dtype: Optional[str]     # numpy dtype str of the forward, None = float64


class WorkItem(NamedTuple):
    """One unit a worker executes: a micro-batch of singles or a whole job.

    ``deadlines`` carries each request's absolute ``time.monotonic()``
    deadline (``None`` = unbounded): per-spec for singles, and a single
    shared entry for a job.  Workers re-check them at execution time.
    ``enqueued`` (one monotonic timestamp per future) feeds the
    queue-wait histogram, and ``traces`` carries each request's
    :class:`repro.obs.tracing.Trace` handle (``None`` entries when tracing
    is off) so the worker that resolves a request also completes its span
    tree; both trail with defaults, keeping pre-observability positional
    construction working.
    """

    key: ShardKey
    specs: List[object]          # SourceSpecs, in result order
    futures: List[Future]        # per-spec for singles; exactly one for a job
    kind: str                    # "singles" | "job"
    deadlines: List[Optional[float]]
    enqueued: Tuple[float, ...] = ()
    traces: Tuple[Optional[object], ...] = ()


@dataclass
class _Single:
    spec: object
    future: Future
    enqueued: float
    deadline: Optional[float] = None
    trace: Optional[object] = None


@dataclass
class _Job:
    specs: List[object]
    future: Future
    enqueued: float
    deadline: Optional[float] = None
    trace: Optional[object] = None


@dataclass
class _Shard:
    """Pending work for one shard key (guarded by the batcher lock)."""

    key: ShardKey
    singles: Deque[_Single] = field(default_factory=deque)
    jobs: Deque[_Job] = field(default_factory=deque)

    def pending(self) -> int:
        return len(self.singles) + len(self.jobs)


class BatcherStats(NamedTuple):
    """Monotonic accounting of everything the batcher has scheduled."""

    singles_submitted: int       # requests entered through submit()
    jobs_submitted: int          # explicit predict_batch jobs
    batches_executed: int        # work items handed to workers
    requests_executed: int       # specs across all executed work items
    max_coalesced: int           # largest single-request micro-batch formed
    coalesced_total: int         # singles that travelled in micro-batches
    peak_depth: int              # max simultaneous pending requests observed
    shed: int = 0                # requests refused by admission control
    deadline_expired: int = 0    # requests dropped at dequeue, deadline past


class MicroBatcher:
    """Shard-aware request queue with window/size micro-batch formation.

    All public methods are thread-safe.  Workers call :meth:`next_batch`,
    which blocks until a batch is due (or ``None`` after :meth:`stop` once
    the queue is fully drained — pending futures are never dropped), and
    must pair every received item with one :meth:`task_done`.

    ``max_queue_depth`` (0 = unbounded) caps total pending *requests*
    (specs, not work items) across all shards; enqueues beyond it raise
    :class:`ServerOverloaded`.
    """

    def __init__(self, max_batch_size: int, batch_window_s: float,
                 max_queue_depth: int = 0,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if batch_window_s < 0:
            raise ValueError("batch_window_s must be >= 0")
        if max_queue_depth < 0:
            raise ValueError("max_queue_depth must be >= 0 (0 = unbounded)")
        self.max_batch_size = int(max_batch_size)
        self.batch_window_s = float(batch_window_s)
        self.max_queue_depth = int(max_queue_depth)
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._shards: "OrderedDict[ShardKey, _Shard]" = OrderedDict()
        self._rotation = 0
        self._stopping = False
        self._in_flight = 0
        # accounting lives in a repro.obs metrics registry (shared with the
        # owning Server, so its stats()/healthz() are views over the same
        # instruments); scheduling state stays under the batcher lock
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._singles = self.metrics.counter("serve.singles_submitted")
        self._jobs = self.metrics.counter("serve.jobs_submitted")
        self._batches = self.metrics.counter("serve.batches_executed")
        self._requests_executed = self.metrics.counter(
            "serve.requests_executed")
        self._coalesced_total = self.metrics.counter("serve.coalesced_total")
        self._max_coalesced = self.metrics.gauge("serve.max_coalesced")
        self._peak_depth = self.metrics.gauge("serve.peak_queue_depth")
        self._shed = self.metrics.counter("serve.shed")
        self._deadline_expired = self.metrics.counter(
            "serve.deadline_expired_queue")

    # ------------------------------------------------------------------ #
    # producer side
    # ------------------------------------------------------------------ #
    def _shard(self, key: ShardKey) -> _Shard:
        shard = self._shards.get(key)
        if shard is None:
            shard = self._shards[key] = _Shard(key)
        return shard

    def _depth_locked(self) -> int:
        return sum(len(shard.singles) + sum(len(job.specs)
                                            for job in shard.jobs)
                   for shard in self._shards.values())

    def _note_depth(self) -> None:
        self._peak_depth.set_max(self._depth_locked())

    def _checked_open(self) -> None:
        if self._stopping:
            raise ServerClosedError(SHUTDOWN_MESSAGE)

    def _checked_admission(self, incoming: int) -> None:
        if not self.max_queue_depth:
            return
        depth = self._depth_locked()
        if depth + incoming > self.max_queue_depth:
            self._shed.inc(incoming)
            raise ServerOverloaded(
                f"serving queue is full ({depth} pending, limit "
                f"{self.max_queue_depth}); retry with backoff or raise "
                "ServerConfig.max_queue_depth")

    def enqueue_single(self, key: ShardKey, spec,
                       deadline: Optional[float] = None,
                       trace=None) -> Future:
        """Queue one prediction for micro-batch coalescing."""
        future: Future = Future()
        with self._ready:
            self._checked_open()
            self._checked_admission(1)
            self._shard(key).singles.append(
                _Single(spec, future, time.monotonic(), deadline, trace))
            self._singles.inc()
            self._note_depth()
            # notify_all: workers and wait_idle() callers share this
            # condition, and a single notify could wake only an idle-waiter,
            # losing the one wakeup a blocked worker needed
            self._ready.notify_all()
        return future

    def enqueue_job(self, key: ShardKey, specs: List[object],
                    deadline: Optional[float] = None,
                    trace=None) -> Future:
        """Queue one explicit batch; executed whole, never merged."""
        future: Future = Future()
        with self._ready:
            self._checked_open()
            self._checked_admission(len(specs))
            self._shard(key).jobs.append(
                _Job(list(specs), future, time.monotonic(), deadline, trace))
            self._jobs.inc()
            self._note_depth()
            self._ready.notify_all()
        return future

    # ------------------------------------------------------------------ #
    # consumer side (workers)
    # ------------------------------------------------------------------ #
    def _pop_singles(self, shard: _Shard) -> WorkItem:
        taken = [shard.singles.popleft()
                 for _ in range(min(len(shard.singles), self.max_batch_size))]
        self._max_coalesced.set_max(len(taken))
        self._coalesced_total.inc(len(taken))
        return WorkItem(shard.key, [s.spec for s in taken],
                        [s.future for s in taken], "singles",
                        [s.deadline for s in taken],
                        tuple(s.enqueued for s in taken),
                        tuple(s.trace for s in taken))

    def _rotated_shards(self) -> List[_Shard]:
        """Shards starting at a rotating offset, so no shard's traffic can
        monopolise scheduling just by having been created first."""
        shards = list(self._shards.values())
        if len(shards) > 1:
            offset = self._rotation % len(shards)
            self._rotation += 1
            shards = shards[offset:] + shards[:offset]
        return shards

    def _pop_expired_locked(self, now: float) -> List[Tuple[Future, object]]:
        """Drop queued requests whose deadline has already passed.

        Returns their ``(future, trace)`` pairs; the caller sets
        :class:`DeadlineExceeded` (and completes the traces) *outside* the
        lock (future callbacks run on the setting thread and must not
        deadlock against the batcher).
        """
        expired: List[Tuple[Future, object]] = []
        for shard in self._shards.values():
            if any(s.deadline is not None and s.deadline <= now
                   for s in shard.singles):
                keep: Deque[_Single] = deque()
                for single in shard.singles:
                    if single.deadline is not None and single.deadline <= now:
                        expired.append((single.future, single.trace))
                        self._deadline_expired.inc()
                    else:
                        keep.append(single)
                shard.singles = keep
            if any(j.deadline is not None and j.deadline <= now
                   for j in shard.jobs):
                keep_jobs: Deque[_Job] = deque()
                for job in shard.jobs:
                    if job.deadline is not None and job.deadline <= now:
                        expired.append((job.future, job.trace))
                        self._deadline_expired.inc(len(job.specs))
                    else:
                        keep_jobs.append(job)
                shard.jobs = keep_jobs
        if expired:
            self._ready.notify_all()
        return expired

    def _next_request_deadline_locked(self) -> Optional[float]:
        """Earliest queued request deadline (bounds the scheduler's sleep)."""
        earliest: Optional[float] = None
        for shard in self._shards.values():
            for single in shard.singles:
                if single.deadline is not None and \
                        (earliest is None or single.deadline < earliest):
                    earliest = single.deadline
            for job in shard.jobs:
                if job.deadline is not None and \
                        (earliest is None or job.deadline < earliest):
                    earliest = job.deadline
        return earliest

    def _take_locked(self, now: float) -> Tuple[Optional[WorkItem], Optional[float]]:
        """One scheduling pass; returns (item, next_deadline)."""
        deadline: Optional[float] = None
        shards = self._rotated_shards()
        # overdue singles first: the batch window is their latency contract,
        # and sustained job traffic (every finished predict_batch replaced by
        # another) must not be able to starve a queued single past it
        overdue: Optional[_Shard] = None
        overdue_due = now
        for shard in shards:
            if not shard.singles:
                continue
            due = shard.singles[0].enqueued + self.batch_window_s
            if due <= overdue_due or self._stopping:
                overdue, overdue_due = shard, due
        if overdue is not None:
            return self._pop_singles(overdue), None
        # then jobs, in rotation order: already whole batches, each gating a
        # blocked caller, and the rotation keeps a saturated shard from
        # starving other platforms' jobs
        for shard in shards:
            if shard.jobs:
                job = shard.jobs.popleft()
                return WorkItem(shard.key, job.specs, [job.future], "job",
                                [job.deadline], (job.enqueued,),
                                (job.trace,)), None
        for shard in shards:
            if not shard.singles:
                continue
            due = shard.singles[0].enqueued + self.batch_window_s
            if len(shard.singles) >= self.max_batch_size:
                return self._pop_singles(shard), None
            deadline = due if deadline is None else min(deadline, due)
        return None, deadline

    def next_batch(self) -> Optional[WorkItem]:
        """Block until a batch is due; ``None`` once stopped *and* drained."""
        while True:
            expired: List[Tuple[Future, object]] = []
            item: Optional[WorkItem] = None
            with self._ready:
                now = time.monotonic()
                expired = self._pop_expired_locked(now)
                if not expired:
                    item, wake = self._take_locked(now)
                    if item is not None:
                        self._in_flight += 1
                        self._batches.inc()
                        self._requests_executed.inc(len(item.specs))
                    elif self._stopping:
                        return None
                    else:
                        next_deadline = self._next_request_deadline_locked()
                        if next_deadline is not None:
                            wake = next_deadline if wake is None \
                                else min(wake, next_deadline)
                        timeout = None if wake is None \
                            else max(wake - time.monotonic(), 0.0)
                        self._ready.wait(timeout)
                        continue
            if expired:
                # outside the lock: done-callbacks run on the setting thread
                for future, trace in expired:
                    error = DeadlineExceeded(
                        "request deadline expired while queued (the server "
                        "could not schedule it in time)")
                    complete_trace(trace, error)
                    future.set_exception(error)
                continue
            fault_point(SITE_SCHEDULE)
            return item

    def task_done(self) -> None:
        """Ack one item received from :meth:`next_batch` (enables drain)."""
        with self._ready:
            self._in_flight -= 1
            self._ready.notify_all()

    # ------------------------------------------------------------------ #
    # lifecycle / introspection
    # ------------------------------------------------------------------ #
    def pending(self) -> int:
        with self._lock:
            return sum(shard.pending() for shard in self._shards.values())

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until every queued request has been executed and acked.

        Returns ``False`` promptly when *timeout* expires — even with a
        wedged worker holding an item forever, the caller gets control back
        within the timeout (plus scheduler noise), never later.  A
        ``timeout`` of 0 is a non-blocking idleness poll.
        """
        end = None if timeout is None else time.monotonic() + timeout
        with self._ready:
            while (self._in_flight
                   or any(shard.pending() for shard in self._shards.values())):
                remaining = None if end is None else end - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._ready.wait(remaining)
            return True

    def stop(self) -> None:
        """Refuse new work; queued work still runs (futures are honored)."""
        with self._ready:
            self._stopping = True
            self._ready.notify_all()

    def stats(self) -> BatcherStats:
        # each instrument snapshot is individually coherent; the batcher
        # lock is additionally held so no enqueue/dequeue interleaves a
        # read, keeping the tuple as coherent as the pre-registry counters
        with self._lock:
            return BatcherStats(
                singles_submitted=self._singles.value,
                jobs_submitted=self._jobs.value,
                batches_executed=self._batches.value,
                requests_executed=self._requests_executed.value,
                max_coalesced=int(self._max_coalesced.value),
                coalesced_total=self._coalesced_total.value,
                peak_depth=int(self._peak_depth.value),
                shed=self._shed.value,
                deadline_expired=self._deadline_expired.value,
            )
