"""Request queueing and micro-batch formation for the serving runtime.

The serving :class:`~repro.serve.server.Server` separates *what to run*
(this module) from *how to run it* (the worker pool in ``server.py``):

* every request is tagged with a :class:`ShardKey` — the platform it
  targets plus the parse mode and forward dtype — so only requests that can
  legally share one GNN forward are ever coalesced,
* single predictions (``Server.submit``) enter a per-shard queue and are
  **coalesced into micro-batches**: a batch closes when it reaches
  ``max_batch_size`` or when its oldest request has waited
  ``batch_window_s``, whichever comes first,
* explicit batch calls (``Server.predict_batch``) travel as one
  :class:`WorkItem` and are never merged with other traffic: the caller's
  batching is preserved exactly, which keeps float64 results bit-identical
  to a single-threaded run of the same request list (BLAS kernels are not
  bit-stable across *different* batch shapes, so reproducibility requires
  composition-stable batches).

:class:`MicroBatcher` owns the shards, one condition variable, and the
batch-formation policy; it is fully lock-protected and deliberately knows
nothing about models or graphs, so its scheduling behaviour is unit-testable
without training anything.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Deque, List, NamedTuple, Optional, Tuple

__all__ = ["BatcherStats", "MicroBatcher", "SHUTDOWN_MESSAGE", "ShardKey",
           "WorkItem"]

#: raised by both the queue and the inline Server path on post-close use —
#: one string so the two rejection sites can never drift apart
SHUTDOWN_MESSAGE = ("the serving queue is shut down; create a new Server "
                    "(or don't close this one) to keep serving")


class ShardKey(NamedTuple):
    """What must match for two requests to share one batched forward."""

    platform: str            # canonical platform name (one model each)
    snippet: bool            # parse mode changes the graph, so never mix
    dtype: Optional[str]     # numpy dtype str of the forward, None = float64


class WorkItem(NamedTuple):
    """One unit a worker executes: a micro-batch of singles or a whole job."""

    key: ShardKey
    specs: List[object]          # SourceSpecs, in result order
    futures: List[Future]        # per-spec for singles; exactly one for a job
    kind: str                    # "singles" | "job"


@dataclass
class _Single:
    spec: object
    future: Future
    enqueued: float


@dataclass
class _Job:
    specs: List[object]
    future: Future
    enqueued: float


@dataclass
class _Shard:
    """Pending work for one shard key (guarded by the batcher lock)."""

    key: ShardKey
    singles: Deque[_Single] = field(default_factory=deque)
    jobs: Deque[_Job] = field(default_factory=deque)

    def pending(self) -> int:
        return len(self.singles) + len(self.jobs)


class BatcherStats(NamedTuple):
    """Monotonic accounting of everything the batcher has scheduled."""

    singles_submitted: int       # requests entered through submit()
    jobs_submitted: int          # explicit predict_batch jobs
    batches_executed: int        # work items handed to workers
    requests_executed: int       # specs across all executed work items
    max_coalesced: int           # largest single-request micro-batch formed
    coalesced_total: int         # singles that travelled in micro-batches
    peak_depth: int              # max simultaneous pending requests observed


class MicroBatcher:
    """Shard-aware request queue with window/size micro-batch formation.

    All public methods are thread-safe.  Workers call :meth:`next_batch`,
    which blocks until a batch is due (or ``None`` after :meth:`stop` once
    the queue is fully drained — pending futures are never dropped), and
    must pair every received item with one :meth:`task_done`.
    """

    def __init__(self, max_batch_size: int, batch_window_s: float) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if batch_window_s < 0:
            raise ValueError("batch_window_s must be >= 0")
        self.max_batch_size = int(max_batch_size)
        self.batch_window_s = float(batch_window_s)
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._shards: "OrderedDict[ShardKey, _Shard]" = OrderedDict()
        self._rotation = 0
        self._stopping = False
        self._in_flight = 0
        # stats (guarded by the lock)
        self._singles = 0
        self._jobs = 0
        self._batches = 0
        self._requests_executed = 0
        self._max_coalesced = 0
        self._coalesced_total = 0
        self._peak_depth = 0

    # ------------------------------------------------------------------ #
    # producer side
    # ------------------------------------------------------------------ #
    def _shard(self, key: ShardKey) -> _Shard:
        shard = self._shards.get(key)
        if shard is None:
            shard = self._shards[key] = _Shard(key)
        return shard

    def _note_depth(self) -> None:
        depth = sum(shard.pending() for shard in self._shards.values())
        if depth > self._peak_depth:
            self._peak_depth = depth

    def _checked_open(self) -> None:
        if self._stopping:
            raise RuntimeError(SHUTDOWN_MESSAGE)

    def enqueue_single(self, key: ShardKey, spec) -> Future:
        """Queue one prediction for micro-batch coalescing."""
        future: Future = Future()
        with self._ready:
            self._checked_open()
            self._shard(key).singles.append(_Single(spec, future, time.monotonic()))
            self._singles += 1
            self._note_depth()
            # notify_all: workers and wait_idle() callers share this
            # condition, and a single notify could wake only an idle-waiter,
            # losing the one wakeup a blocked worker needed
            self._ready.notify_all()
        return future

    def enqueue_job(self, key: ShardKey, specs: List[object]) -> Future:
        """Queue one explicit batch; executed whole, never merged."""
        future: Future = Future()
        with self._ready:
            self._checked_open()
            self._shard(key).jobs.append(_Job(list(specs), future, time.monotonic()))
            self._jobs += 1
            self._note_depth()
            self._ready.notify_all()
        return future

    # ------------------------------------------------------------------ #
    # consumer side (workers)
    # ------------------------------------------------------------------ #
    def _pop_singles(self, shard: _Shard) -> WorkItem:
        taken = [shard.singles.popleft()
                 for _ in range(min(len(shard.singles), self.max_batch_size))]
        self._max_coalesced = max(self._max_coalesced, len(taken))
        self._coalesced_total += len(taken)
        return WorkItem(shard.key, [s.spec for s in taken],
                        [s.future for s in taken], "singles")

    def _rotated_shards(self) -> List[_Shard]:
        """Shards starting at a rotating offset, so no shard's traffic can
        monopolise scheduling just by having been created first."""
        shards = list(self._shards.values())
        if len(shards) > 1:
            offset = self._rotation % len(shards)
            self._rotation += 1
            shards = shards[offset:] + shards[:offset]
        return shards

    def _take_locked(self, now: float) -> Tuple[Optional[WorkItem], Optional[float]]:
        """One scheduling pass; returns (item, next_deadline)."""
        deadline: Optional[float] = None
        shards = self._rotated_shards()
        # overdue singles first: the batch window is their latency contract,
        # and sustained job traffic (every finished predict_batch replaced by
        # another) must not be able to starve a queued single past it
        overdue: Optional[_Shard] = None
        overdue_due = now
        for shard in shards:
            if not shard.singles:
                continue
            due = shard.singles[0].enqueued + self.batch_window_s
            if due <= overdue_due or self._stopping:
                overdue, overdue_due = shard, due
        if overdue is not None:
            return self._pop_singles(overdue), None
        # then jobs, in rotation order: already whole batches, each gating a
        # blocked caller, and the rotation keeps a saturated shard from
        # starving other platforms' jobs
        for shard in shards:
            if shard.jobs:
                job = shard.jobs.popleft()
                return WorkItem(shard.key, job.specs, [job.future], "job"), None
        for shard in shards:
            if not shard.singles:
                continue
            due = shard.singles[0].enqueued + self.batch_window_s
            if len(shard.singles) >= self.max_batch_size:
                return self._pop_singles(shard), None
            deadline = due if deadline is None else min(deadline, due)
        return None, deadline

    def next_batch(self) -> Optional[WorkItem]:
        """Block until a batch is due; ``None`` once stopped *and* drained."""
        with self._ready:
            while True:
                item, deadline = self._take_locked(time.monotonic())
                if item is not None:
                    self._in_flight += 1
                    self._batches += 1
                    self._requests_executed += len(item.specs)
                    return item
                if self._stopping:
                    return None
                timeout = None if deadline is None \
                    else max(deadline - time.monotonic(), 0.0)
                self._ready.wait(timeout)

    def task_done(self) -> None:
        """Ack one item received from :meth:`next_batch` (enables drain)."""
        with self._ready:
            self._in_flight -= 1
            self._ready.notify_all()

    # ------------------------------------------------------------------ #
    # lifecycle / introspection
    # ------------------------------------------------------------------ #
    def pending(self) -> int:
        with self._lock:
            return sum(shard.pending() for shard in self._shards.values())

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until every queued request has been executed and acked."""
        end = None if timeout is None else time.monotonic() + timeout
        with self._ready:
            while (self._in_flight
                   or any(shard.pending() for shard in self._shards.values())):
                remaining = None if end is None else end - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._ready.wait(remaining)
            return True

    def stop(self) -> None:
        """Refuse new work; queued work still runs (futures are honored)."""
        with self._ready:
            self._stopping = True
            self._ready.notify_all()

    def stats(self) -> BatcherStats:
        with self._lock:
            return BatcherStats(
                singles_submitted=self._singles,
                jobs_submitted=self._jobs,
                batches_executed=self._batches,
                requests_executed=self._requests_executed,
                max_coalesced=self._max_coalesced,
                coalesced_total=self._coalesced_total,
                peak_depth=self._peak_depth,
            )
