"""``repro.serve`` — the concurrent micro-batching serving runtime.

Built on the re-entrant engine contexts of :mod:`repro.nn.context`:

* :class:`~repro.serve.server.Server` — owns one trained model set, shards
  requests per platform across a worker pool, coalesces single predictions
  into micro-batches, and exposes sync ``submit`` / ``predict`` /
  ``predict_batch`` plus ``drain`` / ``close`` lifecycle hooks,
* :class:`~repro.serve.server.ServerConfig` — worker count, batch window
  and max batch size (``REPRO_SERVE_WORKERS`` & co read by ``from_env``),
* :class:`~repro.serve.batching.MicroBatcher` — the shard-aware queue and
  batch-formation policy, reusable without a model.

The runtime degrades through the typed failure model of
:mod:`repro.reliability` (re-exported here for convenience): per-request
deadlines (``DeadlineExceeded``), load shedding (``ServerOverloaded``),
per-shard circuit breakers (``CircuitOpenError``), transient-failure
retries with backoff, and ``ServerClosedError`` on post-close use.

``Session.predict_batch`` is a thin client of an embedded inline server,
so the synchronous facade and the concurrent runtime share one execution
path.  See ``SERVING.md`` for the architecture, the bit-reproducibility
contract and the failure model.
"""

from ..reliability.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    ServerClosedError,
    ServerOverloaded,
)
from .batching import BatcherStats, MicroBatcher, ShardKey, WorkItem
from .server import Server, ServerConfig, ServerStats, resolve_result_dtype

__all__ = [
    "BatcherStats",
    "CircuitOpenError",
    "DeadlineExceeded",
    "MicroBatcher",
    "Server",
    "ServerClosedError",
    "ServerConfig",
    "ServerOverloaded",
    "ServerStats",
    "ShardKey",
    "WorkItem",
    "resolve_result_dtype",
]
