"""The concurrent serving runtime: one model set, many client threads.

A :class:`Server` owns the trained per-platform models of one
:class:`~repro.api.session.Session` and serves predictions from a pool of
worker threads:

* **sharding** — requests are grouped per (platform, parse mode, dtype)
  shard; any worker may execute any shard's next micro-batch, so hot
  platforms use the whole pool while each batch stays homogeneous,
* **micro-batching** — single predictions submitted through
  :meth:`Server.submit` / :meth:`Server.predict` coalesce into batches of
  up to ``max_batch_size`` requests within a ``batch_window_s`` window
  (the :mod:`repro.serve.batching` policy), amortising one GNN forward
  over many callers — by default a **packed** block-diagonal forward
  (:mod:`repro.gnn.packing`) whose float64 results are bit-identical to
  solo predictions regardless of batch composition,
* **whole-job batches** — :meth:`Server.predict_batch` executes the
  caller's request list as one unit, preserving its batch composition so
  float64 results are bit-identical to a single-threaded run,
* **re-entrant engine state** — every batch executes inside a thread-local
  :class:`repro.nn.InferenceContext` (via the model's ``predict``), and all
  shared caches (graph construction, edge layouts, scatter matrices) are
  lock-protected, so no external serialization is needed anywhere.

The runtime also implements the **failure model** of
:mod:`repro.reliability` (knobs on :class:`ServerConfig`, degradation
table in SERVING.md):

* per-request **deadlines** — ``deadline_s`` on every entry point (or
  ``default_deadline_s``); expired work is dropped at dequeue time and
  callers get :class:`~repro.reliability.errors.DeadlineExceeded`, never
  an unbounded wait,
* **retries** — transient execution failures (classified by
  :func:`~repro.reliability.errors.is_transient`) are retried with
  exponential backoff + jitter under a server-wide
  :class:`~repro.reliability.retry.RetryBudget`; deterministic failures
  (e.g. parse errors) fail fast,
* a per-shard **circuit breaker** — a persistently failing shard fails
  fast with :class:`~repro.reliability.errors.CircuitOpenError` instead
  of consuming pool capacity,
* **load shedding** — ``max_queue_depth`` bounds the backlog; beyond it
  submissions raise :class:`~repro.reliability.errors.ServerOverloaded`.

With ``num_workers=0`` the server runs **inline**: no threads are started
and every call executes synchronously on the caller's thread through the
exact same execution path.  That is the default configuration the
:class:`~repro.api.session.Session` facade embeds (override with the
``REPRO_SERVE_*`` environment variables or an explicit
:class:`ServerConfig`).
"""

from __future__ import annotations

import os
import threading
import time
import weakref
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional, Sequence

import numpy as np

from ..nn.context import serving_scope
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import (
    Span,
    activate_span,
    begin_trace,
    complete_trace,
    span as obs_span,
)
from ..reliability.breaker import CircuitBreaker
from ..reliability.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    ServerClosedError,
)
from ..reliability.faults import (
    SITE_FORWARD,
    SITE_SUBMIT,
    SITE_WORKER,
    fault_point,
)
from ..reliability.retry import RetryBudget, RetryPolicy, call_with_retry
from .batching import (
    BatcherStats,
    MicroBatcher,
    SHUTDOWN_MESSAGE,
    ShardKey,
    WorkItem,
)

__all__ = ["Server", "ServerConfig", "ServerStats", "resolve_result_dtype"]

#: environment knobs the default configuration reads (see SERVING.md)
WORKERS_ENV = "REPRO_SERVE_WORKERS"
MAX_BATCH_ENV = "REPRO_SERVE_MAX_BATCH"
WINDOW_MS_ENV = "REPRO_SERVE_WINDOW_MS"
DEADLINE_MS_ENV = "REPRO_SERVE_DEADLINE_MS"
MAX_QUEUE_ENV = "REPRO_SERVE_MAX_QUEUE"
MAX_RETRIES_ENV = "REPRO_SERVE_MAX_RETRIES"
BREAKER_THRESHOLD_ENV = "REPRO_SERVE_BREAKER_THRESHOLD"
BREAKER_RESET_MS_ENV = "REPRO_SERVE_BREAKER_RESET_MS"
PACKED_ENV = "REPRO_SERVE_PACKED"

#: extra slack predict()/predict_specs() grant a pooled future past its
#: deadline before declaring the request lost — covers the scheduler drop
#: propagating back without ever racing a healthy in-flight execution
_RESULT_GRACE_S = 0.25


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        # `from None`: the caller misconfigured an environment variable —
        # the actionable message is which knob, not the int() traceback
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {raw!r}") from None


_BOOL_VALUES = {"1": True, "true": True, "yes": True, "on": True,
                "0": False, "false": False, "no": False, "off": False}


def _env_bool(name: str, default: bool) -> bool:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return _BOOL_VALUES[raw.lower()]
    except KeyError:
        raise ValueError(
            f"{name} must be a boolean (1/0, true/false, yes/no, on/off), "
            f"got {raw!r}") from None


def resolve_result_dtype(dtype) -> np.dtype:
    """The dtype a prediction array is reported in for a serving *dtype*
    (``None`` means full float64 parity)."""
    return np.dtype(np.float64) if dtype is None else np.dtype(dtype)


@dataclass(frozen=True)
class ServerConfig:
    """Knobs of the serving runtime.

    Parameters
    ----------
    num_workers:
        Size of the worker pool.  ``0`` (the default) runs inline on the
        caller's thread — the embedded-in-``Session`` configuration; any
        positive count starts that many daemon drain-loop threads.
    max_batch_size:
        Upper bound on how many coalesced single predictions share one GNN
        forward.
    batch_window_s:
        How long the oldest queued single prediction may wait for
        companions before its micro-batch is closed anyway.
    default_deadline_s:
        Deadline applied to requests that pass ``deadline_s=None``.
        ``None`` (the default) keeps such requests unbounded.
    max_queue_depth:
        Admission-control bound on pending queued requests (specs, summed
        across shards); beyond it submissions raise ``ServerOverloaded``.
        ``0`` (the default) is unbounded.
    max_retries:
        Re-attempts per execution for *transient* failures (deterministic
        failures always fail fast).  ``0`` disables retrying.
    retry_backoff_s:
        Base of the exponential backoff between retries (full jitter,
        capped at 50× the base).
    retry_budget:
        Capacity of the server-wide retry token bucket; every retry spends
        a token, every success drips half a token back.  Bounds retry
        amplification during a persistent outage.
    breaker_threshold:
        Consecutive execution failures that open a shard's circuit
        breaker.  ``0`` disables breakers entirely.
    breaker_reset_s:
        How long an open circuit waits before admitting a half-open trial.
    packed_forward:
        Execute every batch through the packed block-diagonal multi-graph
        forward (``Trainer.predict_packed``) instead of the per-batch
        dataset loop.  On (the default), float64 results stay bit-identical
        to solo predictions for *every* batch composition; switch off to
        serve through the legacy collated loop.
    """

    num_workers: int = 0
    max_batch_size: int = 32
    batch_window_s: float = 0.002
    default_deadline_s: Optional[float] = None
    max_queue_depth: int = 0
    max_retries: int = 2
    retry_backoff_s: float = 0.005
    retry_budget: float = 32.0
    breaker_threshold: int = 8
    breaker_reset_s: float = 5.0
    packed_forward: bool = True

    def __post_init__(self) -> None:
        if self.num_workers < 0:
            raise ValueError("num_workers must be >= 0")
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.batch_window_s < 0:
            raise ValueError("batch_window_s must be >= 0")
        if self.default_deadline_s is not None and self.default_deadline_s < 0:
            raise ValueError("default_deadline_s must be >= 0 (or None)")
        if self.max_queue_depth < 0:
            raise ValueError("max_queue_depth must be >= 0 (0 = unbounded)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be >= 0")
        if self.retry_budget < 0:
            raise ValueError("retry_budget must be >= 0")
        if self.breaker_threshold < 0:
            raise ValueError("breaker_threshold must be >= 0 (0 disables)")
        if self.breaker_reset_s < 0:
            raise ValueError("breaker_reset_s must be >= 0")

    @classmethod
    def from_env(cls) -> "ServerConfig":
        """Defaults, overridable through the ``REPRO_SERVE_*`` variables."""
        deadline_ms = _env_float(DEADLINE_MS_ENV, 0.0)
        return cls(
            num_workers=_env_int(WORKERS_ENV, 0),
            max_batch_size=_env_int(MAX_BATCH_ENV, 32),
            batch_window_s=_env_float(WINDOW_MS_ENV, 2.0) / 1000.0,
            default_deadline_s=deadline_ms / 1000.0 if deadline_ms > 0 else None,
            max_queue_depth=_env_int(MAX_QUEUE_ENV, 0),
            max_retries=_env_int(MAX_RETRIES_ENV, 2),
            breaker_threshold=_env_int(BREAKER_THRESHOLD_ENV, 8),
            breaker_reset_s=_env_float(BREAKER_RESET_MS_ENV, 5000.0) / 1000.0,
            packed_forward=_env_bool(PACKED_ENV, True),
        )


def _drain_loop(batcher: MicroBatcher, server_ref) -> None:
    """Worker body: pull due micro-batches/jobs until shutdown.

    Module-level on purpose: worker threads hold only the batcher and a
    *weak* reference to the server, so an abandoned ``Server`` (and the
    session's trained models behind it) stays collectable — its
    ``weakref.finalize`` hook stops the batcher, which ends this loop.
    """
    while True:
        item = batcher.next_batch()
        if item is None:
            return
        server = server_ref()
        try:
            if server is None:
                error = ServerClosedError(SHUTDOWN_MESSAGE)
                for index, future in enumerate(item.futures):
                    if index < len(item.traces):
                        complete_trace(item.traces[index], error)
                    future.set_exception(error)
            else:
                server._run_item(item)
        finally:
            del server        # never carry a strong ref across the next wait
            batcher.task_done()


class ServerStats(NamedTuple):
    """A coherent snapshot of the runtime's accounting."""

    num_workers: int
    singles_submitted: int
    jobs_submitted: int
    batches_executed: int
    requests_executed: int
    max_coalesced: int
    coalesced_total: int
    peak_depth: int
    #: True when the session's model set was warm-started from a
    #: ``repro.store`` artifact instead of trained in-process.
    warm_started: bool = False
    shed: int = 0                # requests refused by admission control
    deadline_expired: int = 0    # requests dropped on an expired deadline
    failures: int = 0            # requests that returned an error
    retries: int = 0             # transient re-attempts performed
    breaker_rejections: int = 0  # requests refused by an open circuit
    breakers_open: int = 0       # shards currently failing fast
    queue_depth: int = 0         # pending work items at snapshot time

    @classmethod
    def of(cls, num_workers: int, stats: BatcherStats,
           warm_started: bool = False, *, deadline_dropped: int = 0,
           inline_executed: int = 0, failures: int = 0, retries: int = 0,
           breaker_rejections: int = 0, breakers_open: int = 0,
           queue_depth: int = 0) -> "ServerStats":
        return cls(
            num_workers=num_workers,
            singles_submitted=stats.singles_submitted,
            jobs_submitted=stats.jobs_submitted,
            batches_executed=stats.batches_executed,
            requests_executed=stats.requests_executed + inline_executed,
            max_coalesced=stats.max_coalesced,
            coalesced_total=stats.coalesced_total,
            peak_depth=stats.peak_depth,
            warm_started=warm_started,
            shed=stats.shed,
            deadline_expired=stats.deadline_expired + deadline_dropped,
            failures=failures,
            retries=retries,
            breaker_rejections=breaker_rejections,
            breakers_open=breakers_open,
            queue_depth=queue_depth,
        )


class Server:
    """Concurrent, micro-batching serving runtime over one trained session.

    The server is a client of the session's *components* — its trained
    per-platform models and its lock-protected graph-construction cache —
    while the session's ``predict_batch`` facade is, in turn, a thin client
    of an embedded inline server: one execution path serves both the
    legacy synchronous API and the concurrent runtime.

    Use as a context manager (or call :meth:`close`) when workers are
    enabled; with ``num_workers=0`` there is nothing to shut down.
    """

    def __init__(self, session, config: Optional[ServerConfig] = None) -> None:
        self.config = config or ServerConfig.from_env()
        self._session = session
        self._trainers: Dict[str, object] = {}
        self._trainers_lock = threading.Lock()
        #: per-server observability registry — stats()/healthz() are thin
        #: views over these instruments, and repro.obs.snapshot() folds the
        #: whole registry (percentile histograms included) into one document
        self.metrics = MetricsRegistry()
        self._batcher = MicroBatcher(self.config.max_batch_size,
                                     self.config.batch_window_s,
                                     self.config.max_queue_depth,
                                     metrics=self.metrics)
        self._retry_policy = RetryPolicy(
            max_retries=self.config.max_retries,
            backoff_s=self.config.retry_backoff_s,
            backoff_cap_s=max(self.config.retry_backoff_s * 50.0, 0.0))
        self._retry_budget = RetryBudget(capacity=self.config.retry_budget)
        self._breakers: Dict[ShardKey, CircuitBreaker] = {}
        self._breakers_lock = threading.Lock()
        self._failures = self.metrics.counter("serve.failures")
        self._retries = self.metrics.counter("serve.retries")
        self._breaker_rejections = self.metrics.counter(
            "serve.breaker_rejections")
        # expired at execution/inline time (queue-side expiries live in the
        # batcher's serve.deadline_expired_queue counter)
        self._deadline_dropped = self.metrics.counter(
            "serve.deadline_expired_exec")
        # specs executed on callers' threads (the inline, no-worker path)
        self._inline_executed = self.metrics.counter("serve.inline_executed")
        self._latency = self.metrics.histogram("serve.request_latency_s")
        self._queue_wait = self.metrics.histogram("serve.queue_wait_s")
        self._execute_wall = self.metrics.histogram("serve.execute_s")
        self._closed = False
        # if the server is dropped without close(), stop the queue so the
        # parked daemon workers exit instead of pinning batcher/threads
        # forever (they deliberately hold no strong reference to `self`)
        self._finalizer = weakref.finalize(self, self._batcher.stop)
        self._workers: List[threading.Thread] = []
        for index in range(self.config.num_workers):
            worker = threading.Thread(
                target=_drain_loop, args=(self._batcher, weakref.ref(self)),
                daemon=True, name=f"repro-serve-worker-{index}")
            worker.start()
            self._workers.append(worker)

    @classmethod
    def from_artifact(cls, path, config: Optional[ServerConfig] = None,
                      **load_kwargs) -> "Server":
        """Warm-start a server straight from a ``repro.store`` artifact.

        Loads the artifact into a fresh session (no retraining — cold
        start is artifact I/O, not minutes of training) and wraps it in a
        server; ``server.stats().warm_started`` reports the provenance.
        Forwarded *load_kwargs* reach ``repro.store.load_session`` (e.g.
        ``verify=False`` to skip checksums).
        """
        from ..store.artifact import load_session
        return cls(load_session(path, **load_kwargs), config)

    # ------------------------------------------------------------------ #
    # request entry points
    # ------------------------------------------------------------------ #
    def _shard_key(self, platform, snippet: bool, dtype) -> ShardKey:
        # resolving the platform (and training, lazily) happens on the
        # caller's thread so submission errors surface where they were made
        trainer_key = self._ensure_trainer(platform)
        return ShardKey(platform=trainer_key, snippet=bool(snippet),
                        dtype=None if dtype is None else np.dtype(dtype).str)

    def _absolute_deadline(self, deadline_s: Optional[float]) -> Optional[float]:
        if deadline_s is None:
            deadline_s = self.config.default_deadline_s
        if deadline_s is None:
            return None
        if deadline_s < 0:
            raise ValueError("deadline_s must be >= 0 (or None)")
        return time.monotonic() + float(deadline_s)

    def submit(self, source, platform, *, sizes=None, num_teams: int = 64,
               num_threads: int = 64, snippet: bool = False,
               dtype=np.float32,
               deadline_s: Optional[float] = None) -> "Future[float]":
        """Queue one prediction; returns a future resolving to µs runtime.

        Queued singles coalesce with other callers' requests into
        micro-batches (see :class:`ServerConfig`).  Under the default
        packed forward (``packed_forward=True``) a float64 result is
        **bit-identical** to a solo prediction no matter which companions
        it coalesced with — the packed kernel keeps every BLAS call at
        solo shapes.  With ``packed_forward=False`` (legacy collated loop)
        the result matches a solo prediction only to BLAS rounding
        (~1e-14 relative in float64), because batch composition changes
        the GEMM shapes.

        *deadline_s* bounds the request end to end (queueing included);
        the future then resolves to :class:`DeadlineExceeded` instead of
        waiting forever.  Admission failures (:class:`ServerOverloaded`,
        :class:`CircuitOpenError`, :class:`ServerClosedError`) raise
        synchronously on the calling thread.
        """
        from ..api.stages import SourceSpec

        spec = SourceSpec.of(source, sizes=sizes, num_teams=num_teams,
                             num_threads=num_threads)
        trace = begin_trace("serve.request", kind="single")
        key, deadline = self._admit(trace, platform, snippet, dtype,
                                    deadline_s)
        if not self._workers:
            return self._inline_single(key, spec, deadline, trace)
        try:
            return self._batcher.enqueue_single(key, spec, deadline,
                                                trace=trace)
        except BaseException as error:   # shed / closed: typed, synchronous
            complete_trace(trace, error)
            raise

    def _admit(self, trace, platform, snippet, dtype, deadline_s):
        """The shared admission sequence, recorded as a ``serve.submit``
        span; admission failures raise synchronously on the caller's
        thread and complete the request's trace with an error status."""
        submit_span = trace.root.child("serve.submit") \
            if trace is not None else None
        try:
            self._checked_open()
            fault_point(SITE_SUBMIT)
            deadline = self._absolute_deadline(deadline_s)
            key = self._shard_key(platform, snippet, dtype)
            self._checked_breaker(key)
        except BaseException as error:
            if submit_span is not None:
                submit_span.finish(error)
            complete_trace(trace, error)
            raise
        if trace is not None:
            submit_span.finish()
            trace.root.attributes.update(
                platform=key.platform, snippet=key.snippet,
                dtype=key.dtype or "float64")
        return key, deadline

    def _inline_single(self, key: ShardKey, spec, deadline, trace) -> "Future":
        """Execute one submitted request on the caller's thread."""
        future: Future = Future()
        if deadline is not None and time.monotonic() >= deadline:
            self._count_deadline_dropped(1)
            error = DeadlineExceeded(
                "request deadline expired before execution")
            complete_trace(trace, error)
            future.set_exception(error)
            return future
        self._count_inline_executed(1)
        start = time.monotonic()
        try:
            with activate_span(trace.root if trace is not None else None):
                values = self._execute_with_retry(key, [spec], deadline)
        except Exception as error:  # KeyboardInterrupt etc. must propagate
            self._count_failures(1)
            self._latency.observe(time.monotonic() - start)
            complete_trace(trace, error)
            future.set_exception(error)  # on the caller's own thread
        else:
            self._latency.observe(time.monotonic() - start)
            complete_trace(trace)
            future.set_result(float(values[0]))
        return future

    def predict(self, source, platform, *, deadline_s: Optional[float] = None,
                **kwargs) -> float:
        """Synchronous single prediction through the micro-batching queue."""
        deadline = self._absolute_deadline(deadline_s)
        future = self.submit(source, platform, deadline_s=deadline_s, **kwargs)
        return float(self._await_future(future, deadline))

    def predict_batch(self, sources: Sequence, platform, *, sizes=None,
                      num_teams: int = 64, num_threads: int = 64,
                      snippet: bool = False, dtype=np.float32,
                      deadline_s: Optional[float] = None) -> np.ndarray:
        """Predict runtimes (µs) for a batch of sources on one platform.

        The request list is executed as **one job** with its composition
        preserved, so for a fixed list the results are bit-identical no
        matter how many other threads are hammering the server (float64
        results additionally match the single-threaded reference bit for
        bit).  Coalescing applies only to :meth:`submit` singles.
        """
        from ..api.stages import SourceSpec

        specs = [SourceSpec.of(source, sizes=sizes, num_teams=num_teams,
                               num_threads=num_threads) for source in sources]
        return self.predict_specs(specs, platform, snippet=snippet,
                                  dtype=dtype, deadline_s=deadline_s)

    def predict_specs(self, specs: Sequence, platform, *, snippet: bool = False,
                      dtype=np.float32,
                      deadline_s: Optional[float] = None) -> np.ndarray:
        """:meth:`predict_batch` over prebuilt ``SourceSpec`` objects."""
        self._checked_open()
        if not specs:
            # honor the serving dtype even for empty batches
            return np.zeros(0, dtype=resolve_result_dtype(dtype))
        trace = begin_trace("serve.request", kind="job",
                            batch_size=len(specs))
        key, deadline = self._admit(trace, platform, snippet, dtype,
                                    deadline_s)
        if not self._workers:
            if deadline is not None and time.monotonic() >= deadline:
                self._count_deadline_dropped(len(specs))
                error = DeadlineExceeded(
                    "batch deadline expired before execution")
                complete_trace(trace, error)
                raise error
            self._count_inline_executed(len(specs))
            start = time.monotonic()
            try:
                with activate_span(trace.root if trace is not None else None):
                    values = self._execute_with_retry(key, list(specs),
                                                      deadline)
            except Exception as error:
                self._count_failures(len(specs))
                self._latency.observe(time.monotonic() - start)
                complete_trace(trace, error)
                raise
            self._latency.observe(time.monotonic() - start)
            complete_trace(trace)
            return values
        try:
            future = self._batcher.enqueue_job(key, list(specs), deadline,
                                               trace=trace)
        except BaseException as error:   # shed / closed: typed, synchronous
            complete_trace(trace, error)
            raise
        return self._await_future(future, deadline)

    def _await_future(self, future: "Future", deadline: Optional[float]):
        """Resolve a queued future, never waiting meaningfully past its
        deadline (a wedged worker must not translate into a caller hang)."""
        if deadline is None:
            return future.result()
        remaining = max(deadline - time.monotonic(), 0.0)
        try:
            return future.result(timeout=remaining + _RESULT_GRACE_S)
        except FutureTimeoutError:
            raise DeadlineExceeded(
                "request deadline expired while awaiting a worker (the "
                "result, if any, was abandoned)") from None

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def _ensure_trainer(self, platform) -> str:
        """Resolve (training lazily, once) the trainer for *platform*;
        returns the canonical platform name."""
        from ..api.registries import resolve_platform

        name = resolve_platform(platform).name
        if name in self._trainers:      # lock-free steady state (GIL-atomic)
            return name
        # trainer_for runs outside our lock: the session's own train lock
        # already serializes lazy training, and holding _trainers_lock across
        # it would stall every other platform's submissions meanwhile
        trainer = self._session.trainer_for(name)
        with self._trainers_lock:
            self._trainers.setdefault(name, trainer)
        return name

    def _breaker_for(self, key: ShardKey) -> Optional[CircuitBreaker]:
        if not self.config.breaker_threshold:
            return None
        breaker = self._breakers.get(key)
        if breaker is None:
            with self._breakers_lock:
                breaker = self._breakers.setdefault(
                    key, CircuitBreaker(self.config.breaker_threshold,
                                        self.config.breaker_reset_s))
        return breaker

    def _checked_breaker(self, key: ShardKey) -> None:
        breaker = self._breaker_for(key)
        if breaker is not None and not breaker.allow():
            self._breaker_rejections.inc()
            raise CircuitOpenError(
                f"circuit breaker for shard {key!r} is open after repeated "
                f"failures; retrying after {self.config.breaker_reset_s:g}s "
                "admits a trial request")

    def _count_failures(self, n: int) -> None:
        self._failures.inc(n)

    def _count_deadline_dropped(self, n: int) -> None:
        self._deadline_dropped.inc(n)

    def _count_inline_executed(self, n: int) -> None:
        self._inline_executed.inc(n)

    def _execute(self, key: ShardKey, specs: List) -> np.ndarray:
        """Run one batch end to end: cached encode + batched GNN forward."""
        from ..api.pipeline import Pipeline
        from ..api.stages import PredictStage

        trainer = self._trainers[key.platform]
        dtype = None if key.dtype is None else np.dtype(key.dtype)
        with serving_scope():
            with obs_span("serve.encode", batch_size=len(specs)):
                encoded = self._session._encode_specs(specs,
                                                      snippet=key.snippet)
            fault_point(SITE_FORWARD)
            stage = PredictStage(dtype=dtype,
                                 packed=self.config.packed_forward)
            context = Pipeline([stage]).run(encoded=encoded, trainer=trainer)
        return context["predictions"]

    def _execute_with_retry(self, key: ShardKey, specs: List,
                            deadline: Optional[float] = None) -> np.ndarray:
        """One batch through the retry/breaker layer.

        Transient failures re-attempt under the policy and the server-wide
        budget; every outcome feeds the shard's circuit breaker — except
        :class:`DeadlineExceeded`, which reports the *caller's* budget, not
        the shard's health.
        """
        breaker = self._breaker_for(key)

        def on_retry(error: BaseException, attempt: int) -> None:
            self._retries.inc()

        start = time.monotonic()
        try:
            values = call_with_retry(
                lambda: self._execute(key, specs),
                policy=self._retry_policy,
                budget=self._retry_budget,
                deadline=deadline,
                on_retry=on_retry)
        except Exception as error:
            self._execute_wall.observe(time.monotonic() - start)
            if breaker is not None and not isinstance(error, DeadlineExceeded):
                breaker.record_failure()
            raise
        self._execute_wall.observe(time.monotonic() - start)
        if breaker is not None:
            breaker.record_success()
        return values

    def _run_item(self, item: WorkItem) -> None:
        # deadlines are re-checked at execution time: a request that expired
        # between dequeue and here must not burn a forward
        now = time.monotonic()
        traces = item.traces or (None,) * len(item.futures)
        enqueued = item.enqueued or (now,) * len(item.futures)
        for queued_at in enqueued:
            self._queue_wait.observe(max(now - queued_at, 0.0))
        for trace, queued_at in zip(traces, enqueued):
            if trace is not None:
                trace.root.child("serve.queue",
                                 start_s=queued_at).finish(end_s=now)
        if item.kind == "job":
            deadline = item.deadlines[0]
            if deadline is not None and deadline <= now:
                self._count_deadline_dropped(len(item.specs))
                error = DeadlineExceeded(
                    "batch deadline expired before execution")
                complete_trace(traces[0], error)
                item.futures[0].set_exception(error)
                return
            specs, futures, deadlines = item.specs, item.futures, item.deadlines
            live_traces, live_enqueued = list(traces), list(enqueued)
        else:
            specs, futures, deadlines = [], [], []
            live_traces, live_enqueued = [], []
            for spec, future, spec_deadline, trace, queued_at in zip(
                    item.specs, item.futures, item.deadlines, traces,
                    enqueued):
                if spec_deadline is not None and spec_deadline <= now:
                    self._count_deadline_dropped(1)
                    error = DeadlineExceeded(
                        "request deadline expired before execution")
                    complete_trace(trace, error)
                    future.set_exception(error)
                else:
                    specs.append(spec)
                    futures.append(future)
                    deadlines.append(spec_deadline)
                    live_traces.append(trace)
                    live_enqueued.append(queued_at)
            if not specs:
                return
        batch_deadline = None
        live_deadlines = [d for d in deadlines if d is not None]
        if item.kind == "job":
            batch_deadline = item.deadlines[0]
        elif live_deadlines and len(live_deadlines) == len(deadlines):
            # only bound the whole batch when *every* request is bounded —
            # one short deadline must not time out its unbounded neighbours
            batch_deadline = min(live_deadlines)
        # one shared execute span for the fused batch; it is grafted into
        # every live request's tree afterwards (requests coalesced into the
        # same forward genuinely share the work)
        execute = None
        if any(trace is not None for trace in live_traces):
            execute = Span("serve.execute", {"kind": item.kind,
                                             "batch_size": len(specs)})
        try:
            fault_point(SITE_WORKER)
            with activate_span(execute):
                values = self._execute_with_retry(item.key, specs,
                                                  batch_deadline)
        except BaseException as error:  # noqa: BLE001 - delivered to futures
            if execute is not None:
                execute.finish(error)
            self._graft(execute, live_traces)
            if item.kind == "singles" and len(specs) > 1:
                # a poisoned request must not fail its batch neighbours:
                # retry the coalesced singles individually
                for spec, future, spec_deadline, trace, queued_at in zip(
                        specs, futures, deadlines, live_traces,
                        live_enqueued):
                    retry_span = None
                    if trace is not None:
                        retry_span = Span("serve.execute",
                                          {"kind": "retry-single",
                                           "batch_size": 1})
                    try:
                        with activate_span(retry_span):
                            value = float(self._execute_with_retry(
                                item.key, [spec], spec_deadline)[0])
                    except BaseException as single_error:  # noqa: BLE001
                        self._count_failures(1)
                        self._finish_one(future, trace, retry_span,
                                         queued_at, error=single_error)
                    else:
                        self._finish_one(future, trace, retry_span,
                                         queued_at, value=value)
                return
            self._count_failures(len(specs))
            end = time.monotonic()
            for future, trace, queued_at in zip(futures, live_traces,
                                                live_enqueued):
                self._latency.observe(max(end - queued_at, 0.0))
                complete_trace(trace, error)
                future.set_exception(error)
            return
        if execute is not None:
            execute.finish()
        self._graft(execute, live_traces)
        end = time.monotonic()
        if item.kind == "job":
            self._latency.observe(max(end - live_enqueued[0], 0.0))
            complete_trace(live_traces[0])
            futures[0].set_result(np.asarray(values))
        else:
            for future, value, trace, queued_at in zip(futures, values,
                                                       live_traces,
                                                       live_enqueued):
                self._latency.observe(max(end - queued_at, 0.0))
                complete_trace(trace)
                future.set_result(float(value))

    @staticmethod
    def _graft(execute: Optional[Span], traces) -> None:
        """Attach the finished shared execute span to every live trace."""
        if execute is None:
            return
        for trace in traces:
            if trace is not None:
                trace.root.children.append(execute)

    def _finish_one(self, future: "Future", trace, retry_span,
                    queued_at: float, value=None, error=None) -> None:
        """Resolve one individually-retried single: graft its retry span,
        record latency, complete the trace, then settle the future."""
        if retry_span is not None:
            retry_span.finish(error)
            if trace is not None:
                trace.root.children.append(retry_span)
        self._latency.observe(max(time.monotonic() - queued_at, 0.0))
        complete_trace(trace, error)
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(value)

    # ------------------------------------------------------------------ #
    # lifecycle / introspection
    # ------------------------------------------------------------------ #
    def _checked_open(self) -> None:
        # the worker path gets this from MicroBatcher.stop(); the inline
        # path must enforce the same "closed servers reject work" contract
        if self._closed:
            raise ServerClosedError(SHUTDOWN_MESSAGE)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every queued request has finished executing.

        Returns ``True`` when the queue went idle, ``False`` when *timeout*
        expired first — promptly, even if a worker is wedged mid-batch.
        Draining a closed (or never-pooled) server is well-defined and
        returns ``True`` immediately: close() already drained the queue.
        """
        if not self._workers or self._closed:
            return True
        return self._batcher.wait_idle(timeout)

    def close(self) -> None:
        """Stop accepting work, finish the queue, and join the workers."""
        if self._closed:
            return
        self._closed = True
        self._finalizer()        # batcher.stop(); shared with the GC path
        for worker in self._workers:
            worker.join()

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def session(self):
        """The session whose models and caches this server serves from."""
        return self._session

    def stats(self) -> ServerStats:
        """Queue/coalescing/reliability accounting (all-zero until traffic
        arrives), plus whether the model set was warm-started."""
        failures = self._failures.value
        retries = self._retries.value
        breaker_rejections = self._breaker_rejections.value
        deadline_dropped = self._deadline_dropped.value
        inline_executed = self._inline_executed.value
        breakers_open = sum(1 for breaker in list(self._breakers.values())
                            if breaker.state == "open")
        return ServerStats.of(
            self.config.num_workers, self._batcher.stats(),
            bool(getattr(self._session, "warm_started", False)),
            deadline_dropped=deadline_dropped,
            inline_executed=inline_executed,
            failures=failures,
            retries=retries,
            breaker_rejections=breaker_rejections,
            breakers_open=breakers_open,
            queue_depth=self._batcher.pending())

    def healthz(self) -> dict:
        """Liveness/degradation snapshot (the future gateway's health page).

        ``status`` is ``"ok"`` (serving normally), ``"degraded"`` (serving,
        but at least one shard's breaker is open) or ``"closed"``.
        """
        stats = self.stats()
        breakers = {
            f"{key.platform}"
            f"[{'snippet' if key.snippet else 'full'},"
            f"{key.dtype or 'float64'}]": breaker.state
            for key, breaker in sorted(
                self._breakers.items(),
                # dtype is None for float64 shards: sort on a str surrogate
                key=lambda kv: (kv[0].platform, kv[0].snippet,
                                kv[0].dtype or ""))}
        if self._closed:
            status = "closed"
        elif stats.breakers_open:
            status = "degraded"
        else:
            status = "ok"
        executed = stats.requests_executed
        return {
            "status": status,
            "num_workers": stats.num_workers,
            "queue_depth": stats.queue_depth,
            "requests_executed": executed,
            "failures": stats.failures,
            "error_rate": stats.failures / executed if executed else 0.0,
            "retries": stats.retries,
            "shed": stats.shed,
            "deadline_expired": stats.deadline_expired,
            "breaker_rejections": stats.breaker_rejections,
            "breakers": breakers,
            "retry_budget_tokens": self._retry_budget.tokens,
            "warm_started": stats.warm_started,
        }

    def snapshot(self) -> dict:
        """The unified observability document for this server: stats(),
        healthz(), latency quantiles, cache stats, tracing and fault state,
        all in one versioned JSON-safe dict (see ``OBSERVABILITY.md``)."""
        from ..obs.snapshot import snapshot as obs_snapshot

        return obs_snapshot(server=self, session=self._session)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"Server(workers={self.config.num_workers}, "
                f"max_batch={self.config.max_batch_size}, "
                f"window={self.config.batch_window_s * 1000:.1f}ms, "
                f"platforms={sorted(self._trainers)})")
