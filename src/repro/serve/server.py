"""The concurrent serving runtime: one model set, many client threads.

A :class:`Server` owns the trained per-platform models of one
:class:`~repro.api.session.Session` and serves predictions from a pool of
worker threads:

* **sharding** — requests are grouped per (platform, parse mode, dtype)
  shard; any worker may execute any shard's next micro-batch, so hot
  platforms use the whole pool while each batch stays homogeneous,
* **micro-batching** — single predictions submitted through
  :meth:`Server.submit` / :meth:`Server.predict` coalesce into batches of
  up to ``max_batch_size`` requests within a ``batch_window_s`` window
  (the :mod:`repro.serve.batching` policy), amortising one GNN forward
  over many callers,
* **whole-job batches** — :meth:`Server.predict_batch` executes the
  caller's request list as one unit, preserving its batch composition so
  float64 results are bit-identical to a single-threaded run,
* **re-entrant engine state** — every batch executes inside a thread-local
  :class:`repro.nn.InferenceContext` (via the model's ``predict``), and all
  shared caches (graph construction, edge layouts, scatter matrices) are
  lock-protected, so no external serialization is needed anywhere.

With ``num_workers=0`` the server runs **inline**: no threads are started
and every call executes synchronously on the caller's thread through the
exact same execution path.  That is the default configuration the
:class:`~repro.api.session.Session` facade embeds (override with the
``REPRO_SERVE_WORKERS`` environment variable or an explicit
:class:`ServerConfig`).
"""

from __future__ import annotations

import os
import threading
import weakref
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional, Sequence

import numpy as np

from ..nn.context import serving_scope
from .batching import (
    BatcherStats,
    MicroBatcher,
    SHUTDOWN_MESSAGE,
    ShardKey,
    WorkItem,
)

__all__ = ["Server", "ServerConfig", "ServerStats", "resolve_result_dtype"]

#: environment knobs the default configuration reads (see SERVING.md)
WORKERS_ENV = "REPRO_SERVE_WORKERS"
MAX_BATCH_ENV = "REPRO_SERVE_MAX_BATCH"
WINDOW_MS_ENV = "REPRO_SERVE_WINDOW_MS"


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}")


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {raw!r}")


def resolve_result_dtype(dtype) -> np.dtype:
    """The dtype a prediction array is reported in for a serving *dtype*
    (``None`` means full float64 parity)."""
    return np.dtype(np.float64) if dtype is None else np.dtype(dtype)


@dataclass(frozen=True)
class ServerConfig:
    """Knobs of the serving runtime.

    Parameters
    ----------
    num_workers:
        Size of the worker pool.  ``0`` (the default) runs inline on the
        caller's thread — the embedded-in-``Session`` configuration; any
        positive count starts that many daemon drain-loop threads.
    max_batch_size:
        Upper bound on how many coalesced single predictions share one GNN
        forward.
    batch_window_s:
        How long the oldest queued single prediction may wait for
        companions before its micro-batch is closed anyway.
    """

    num_workers: int = 0
    max_batch_size: int = 32
    batch_window_s: float = 0.002

    def __post_init__(self) -> None:
        if self.num_workers < 0:
            raise ValueError("num_workers must be >= 0")
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.batch_window_s < 0:
            raise ValueError("batch_window_s must be >= 0")

    @classmethod
    def from_env(cls) -> "ServerConfig":
        """Defaults, overridable through the ``REPRO_SERVE_*`` variables."""
        return cls(
            num_workers=_env_int(WORKERS_ENV, 0),
            max_batch_size=_env_int(MAX_BATCH_ENV, 32),
            batch_window_s=_env_float(WINDOW_MS_ENV, 2.0) / 1000.0,
        )


def _drain_loop(batcher: MicroBatcher, server_ref) -> None:
    """Worker body: pull due micro-batches/jobs until shutdown.

    Module-level on purpose: worker threads hold only the batcher and a
    *weak* reference to the server, so an abandoned ``Server`` (and the
    session's trained models behind it) stays collectable — its
    ``weakref.finalize`` hook stops the batcher, which ends this loop.
    """
    while True:
        item = batcher.next_batch()
        if item is None:
            return
        server = server_ref()
        try:
            if server is None:
                for future in item.futures:
                    future.set_exception(RuntimeError(SHUTDOWN_MESSAGE))
            else:
                server._run_item(item)
        finally:
            del server        # never carry a strong ref across the next wait
            batcher.task_done()


class ServerStats(NamedTuple):
    """A coherent snapshot of the runtime's accounting."""

    num_workers: int
    singles_submitted: int
    jobs_submitted: int
    batches_executed: int
    requests_executed: int
    max_coalesced: int
    coalesced_total: int
    peak_depth: int
    #: True when the session's model set was warm-started from a
    #: ``repro.store`` artifact instead of trained in-process.
    warm_started: bool = False

    @classmethod
    def of(cls, num_workers: int, stats: BatcherStats,
           warm_started: bool = False) -> "ServerStats":
        return cls(num_workers, *stats, warm_started=warm_started)


class Server:
    """Concurrent, micro-batching serving runtime over one trained session.

    The server is a client of the session's *components* — its trained
    per-platform models and its lock-protected graph-construction cache —
    while the session's ``predict_batch`` facade is, in turn, a thin client
    of an embedded inline server: one execution path serves both the
    legacy synchronous API and the concurrent runtime.

    Use as a context manager (or call :meth:`close`) when workers are
    enabled; with ``num_workers=0`` there is nothing to shut down.
    """

    def __init__(self, session, config: Optional[ServerConfig] = None) -> None:
        self.config = config or ServerConfig.from_env()
        self._session = session
        self._trainers: Dict[str, object] = {}
        self._trainers_lock = threading.Lock()
        self._batcher = MicroBatcher(self.config.max_batch_size,
                                     self.config.batch_window_s)
        self._closed = False
        # if the server is dropped without close(), stop the queue so the
        # parked daemon workers exit instead of pinning batcher/threads
        # forever (they deliberately hold no strong reference to `self`)
        self._finalizer = weakref.finalize(self, self._batcher.stop)
        self._workers: List[threading.Thread] = []
        for index in range(self.config.num_workers):
            worker = threading.Thread(
                target=_drain_loop, args=(self._batcher, weakref.ref(self)),
                daemon=True, name=f"repro-serve-worker-{index}")
            worker.start()
            self._workers.append(worker)

    @classmethod
    def from_artifact(cls, path, config: Optional[ServerConfig] = None,
                      **load_kwargs) -> "Server":
        """Warm-start a server straight from a ``repro.store`` artifact.

        Loads the artifact into a fresh session (no retraining — cold
        start is artifact I/O, not minutes of training) and wraps it in a
        server; ``server.stats().warm_started`` reports the provenance.
        Forwarded *load_kwargs* reach ``repro.store.load_session`` (e.g.
        ``verify=False`` to skip checksums).
        """
        from ..store.artifact import load_session
        return cls(load_session(path, **load_kwargs), config)

    # ------------------------------------------------------------------ #
    # request entry points
    # ------------------------------------------------------------------ #
    def _shard_key(self, platform, snippet: bool, dtype) -> ShardKey:
        # resolving the platform (and training, lazily) happens on the
        # caller's thread so submission errors surface where they were made
        trainer_key = self._ensure_trainer(platform)
        return ShardKey(platform=trainer_key, snippet=bool(snippet),
                        dtype=None if dtype is None else np.dtype(dtype).str)

    def submit(self, source, platform, *, sizes=None, num_teams: int = 64,
               num_threads: int = 64, snippet: bool = False,
               dtype=np.float32) -> "Future[float]":
        """Queue one prediction; returns a future resolving to µs runtime.

        Queued singles coalesce with other callers' requests into
        micro-batches (see :class:`ServerConfig`); numerically the result
        matches a solo prediction to BLAS rounding (~1e-14 relative in
        float64 — batch composition changes the GEMM shapes, which is why
        bit-exactness is only guaranteed for :meth:`predict_batch` jobs).
        """
        from ..api.stages import SourceSpec

        spec = SourceSpec.of(source, sizes=sizes, num_teams=num_teams,
                             num_threads=num_threads)
        self._checked_open()
        key = self._shard_key(platform, snippet, dtype)
        if not self._workers:
            future: Future = Future()
            try:
                values = self._execute(key, [spec])
            except Exception as error:  # KeyboardInterrupt etc. must propagate
                future.set_exception(error)  # on the caller's own thread
            else:
                future.set_result(float(values[0]))
            return future
        return self._batcher.enqueue_single(key, spec)

    def predict(self, source, platform, **kwargs) -> float:
        """Synchronous single prediction through the micro-batching queue."""
        return float(self.submit(source, platform, **kwargs).result())

    def predict_batch(self, sources: Sequence, platform, *, sizes=None,
                      num_teams: int = 64, num_threads: int = 64,
                      snippet: bool = False, dtype=np.float32) -> np.ndarray:
        """Predict runtimes (µs) for a batch of sources on one platform.

        The request list is executed as **one job** with its composition
        preserved, so for a fixed list the results are bit-identical no
        matter how many other threads are hammering the server (float64
        results additionally match the single-threaded reference bit for
        bit).  Coalescing applies only to :meth:`submit` singles.
        """
        from ..api.stages import SourceSpec

        specs = [SourceSpec.of(source, sizes=sizes, num_teams=num_teams,
                               num_threads=num_threads) for source in sources]
        return self.predict_specs(specs, platform, snippet=snippet, dtype=dtype)

    def predict_specs(self, specs: Sequence, platform, *, snippet: bool = False,
                      dtype=np.float32) -> np.ndarray:
        """:meth:`predict_batch` over prebuilt ``SourceSpec`` objects."""
        self._checked_open()
        if not specs:
            # honor the serving dtype even for empty batches
            return np.zeros(0, dtype=resolve_result_dtype(dtype))
        key = self._shard_key(platform, snippet, dtype)
        if not self._workers:
            return self._execute(key, list(specs))
        return self._batcher.enqueue_job(key, list(specs)).result()

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def _ensure_trainer(self, platform) -> str:
        """Resolve (training lazily, once) the trainer for *platform*;
        returns the canonical platform name."""
        from ..api.registries import resolve_platform

        name = resolve_platform(platform).name
        if name in self._trainers:      # lock-free steady state (GIL-atomic)
            return name
        # trainer_for runs outside our lock: the session's own train lock
        # already serializes lazy training, and holding _trainers_lock across
        # it would stall every other platform's submissions meanwhile
        trainer = self._session.trainer_for(name)
        with self._trainers_lock:
            self._trainers.setdefault(name, trainer)
        return name

    def _execute(self, key: ShardKey, specs: List) -> np.ndarray:
        """Run one batch end to end: cached encode + batched GNN forward."""
        from ..api.pipeline import Pipeline
        from ..api.stages import PredictStage

        trainer = self._trainers[key.platform]
        dtype = None if key.dtype is None else np.dtype(key.dtype)
        with serving_scope():
            encoded = self._session._encode_specs(specs, snippet=key.snippet)
            context = Pipeline([PredictStage(dtype=dtype)]).run(
                encoded=encoded, trainer=trainer)
        return context["predictions"]

    def _run_item(self, item: WorkItem) -> None:
        try:
            values = self._execute(item.key, item.specs)
        except BaseException as error:  # noqa: BLE001 - delivered to futures
            if item.kind == "singles" and len(item.specs) > 1:
                # a poisoned request must not fail its batch neighbours:
                # retry the coalesced singles individually
                for spec, future in zip(item.specs, item.futures):
                    try:
                        value = float(self._execute(item.key, [spec])[0])
                    except BaseException as single_error:  # noqa: BLE001
                        future.set_exception(single_error)
                    else:
                        future.set_result(value)
                return
            for future in item.futures:
                future.set_exception(error)
            return
        if item.kind == "job":
            item.futures[0].set_result(np.asarray(values))
        else:
            for future, value in zip(item.futures, values):
                future.set_result(float(value))

    # ------------------------------------------------------------------ #
    # lifecycle / introspection
    # ------------------------------------------------------------------ #
    def _checked_open(self) -> None:
        # the worker path gets this from MicroBatcher.stop(); the inline
        # path must enforce the same "closed servers reject work" contract
        if self._closed:
            raise RuntimeError(SHUTDOWN_MESSAGE)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every queued request has finished executing."""
        if not self._workers:
            return True
        return self._batcher.wait_idle(timeout)

    def close(self) -> None:
        """Stop accepting work, finish the queue, and join the workers."""
        if self._closed:
            return
        self._closed = True
        self._finalizer()        # batcher.stop(); shared with the GC path
        for worker in self._workers:
            worker.join()

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def session(self):
        """The session whose models and caches this server serves from."""
        return self._session

    def stats(self) -> ServerStats:
        """Queue/coalescing accounting (all-zero until traffic arrives),
        plus whether the model set was warm-started from an artifact."""
        return ServerStats.of(self.config.num_workers, self._batcher.stats(),
                              bool(getattr(self._session, "warm_started",
                                           False)))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"Server(workers={self.config.num_workers}, "
                f"max_batch={self.config.max_batch_size}, "
                f"window={self.config.batch_window_s * 1000:.1f}ms, "
                f"platforms={sorted(self._trainers)})")
