"""ParaGraph reproduction library.

A from-scratch Python implementation of *ParaGraph: Weighted Graph
Representation for Performance Optimization of HPC Kernels* (TehraniJamsaz
et al.), including every substrate the paper depends on:

* ``repro.api`` -- the composable public surface: ``Session``, staged
  ``Pipeline`` objects, registries and the batched predict/serve facade,
* ``repro.clang`` -- C/OpenMP frontend producing Clang-style ASTs,
* ``repro.paragraph`` -- the weighted, typed program-graph representation,
* ``repro.nn`` / ``repro.gnn`` -- NumPy autograd + RGAT GNN stack,
* ``repro.ml`` -- datasets, scalers, metrics and the training loop,
* ``repro.kernels`` -- the Table I benchmark applications,
* ``repro.advisor`` -- kernel analysis and the six OpenMP transformations,
* ``repro.analysis`` -- pluggable static-analysis checkers (uninitialized
  reads, array bounds, dead stores, OpenMP races, loop-carried
  dependences) with text/JSON reports and a CLI,
* ``repro.compoff`` -- the COMPOFF baseline cost model,
* ``repro.hardware`` -- analytical Summit/Corona accelerator simulator,
* ``repro.pipeline`` -- the legacy end-to-end workflow (thin shim over
  ``repro.api``),
* ``repro.reliability`` -- the failure model: seeded fault injection,
  deadline/retry/backoff semantics, per-shard circuit breakers and the
  typed error taxonomy the serving + store stack degrades through,
* ``repro.serve`` -- the concurrent micro-batching serving runtime
  (worker pool, per-platform sharding, re-entrant inference contexts),
* ``repro.store`` -- the model artifact store: versioned, checksummed
  manifests + weight payloads, ``Session.save``/``Session.load``
  zero-retrain warm starts, a ``name@version`` model registry and the
  ``python -m repro.store`` CLI,
* ``repro.synth`` -- seeded synthetic-scenario generators and the
  differential property-testing harness over the whole pipeline,
* ``repro.evaluation`` -- drivers regenerating every table and figure.

Quickstart::

    from repro.api import ReproConfig, Session

    session = Session(ReproConfig())          # per-stage configs, validated
    result = session.workflow()               # datasets + one model/platform
    print(result.metrics_table())

    # serving hot path: batched prediction with graph-construction caching
    runtimes_us = session.predict_batch(
        sources, platform="v100", num_teams=128, num_threads=64)

Stages compose explicitly when you need only part of the workflow::

    from repro.api import GraphStage, ParseStage, Pipeline, SourceSpec

    graphs = Pipeline([ParseStage(), GraphStage()]).run(
        specs=[SourceSpec(source)])["graphs"]

Subpackages import lazily (PEP 562), so ``import repro`` is fast.
"""

import importlib

#: single source of truth — read by ``setup.py`` and recorded in every
#: ``repro.store`` artifact manifest for compatibility checks.
__version__ = "1.2.0"

_SUBPACKAGES = (
    "advisor",
    "analysis",
    "api",
    "clang",
    "compoff",
    "evaluation",
    "gnn",
    "hardware",
    "kernels",
    "ml",
    "nn",
    "obs",
    "paragraph",
    "pipeline",
    "reliability",
    "serve",
    "store",
    "synth",
)

__all__ = list(_SUBPACKAGES)


def __getattr__(name):
    if name in _SUBPACKAGES:
        module = importlib.import_module("." + name, __name__)
        globals()[name] = module
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_SUBPACKAGES))
