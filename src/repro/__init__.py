"""ParaGraph reproduction library.

A from-scratch Python implementation of *ParaGraph: Weighted Graph
Representation for Performance Optimization of HPC Kernels* (TehraniJamsaz
et al.), including every substrate the paper depends on:

* ``repro.clang`` -- C/OpenMP frontend producing Clang-style ASTs,
* ``repro.paragraph`` -- the weighted, typed program-graph representation,
* ``repro.nn`` / ``repro.gnn`` -- NumPy autograd + RGAT GNN stack,
* ``repro.ml`` -- datasets, scalers, metrics and the training loop,
* ``repro.kernels`` -- the Table I benchmark applications,
* ``repro.advisor`` -- kernel analysis and the six OpenMP transformations,
* ``repro.compoff`` -- the COMPOFF baseline cost model,
* ``repro.hardware`` -- analytical Summit/Corona accelerator simulator,
* ``repro.pipeline`` -- the end-to-end dataset/training workflow,
* ``repro.evaluation`` -- drivers regenerating every table and figure.

Quickstart::

    from repro.pipeline import run_workflow, WorkflowConfig
    result = run_workflow(WorkflowConfig())
    print(result.metrics_table())
"""

__version__ = "1.0.0"

__all__ = [
    "advisor",
    "clang",
    "compoff",
    "evaluation",
    "gnn",
    "hardware",
    "kernels",
    "ml",
    "nn",
    "paragraph",
    "pipeline",
]
