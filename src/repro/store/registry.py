"""``name@version`` → artifact path resolution with a ``latest`` pointer.

A :class:`ModelRegistry` is a directory of published artifacts::

    <root>/
      <name>/
        v1/            # one artifact directory per version
        v2/
        LATEST         # text file naming the current default version

Evaluation drivers and soak benchmarks pull *pinned* model sets
(``registry.load("paragraph@v2")``) so a run is reproducible against one
frozen set of weights, while serving deployments follow
``registry.load("paragraph")`` — the ``latest`` pointer — and pick up new
versions on republish.  Publishing is atomic enough for the single-writer
case this repo needs: the artifact is fully written before ``LATEST``
flips.

Loading degrades gracefully (see STORE.md "Corrupt artifacts"): when the
resolved artifact fails to verify/load, :meth:`ModelRegistry.load` — by
default — **quarantines** the bad version (renamed to a
``<version>.quarantine.<suffix>`` directory, out of ``versions()``) and
falls back to the newest remaining version that passes
:func:`~repro.store.artifact.verify_artifact`, repointing ``LATEST`` if
it named the quarantined version.  ``fallback=False`` restores strict
fail-fast loading.
"""

from __future__ import annotations

import os
import re
import shutil
import warnings
from typing import List, Optional, Tuple

from .artifact import _unique_suffix, load_session, save_session, verify_artifact
from .manifest import StoreError

__all__ = ["ModelRegistry"]

#: model names / versions must be path-safe slugs.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

LATEST_FILE = "LATEST"


def _check_slug(value: str, what: str) -> str:
    if not _NAME_RE.match(value or ""):
        raise StoreError(
            f"invalid {what} {value!r}: must match {_NAME_RE.pattern} "
            "(letters, digits, '.', '_', '-'; no path separators)")
    return value


def _check_version(value: str) -> str:
    """Version slugs additionally exclude the registry's own reserved
    names: the ``LATEST`` pointer file and staged-copy leftovers."""
    _check_slug(value, "version")
    if value in (LATEST_FILE, "latest"):
        raise StoreError(
            f"invalid version {value!r}: reserved for the latest pointer "
            "(refs spell it 'name@latest', published versions cannot)")
    if ".staging." in value:
        raise StoreError(
            f"invalid version {value!r}: '.staging.' names are reserved "
            "for in-flight publishes")
    if ".quarantine." in value:
        raise StoreError(
            f"invalid version {value!r}: '.quarantine.' names are reserved "
            "for corrupt versions set aside by fallback loading")
    return value


def split_ref(ref: str) -> Tuple[str, Optional[str]]:
    """``"name@version"`` → (name, version); bare ``"name"`` → (name, None).

    ``"name@latest"`` also resolves to (name, None).
    """
    name, _, version = ref.partition("@")
    _check_slug(name, "model name")
    if not version or version == "latest":
        return name, None
    return name, _check_version(version)


def _commit_staged(stage: str, destination: str) -> None:
    """Swap a fully-written staging directory into *destination*.

    Whole-directory renames: a failed copy/save never touches the live
    version, and a mid-swap crash leaves the previous version recoverable
    in a ``.staging.<pid>.<hex>.old`` backup (the infix keeps it out of
    ``versions()``).  Note the remaining caveat: a reader that opens the
    manifest *before* the swap and the weight payloads *after* it can
    still pair old manifest with new payloads (surfacing as a checksum
    error) — published versions are immutable by convention, so
    ``overwrite=True`` on a version with live readers is a repair tool;
    roll live traffic forward by publishing a *new* version and flipping
    ``latest``.
    """
    backup = None
    if os.path.isdir(destination):
        backup = f"{destination}.staging.{_unique_suffix()}.old"
        os.rename(destination, backup)
    os.rename(stage, destination)
    if backup is not None:
        shutil.rmtree(backup, ignore_errors=True)


class ModelRegistry:
    """Filesystem-backed mapping from ``name@version`` to artifacts."""

    def __init__(self, root: str) -> None:
        self.root = os.fspath(root)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def names(self) -> List[str]:
        """Every published model name."""
        if not os.path.isdir(self.root):
            return []
        return sorted(
            entry for entry in os.listdir(self.root)
            if os.path.isdir(os.path.join(self.root, entry))
            and _NAME_RE.match(entry))

    def versions(self, name: str) -> List[str]:
        """Published versions of *name*, ``v<N>`` versions in numeric order."""
        directory = os.path.join(self.root, _check_slug(name, "model name"))
        if not os.path.isdir(directory):
            return []

        def sort_key(version: str):
            match = re.fullmatch(r"v(\d+)", version)
            return (0, int(match.group(1)), "") if match else (1, 0, version)

        return sorted(
            (entry for entry in os.listdir(directory)
             if os.path.isdir(os.path.join(directory, entry))
             and entry != LATEST_FILE and ".staging." not in entry
             and ".quarantine." not in entry),
            key=sort_key)

    def quarantined(self, name: str) -> List[str]:
        """Quarantined version directories of *name* (corrupt artifacts set
        aside by fallback loading; inspect, repair or delete by hand)."""
        directory = os.path.join(self.root, _check_slug(name, "model name"))
        if not os.path.isdir(directory):
            return []
        return sorted(
            entry for entry in os.listdir(directory)
            if os.path.isdir(os.path.join(directory, entry))
            and ".quarantine." in entry)

    def latest(self, name: str) -> Optional[str]:
        """The version the ``latest`` pointer currently names (or ``None``)."""
        pointer = os.path.join(self.root, _check_slug(name, "model name"),
                               LATEST_FILE)
        if not os.path.exists(pointer):
            return None
        with open(pointer, "r", encoding="utf-8") as handle:
            version = handle.read().strip()
        if not version:
            return None
        try:
            _check_version(version)
        except StoreError as error:
            # a hand-edited/corrupted pointer must never resolve to a path
            # outside the model's own directory
            raise StoreError(
                f"corrupt {LATEST_FILE} pointer for {name!r} at {pointer}: "
                f"{error}") from error
        return version

    def path_for(self, ref: str) -> str:
        """Resolve ``name[@version]`` to the artifact directory.

        Bare names (or ``@latest``) follow the ``latest`` pointer.  Raises
        :class:`StoreError` naming the missing piece.
        """
        name, version = split_ref(ref)
        if version is None:
            version = self.latest(name)
            if version is None:
                known = self.versions(name)
                raise StoreError(
                    f"model {name!r} has no 'latest' pointer in registry "
                    f"{self.root}" + (f"; published versions: {known}"
                                      if known else "; nothing published"))
        path = os.path.join(self.root, name, version)
        if not os.path.isdir(path):
            raise StoreError(
                f"model {name}@{version} is not published in registry "
                f"{self.root}; published versions: {self.versions(name)}")
        return path

    # ------------------------------------------------------------------ #
    # publishing
    # ------------------------------------------------------------------ #
    def _next_version(self, name: str) -> str:
        numbers = [int(match.group(1)) for match in
                   (re.fullmatch(r"v(\d+)", version)
                    for version in self.versions(name)) if match]
        return f"v{max(numbers, default=0) + 1}"

    def publish(self, name: str, session=None, *, artifact: Optional[str] = None,
                version: Optional[str] = None, set_latest: bool = True,
                overwrite: bool = False) -> str:
        """Publish a trained session (or an existing artifact directory).

        Exactly one of *session* / *artifact* must be given; *version*
        defaults to the next ``v<N>``.  Returns the ``name@version`` ref.

        Published versions are immutable by convention: roll a model
        forward by publishing a new version (``latest`` flips only after
        the artifact is fully written).  ``overwrite=True`` replaces an
        existing version via a staged whole-directory swap — safe against
        crashes and single readers, but a version being actively read
        should be replaced by a *new* version, not overwritten in place.
        """
        _check_slug(name, "model name")
        if (session is None) == (artifact is None):
            raise StoreError(
                "publish needs exactly one source: a session to save, or "
                "artifact=<path> to import an existing artifact directory")
        version = _check_version(version) if version \
            else self._next_version(name)
        destination = os.path.join(self.root, name, version)
        if os.path.isdir(destination) and not overwrite:
            raise StoreError(
                f"model {name}@{version} is already published (pass "
                "overwrite=True to replace it)")
        if artifact is not None:
            # one verification pass covers manifest validity, payload
            # checksums and reconstruction; its report carries the kind
            report = verify_artifact(artifact)
            if not report.ok:
                raise StoreError(
                    f"refusing to publish a corrupt artifact from {artifact}:"
                    f"\n{report.summary()}")
            if report.kind != "session":
                raise StoreError(
                    f"cannot publish {report.kind!r} artifact {artifact} "
                    "to the model registry: registry.load() warm-starts "
                    "sessions, so only kind='session' artifacts resolve")
        # both branches produce a complete staging directory first, then
        # whole-directory swap: a failed save/copy never touches the live
        # version, and concurrent readers never observe a torn artifact
        stage = f"{destination}.staging.{_unique_suffix()}"
        try:
            if session is not None:
                save_session(session, stage, name=name, overwrite=True)
            else:
                shutil.copytree(artifact, stage)
        except BaseException:
            shutil.rmtree(stage, ignore_errors=True)
            raise
        _commit_staged(stage, destination)
        if set_latest:
            self.set_latest(name, version)
        return f"{name}@{version}"

    def set_latest(self, name: str, version: str) -> None:
        """Point ``name``'s ``latest`` at *version* (which must exist)."""
        _check_slug(name, "model name")
        _check_version(version)
        if not os.path.isdir(os.path.join(self.root, name, version)):
            raise StoreError(
                f"cannot point latest at unpublished {name}@{version}; "
                f"published versions: {self.versions(name)}")
        pointer = os.path.join(self.root, name, LATEST_FILE)
        temporary = pointer + ".tmp"
        with open(temporary, "w", encoding="utf-8") as handle:
            handle.write(version + "\n")
        os.replace(temporary, pointer)

    # ------------------------------------------------------------------ #
    def _quarantine(self, name: str, version: str) -> str:
        """Move a bad version directory out of the registry's namespace.

        Best-effort: if the rename fails (permissions, concurrent reader on
        a platform where that blocks renames) the directory stays in place
        — fallback still works, it just re-verifies the bad version on the
        next load instead of skipping it."""
        source = os.path.join(self.root, name, version)
        target = f"{source}.quarantine.{_unique_suffix()}"
        try:
            os.rename(source, target)
        except OSError:
            return source
        return target

    def load(self, ref: str, *, fallback: bool = True, **load_kwargs):
        """Resolve *ref* and warm-start a session from the artifact.

        With ``fallback=True`` (the default) a resolved artifact that fails
        to load with a :class:`StoreError` — corrupt payload, tampered
        manifest, truncated weights — is **quarantined** (its directory is
        renamed to ``<version>.quarantine.<suffix>``, removing it from
        :meth:`versions`) and the load falls back to the newest remaining
        version that passes :func:`verify_artifact`, emitting a
        ``UserWarning`` naming both versions.  If the ``latest`` pointer
        named the quarantined version it is repointed at the fallback, so
        subsequent bare-name loads go straight to the good version.

        Transient infrastructure errors (anything that is not a
        ``StoreError``, e.g. an injected
        :class:`~repro.reliability.errors.TransientFaultError`) propagate
        unchanged and never quarantine: a flaky read is the retry layer's
        problem, not evidence the artifact is bad.  Resolution errors
        (unknown name, nothing published) also raise as before.

        ``fallback=False`` restores strict fail-fast loading.
        """
        path = self.path_for(ref)
        if not fallback:
            return load_session(path, **load_kwargs)
        try:
            return load_session(path, **load_kwargs)
        except StoreError as error:
            name, _ = split_ref(ref)
            bad_version = os.path.basename(path)
            quarantined_as = self._quarantine(name, bad_version)
            cause = error
        candidates = [version for version in reversed(self.versions(name))
                      if version != bad_version]
        for candidate in candidates:
            candidate_path = os.path.join(self.root, name, candidate)
            if not verify_artifact(candidate_path).ok:
                continue
            try:
                session = load_session(candidate_path, **load_kwargs)
            except StoreError:
                continue
            try:
                latest = self.latest(name)
            except StoreError:
                latest = bad_version    # corrupt pointer: repoint it too
            if latest is None or latest == bad_version:
                self.set_latest(name, candidate)
            warnings.warn(
                f"model {name}@{bad_version} failed to load ({cause}); "
                f"quarantined it as {os.path.basename(quarantined_as)} and "
                f"fell back to {name}@{candidate}",
                UserWarning, stacklevel=2)
            return session
        raise StoreError(
            f"model {name}@{bad_version} failed to load and no remaining "
            f"version of {name!r} verifies cleanly (bad version quarantined "
            f"as {os.path.basename(quarantined_as)}); republish a good "
            f"artifact. Original failure: {cause}") from cause

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ModelRegistry(root={self.root!r}, names={self.names()})"
