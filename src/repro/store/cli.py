"""``python -m repro.store`` — save / load / inspect / verify artifacts.

Examples::

    # train a session from a config JSON and persist the model set
    python -m repro.store save artifacts/paragraph --config tiny.json

    # integrity check: schema, versions, checksums, dtypes, finiteness
    python -m repro.store verify artifacts/paragraph

    # provenance and per-model summary (add --json for machine output)
    python -m repro.store inspect artifacts/paragraph

    # zero-retrain warm start + an optional smoke prediction
    python -m repro.store load artifacts/paragraph \
        --source kernel.c --platform v100 --teams 64 --threads 64

``verify`` exits non-zero on any problem, so it slots into CI directly.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from .artifact import inspect_artifact, load_session, save_session, verify_artifact
from .manifest import StoreError

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store",
        description="Model artifact store: save, load, inspect, verify.")
    commands = parser.add_subparsers(dest="command", required=True)

    save = commands.add_parser(
        "save", help="train a session (from --config JSON or defaults) and "
                     "save its model set")
    save.add_argument("path", help="artifact directory to create")
    save.add_argument("--config", metavar="JSON",
                      help="path to a ReproConfig JSON (default: paper config)")
    save.add_argument("--name", default="session", help="artifact name")
    save.add_argument("--overwrite", action="store_true",
                      help="replace an existing artifact")

    load = commands.add_parser(
        "load", help="warm-start a session from an artifact (no retraining) "
                     "and optionally smoke-predict one source")
    load.add_argument("path", help="artifact directory")
    load.add_argument("--source", metavar="FILE",
                      help="C/OpenMP source file to predict")
    load.add_argument("--platform", default=None,
                      help="platform name/alias for --source (default: first "
                           "stored platform)")
    load.add_argument("--teams", type=int, default=64)
    load.add_argument("--threads", type=int, default=64)
    load.add_argument("--no-verify", action="store_true",
                      help="skip payload checksum verification")

    inspect = commands.add_parser(
        "inspect", help="print manifest provenance and per-model summary")
    inspect.add_argument("path", help="artifact directory")
    inspect.add_argument("--json", action="store_true", dest="as_json",
                         help="machine-readable output")

    verify = commands.add_parser(
        "verify", help="full integrity check; non-zero exit on any problem")
    verify.add_argument("path", help="artifact directory")
    return parser


def _cmd_save(args) -> int:
    from ..api.config import ReproConfig
    from ..api.session import Session

    if args.config:
        try:
            with open(args.config, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if isinstance(payload, dict):
                # ReproConfig.from_dict tolerates missing keys (defaults),
                # so a typo'd top-level key would silently train the full
                # paper defaults for minutes; fail in milliseconds instead
                known = {"data", "graph", "model", "training",
                         "train_fraction", "seed"}
                unknown = set(payload) - known
                if unknown:
                    raise StoreError(
                        f"invalid --config {args.config}: unknown keys "
                        f"{sorted(unknown)}; known keys: {sorted(known)}")
            config = ReproConfig.from_dict(payload)
        except (ValueError, TypeError) as error:
            raise StoreError(
                f"invalid --config {args.config}: {error}") from error
    else:
        config = ReproConfig()
    session = Session(config)
    started = time.perf_counter()
    session.train()
    trained_s = time.perf_counter() - started
    path = save_session(session, args.path, name=args.name,
                        overwrite=args.overwrite)
    summary = inspect_artifact(path)
    print(f"trained {len(summary['models'])} platform model(s) in "
          f"{trained_s:.1f}s")
    print(f"saved {path} ({summary['size_bytes']} bytes)")
    for entry in summary["models"]:
        print(f"  {entry['name']}: {entry['num_parameters']} parameters "
              f"-> {entry['weights']}")
    return 0


def _cmd_load(args) -> int:
    started = time.perf_counter()
    session = load_session(args.path, verify=not args.no_verify)
    try:
        loaded_s = time.perf_counter() - started
        platforms = sorted(session.train())
        print(f"warm-started session from {args.path} in "
              f"{loaded_s * 1000:.1f}ms (no retraining)")
        print(f"platforms: {platforms}")
        if args.source:
            with open(args.source, "r", encoding="utf-8") as handle:
                source = handle.read()
            platform = args.platform or platforms[0]
            try:
                runtime = session.predict(source, platform,
                                          num_teams=args.teams,
                                          num_threads=args.threads,
                                          dtype=None)
            except KeyError as error:
                raise StoreError(error.args[0] if error.args
                                 else str(error)) from error
            except Exception as error:
                # --source is user input: parse/build failures are expected
                raise StoreError(
                    f"cannot predict --source {args.source}: "
                    f"{type(error).__name__}: {error}") from error
            print(f"predicted runtime on {platform}: {runtime:.3f} us "
                  f"(teams={args.teams}, threads={args.threads})")
    finally:
        session.close()
    return 0


def _cmd_inspect(args) -> int:
    summary = inspect_artifact(args.path)
    if args.as_json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(f"{summary['kind']} artifact {summary['name']!r} at {summary['path']}")
    print(f"  schema {summary['schema_version']}, written by repro "
          f"{summary['repro_version']} at {summary['created_at']}")
    print(f"  seed {summary['seed']}, dataset fingerprint "
          f"{summary['dataset_fingerprint'] or '(none)'}")
    print(f"  {summary['size_bytes']} bytes on disk")
    for entry in summary["models"]:
        metrics = ", ".join(f"{key}={value:.4g}"
                            for key, value in sorted(entry["metrics"].items()))
        print(f"  model {entry['name']}: {entry['num_parameters']} parameters"
              + (f" ({metrics})" if metrics else ""))
    return 0


def _cmd_verify(args) -> int:
    report = verify_artifact(args.path)
    print(report.summary())
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handler = {"save": _cmd_save, "load": _cmd_load,
               "inspect": _cmd_inspect, "verify": _cmd_verify}[args.command]
    try:
        return handler(args)
    except (StoreError, OSError) as error:
        # expected-failure paths only (bad artifacts, bad inputs, I/O);
        # the subcommands wrap malformed --config and unknown --platform
        # into StoreError themselves, so genuine bugs keep their traceback
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
