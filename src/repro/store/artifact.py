"""Artifact save/load: trained model sets as content-addressed directories.

Layout of one artifact::

    <artifact>/
      manifest.json                 # schema: repro.store.manifest
      weights/<model-slug>.npz      # one float64 state_dict per model

``save_session`` / ``load_session`` persist a whole
:class:`~repro.api.session.Session` (per-platform trainers, vocabulary,
encoder settings, config, scaler state); ``save_compoff`` / ``load_compoff``
do the same for the COMPOFF baseline.  The lower-level ``save_trainers`` /
``load_trainers`` pair works on bare ``{name: Trainer}`` mappings and is
what the synth ``store-roundtrip`` scenario sweeps.

The contract that matters: a model set loaded from an artifact predicts
**bit-identically** (float64) to the in-process model set that wrote it.
Weights travel as ``.npz`` float64 arrays (lossless), scaler statistics as
JSON floats (repr round-trip, also lossless), and
:meth:`~repro.nn.module.Module.load_state_dict` validates dtype and
finiteness so silent corruption cannot survive a load.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import shutil
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..ml.scaler import scaler_from_dict
from ..obs.metrics import add_count
from ..obs.tracing import span
from ..reliability.faults import SITE_STORE_READ, SITE_STORE_WRITE, fault_point
from .manifest import (
    CorruptArtifactError,
    MANIFEST_NAME,
    SCHEMA_VERSION,
    StoreError,
    check_compatibility,
    validate_manifest,
)

__all__ = [
    "LoadedModelSet",
    "VerificationReport",
    "artifact_size_bytes",
    "dataset_fingerprint",
    "inspect_artifact",
    "load_compoff",
    "load_session",
    "load_trainers",
    "read_manifest",
    "save_compoff",
    "save_session",
    "save_trainers",
    "verify_artifact",
]

#: sub-directory of an artifact holding the ``.npz`` weight payloads.
WEIGHTS_DIR = "weights"


# --------------------------------------------------------------------- #
# small helpers
# --------------------------------------------------------------------- #
def _slug(name: str) -> str:
    """Filesystem-safe file stem for a model name (``NVIDIA V100`` →
    ``nvidia-v100``)."""
    cleaned = "".join(ch if ch.isalnum() else "-" for ch in name.lower())
    collapsed = "-".join(part for part in cleaned.split("-") if part)
    return collapsed or "model"


def _unique_suffix() -> str:
    """Per-call unique staging suffix: concurrent saves to one path (two
    threads, two processes) must never share a staging directory."""
    import uuid
    return f"{os.getpid()}.{uuid.uuid4().hex[:8]}"


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def _repro_version() -> str:
    import repro
    return repro.__version__


def _manifest_path(path: str) -> str:
    return os.path.join(path, MANIFEST_NAME)


def dataset_fingerprint(results: Mapping) -> Optional[str]:
    """SHA-256 over the training data a model set was fitted on.

    Hashes, per platform in sorted order, the sample names and the runtime
    labels — enough to notice "same config, different data" drift between
    an artifact and a retrained reference.  Returns ``None`` when no
    platform carries samples (e.g. re-saving a warm-started session)."""
    digest = hashlib.sha256()
    saw_samples = False

    def frame(raw: bytes) -> None:
        # length-prefix every field so differently partitioned inputs
        # ('ab'+'c' vs 'a'+'bc') can never collide to one fingerprint
        digest.update(len(raw).to_bytes(8, "little"))
        digest.update(raw)

    for name in sorted(results):
        dataset = getattr(results[name], "dataset", None)
        if dataset is None or len(dataset) == 0:
            continue
        saw_samples = True
        frame(name.encode("utf-8"))
        frame(np.ascontiguousarray(dataset.targets()).tobytes())
        for sample in dataset.samples:
            frame(sample.name.encode("utf-8"))
    return digest.hexdigest() if saw_samples else None


def artifact_size_bytes(path: str) -> int:
    """Total on-disk size of an artifact directory."""
    total = 0
    for root, _, files in os.walk(path):
        for filename in files:
            total += os.path.getsize(os.path.join(root, filename))
    return total


# --------------------------------------------------------------------- #
# manifest I/O
# --------------------------------------------------------------------- #
def read_manifest(path: str, *, check_versions: bool = True) -> dict:
    """Read + schema-validate ``manifest.json``; optionally check versions.

    Raises :class:`CorruptArtifactError` (unreadable / schema violation,
    naming the offending field) or :class:`VersionMismatchError`.
    """
    manifest_path = _manifest_path(path)
    if not os.path.isdir(path):
        raise CorruptArtifactError(f"artifact directory does not exist: {path}")
    if not os.path.exists(manifest_path):
        raise CorruptArtifactError(
            f"artifact has no {MANIFEST_NAME}: {manifest_path}")
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as error:
        raise CorruptArtifactError(
            f"unreadable {MANIFEST_NAME} at {manifest_path}: {error}") from error
    validate_manifest(payload)
    if check_versions:
        check_compatibility(payload)
    return payload


# --------------------------------------------------------------------- #
# saving
# --------------------------------------------------------------------- #
def _module_state(module) -> Dict[str, np.ndarray]:
    state = module.state_dict()
    for key, value in state.items():
        if np.issubdtype(value.dtype, np.inexact) and \
                not np.isfinite(value).all():
            raise StoreError(
                f"refusing to save model state {key!r}: it contains "
                "non-finite values (NaN/Inf)")
    return state


def _write_weights(path: str, slug: str, state: Mapping[str, np.ndarray]) -> Tuple[str, str]:
    """Write one ``.npz`` payload; returns (relative path, sha256).

    Serializes to memory first so one pass both hashes and writes the
    bytes — the save-path mirror of ``_load_state``'s single-read design.
    """
    weights_dir = os.path.join(path, WEIGHTS_DIR)
    os.makedirs(weights_dir, exist_ok=True)
    relative = f"{WEIGHTS_DIR}/{slug}.npz"
    target = os.path.join(path, *relative.split("/"))
    buffer = io.BytesIO()
    np.savez(buffer, **dict(state))
    raw = buffer.getvalue()
    with span("store.write", payload=relative, num_bytes=len(raw)):
        digest = hashlib.sha256(raw).hexdigest()
        # chaos hook *after* hashing: an injected write corruption lands on
        # disk with a now-stale recorded checksum, exactly like a real torn
        # write — verify/load catches it, nothing silently survives
        raw = fault_point(SITE_STORE_WRITE, raw)
        with open(target, "wb") as handle:
            handle.write(raw)
        add_count("store.bytes_written", len(raw))
        add_count("store.payloads_written")
    return relative, digest


def _staged_save(path: str, overwrite: bool, write_payloads) -> str:
    """Write an artifact via a staging directory, committing only on success.

    ``write_payloads(stage_dir) -> manifest dict`` does the actual writes.
    The existing artifact at *path* (if any) is only touched *after* the
    replacement is completely written, so a failed save — non-finite
    weights, a full disk — never destroys a previously valid artifact.
    The commit itself uses renames: the old manifest and ``weights/`` move
    to ``.old`` backups before the new ones move in, so even a hard kill
    mid-commit leaves the previous state recoverable on disk (the backups
    are deleted only as the final step).  Unrelated files in the directory
    are kept.
    """
    if os.path.exists(_manifest_path(path)) and not overwrite:
        raise StoreError(
            f"artifact already exists at {path} (pass overwrite=True to "
            "replace it)")
    stage = f"{path}.staging.{_unique_suffix()}"
    os.makedirs(stage)
    try:
        _dump_manifest(stage, write_payloads(stage))
    except BaseException:
        shutil.rmtree(stage, ignore_errors=True)
        raise
    if not os.path.exists(path):
        try:
            os.rename(stage, path)
        except OSError:
            shutil.rmtree(stage, ignore_errors=True)
            raise
        return path
    manifest_backup = _manifest_path(path) + ".old"
    weights_backup = os.path.join(path, WEIGHTS_DIR + ".old")
    for leftover in (manifest_backup, weights_backup):
        if os.path.isdir(leftover):
            shutil.rmtree(leftover)
        elif os.path.exists(leftover):
            os.remove(leftover)
    old_weights = os.path.join(path, WEIGHTS_DIR)
    try:
        if os.path.exists(_manifest_path(path)):
            os.replace(_manifest_path(path), manifest_backup)
        if os.path.isdir(old_weights):
            os.rename(old_weights, weights_backup)
        os.rename(os.path.join(stage, WEIGHTS_DIR), old_weights)
        os.rename(_manifest_path(stage), _manifest_path(path))
    except BaseException:
        # roll back in reverse so the old artifact survives a mid-commit
        # failure *coherently*: if the old weights were moved aside, drop
        # any half-swapped new weights and put the old ones back, then
        # restore the old manifest — never old-manifest + new-weights
        if os.path.isdir(weights_backup):
            if os.path.isdir(old_weights):
                shutil.rmtree(old_weights)
            os.rename(weights_backup, old_weights)
        if not os.path.exists(_manifest_path(path)) and \
                os.path.exists(manifest_backup):
            os.replace(manifest_backup, _manifest_path(path))
        shutil.rmtree(stage, ignore_errors=True)
        raise
    shutil.rmtree(stage, ignore_errors=True)
    shutil.rmtree(weights_backup, ignore_errors=True)
    if os.path.exists(manifest_backup):
        os.remove(manifest_backup)
    return path


def _base_manifest(*, kind: str, name: str, seed, config_payload: dict,
                   models: List[dict], fingerprint: Optional[str] = None,
                   extra: Optional[dict] = None) -> dict:
    """The provenance/identity block every artifact kind shares."""
    payload = {
        "schema_version": SCHEMA_VERSION,
        "kind": kind,
        "name": name,
        "repro_version": _repro_version(),
        "created_at": _utc_now(),
        "seed": seed,
        "dataset_fingerprint": fingerprint,
        "config": config_payload,
        "models": models,
    }
    payload.update(extra or {})
    return payload


def _dump_manifest(path: str, manifest: dict) -> None:
    with open(_manifest_path(path), "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")


def save_trainers(
    path: str,
    trainers: Mapping[str, "object"],
    *,
    config,
    encoder=None,
    metrics: Optional[Mapping[str, Mapping[str, float]]] = None,
    name: str = "session",
    fingerprint: Optional[str] = None,
    overwrite: bool = False,
) -> str:
    """Write a ``kind="session"`` artifact from ``{platform: Trainer}``.

    The shared core of :func:`save_session`; usable directly when the
    trainers were produced outside a :class:`~repro.api.session.Session`
    (the synth harness does this).  Returns the artifact path.
    """
    if not trainers:
        raise StoreError("cannot save an empty model set: no trained "
                         "platforms (did training drop every dataset?)")
    metrics = metrics or {}
    if encoder is None:
        encoder = config.make_encoder()

    def write_payloads(stage: str) -> dict:
        entries: List[dict] = []
        slugs: Dict[str, str] = {}
        for platform_name in sorted(trainers):
            trainer = trainers[platform_name]
            slug = base_slug = _slug(platform_name)
            suffix = 1
            while slug in slugs.values():
                slug = f"{base_slug}-{suffix}"
                suffix += 1
            slugs[platform_name] = slug
            state = _module_state(trainer.model)
            relative, sha256 = _write_weights(stage, slug, state)
            entries.append({
                "name": platform_name,
                "weights": relative,
                "sha256": sha256,
                "num_parameters": int(trainer.model.num_parameters()),
                "dtypes": {key: str(value.dtype)
                           for key, value in state.items()},
                "scalers": {
                    "target": trainer.target_scaler.to_dict(),
                    "aux": trainer.aux_scaler.to_dict(),
                },
                "metrics": {key: float(value) for key, value
                            in dict(metrics.get(platform_name, {})).items()},
            })
        return _base_manifest(
            kind="session", name=name, seed=int(config.seed),
            config_payload=config.to_dict(), models=entries,
            fingerprint=fingerprint,
            extra={
                "vocabulary": encoder.vocabulary.to_dict(),
                "encoder": {
                    "include_terminal_flag": bool(encoder.include_terminal_flag),
                    "log_scale_weights": bool(encoder.log_scale_weights),
                },
            })

    return _staged_save(path, overwrite, write_payloads)


def save_session(session, path: str, *, name: str = "session",
                 overwrite: bool = False) -> str:
    """Persist a trained session as an artifact directory.

    Trains first if the session has not trained yet (saving implies a
    model set to save).  Returns the artifact path.
    """
    results = session.train()
    fingerprint = dataset_fingerprint(results)
    if fingerprint is None:
        fingerprint = (session.provenance or {}).get("dataset_fingerprint")
    return save_trainers(
        path,
        {platform: result.trainer for platform, result in results.items()},
        config=session.config,
        encoder=session.encoder,
        metrics={platform: result.metrics
                 for platform, result in results.items()},
        name=name,
        fingerprint=fingerprint,
        overwrite=overwrite,
    )


# --------------------------------------------------------------------- #
# loading
# --------------------------------------------------------------------- #
@dataclass
class LoadedModelSet:
    """What :func:`load_trainers` reconstructs from a session artifact."""

    manifest: dict
    config: "object"
    encoder: "object"
    trainers: Dict[str, "object"] = field(default_factory=dict)
    metrics: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def provenance(self) -> dict:
        """The identity/compat fields of the manifest, for bookkeeping."""
        manifest = self.manifest
        return {
            "name": manifest.get("name"),
            "repro_version": manifest.get("repro_version"),
            "schema_version": manifest.get("schema_version"),
            "created_at": manifest.get("created_at"),
            "seed": manifest.get("seed"),
            "dataset_fingerprint": manifest.get("dataset_fingerprint"),
        }


def _load_state(path: str, entry: Mapping, verify: bool) -> Dict[str, np.ndarray]:
    """Read one weight payload — a single read serves both the checksum and
    the decode, so verified cold starts never pay double I/O."""
    weights_path = os.path.join(path, *entry["weights"].split("/"))
    if not os.path.exists(weights_path):
        raise CorruptArtifactError(
            f"manifest field 'models[{entry['name']!r}].weights': payload "
            f"file {entry['weights']!r} is missing from the artifact")
    try:
        with span("store.read", payload=entry["weights"]):
            with open(weights_path, "rb") as handle:
                raw = handle.read()
            add_count("store.bytes_read", len(raw))
            add_count("store.payloads_read")
    except OSError as error:
        raise CorruptArtifactError(
            f"manifest field 'models[{entry['name']!r}].weights': cannot "
            f"read payload {entry['weights']!r}: {error}") from error
    # chaos hook before the checksum: injected read corruption (bit rot,
    # torn page) must be caught by the verify path below
    raw = fault_point(SITE_STORE_READ, raw)
    if verify:
        with span("store.verify", payload=entry["weights"],
                  num_bytes=len(raw)):
            actual = hashlib.sha256(raw).hexdigest()
            if actual != entry["sha256"]:
                raise CorruptArtifactError(
                    f"manifest field 'models[{entry['name']!r}].sha256': "
                    f"checksum mismatch for {entry['weights']!r} (manifest "
                    f"says {entry['sha256'][:12]}…, file hashes to "
                    f"{actual[:12]}…)")
    try:
        with np.load(io.BytesIO(raw)) as payload:
            state = {key: payload[key] for key in payload.files}
    except Exception as error:
        raise CorruptArtifactError(
            f"manifest field 'models[{entry['name']!r}].weights': cannot "
            f"decode {entry['weights']!r} as an npz payload: {error}") from error
    recorded = entry["dtypes"]
    if set(state) != set(recorded):
        missing = sorted(set(recorded) - set(state))
        unexpected = sorted(set(state) - set(recorded))
        raise CorruptArtifactError(
            f"manifest field 'models[{entry['name']!r}].dtypes': payload "
            f"arrays disagree with the manifest (missing={missing}, "
            f"unexpected={unexpected})")
    for key, array in state.items():
        if str(array.dtype) != recorded[key]:
            raise CorruptArtifactError(
                f"manifest field 'models[{entry['name']!r}].dtypes[{key!r}]': "
                f"manifest says {recorded[key]}, payload array is "
                f"{array.dtype}")
    return state


def _restore_scaler(entry: Mapping, scaler_key: str):
    """Scaler from a manifest entry; corruption becomes a field-naming error."""
    try:
        return scaler_from_dict(entry["scalers"][scaler_key])
    except (KeyError, ValueError, TypeError) as error:
        raise CorruptArtifactError(
            f"manifest field 'models[{entry['name']!r}].scalers."
            f"{scaler_key}': {error}") from error


def _load_into_module(module, state: Mapping[str, np.ndarray],
                      entry: Mapping) -> None:
    """``load_state_dict`` with mismatches reported as corrupt-artifact."""
    try:
        module.load_state_dict(state)
    except (KeyError, ValueError) as error:
        raise CorruptArtifactError(
            f"manifest field 'models[{entry['name']!r}].weights': state "
            f"does not fit the configured model: {error}") from error


def load_trainers(path: str, *, verify: bool = True,
                  preloaded: Optional[Mapping[str, Mapping]] = None) -> LoadedModelSet:
    """Reconstruct the trainers of a ``kind="session"`` artifact.

    Rebuilds config, vocabulary and encoder from the manifest, instantiates
    each platform's model via ``config.model.build`` and restores weights
    (dtype-validated, finite-checked by ``load_state_dict``) and scaler
    state.  With ``verify=True`` (default) payload checksums are enforced.
    *preloaded* maps model names to already-decoded state dicts
    (``verify_artifact`` passes the states its integrity loop read, so a
    verify never decodes a payload twice).
    """
    from ..api.config import ReproConfig
    from ..ml.trainer import Trainer
    from ..paragraph.encoders import GraphEncoder
    from ..paragraph.vocab import Vocabulary

    manifest = read_manifest(path)
    if manifest["kind"] != "session":
        raise StoreError(
            f"expected a 'session' artifact at {path}, found kind "
            f"{manifest['kind']!r} (load it with the matching loader)")
    try:
        config = ReproConfig.from_dict(manifest["config"])
    except Exception as error:
        raise CorruptArtifactError(
            f"manifest field 'config': does not rebuild a ReproConfig: "
            f"{error}") from error
    try:
        vocabulary = Vocabulary.from_dict(manifest["vocabulary"])
    except ValueError as error:
        raise CorruptArtifactError(
            f"manifest field 'vocabulary': {error}") from error
    encoder = GraphEncoder(
        vocabulary=vocabulary,
        include_terminal_flag=manifest["encoder"]["include_terminal_flag"],
        log_scale_weights=manifest["encoder"]["log_scale_weights"],
    )
    loaded = LoadedModelSet(manifest=manifest, config=config, encoder=encoder)
    for entry in manifest["models"]:
        if preloaded is not None and entry["name"] in preloaded:
            state = preloaded[entry["name"]]
        else:
            state = _load_state(path, entry, verify)
        try:
            model = config.model.build(
                node_feature_dim=encoder.feature_dim,
                use_edge_weight=config.graph.use_edge_weight,
                seed=config.seed,
            )
        except Exception as error:
            raise CorruptArtifactError(
                f"manifest field 'config.model': cannot construct the "
                f"configured model: {error}") from error
        _load_into_module(model, state, entry)
        trainer = Trainer(model, config.training)
        trainer.target_scaler = _restore_scaler(entry, "target")
        trainer.aux_scaler = _restore_scaler(entry, "aux")
        trainer._fitted_scalers = True
        loaded.trainers[entry["name"]] = trainer
        loaded.metrics[entry["name"]] = dict(entry["metrics"])
    return loaded


def load_session(path: str, *, serve_config=None, graph_cache_size: int = 256,
                 verify: bool = True, session_cls=None):
    """Reconstruct a serving-ready :class:`~repro.api.session.Session`.

    The returned session is *warm-started*: ``train()`` is a no-op that
    returns the restored per-platform results, and ``predict_batch`` goes
    straight to the serving path — float64 (``dtype=None``) predictions are
    bit-identical to the session that wrote the artifact.  *session_cls*
    lets ``Session`` subclasses reconstruct as themselves (what
    ``Session.load`` passes).
    """
    from ..api.registries import resolve_platform
    from ..api.session import Session
    from ..ml.dataset import GraphDataset
    from ..ml.trainer import History
    from ..pipeline.workflow import PlatformResult

    loaded = load_trainers(path, verify=verify)
    session = (session_cls or Session)(
        loaded.config, graph_cache_size=graph_cache_size,
        serve_config=serve_config)
    session.encoder = loaded.encoder
    results = {}
    for platform_name, trainer in loaded.trainers.items():
        try:
            spec = resolve_platform(platform_name)
        except Exception as error:
            raise CorruptArtifactError(
                f"manifest field 'models[{platform_name!r}].name': unknown "
                f"platform: {error}") from error
        if spec.name in results:
            raise CorruptArtifactError(
                f"manifest field 'models[{platform_name!r}].name': resolves "
                f"to platform {spec.name!r}, which another model entry "
                "already claims (aliases collapsing to one platform)")
        placeholder = GraphDataset(name=platform_name)
        results[spec.name] = PlatformResult(
            platform=spec,
            dataset=placeholder,
            train=placeholder,
            validation=placeholder,
            trainer=trainer,
            history=History(),
            metrics=loaded.metrics[platform_name],
        )
    session._install_restored_results(results, loaded.provenance)
    return session


# --------------------------------------------------------------------- #
# COMPOFF artifacts
# --------------------------------------------------------------------- #
def save_compoff(model, path: str, *, name: str = "compoff",
                 overwrite: bool = False) -> str:
    """Write a ``kind="compoff"`` artifact for a fitted COMPOFF baseline."""
    from dataclasses import asdict

    if not getattr(model, "_fitted", False):
        raise StoreError("COMPOFF model is not fitted; fit() before saving")

    def write_payloads(stage: str) -> dict:
        state = _module_state(model.network)
        relative, sha256 = _write_weights(stage, "compoff", state)
        config_payload = asdict(model.config)
        config_payload["hidden_dims"] = [int(d)
                                         for d in config_payload["hidden_dims"]]
        return _base_manifest(
            kind="compoff", name=name, seed=model.config.seed,
            config_payload=config_payload,
            models=[{
                "name": "compoff",
                "weights": relative,
                "sha256": sha256,
                "num_parameters": int(model.network.num_parameters()),
                "dtypes": {key: str(value.dtype)
                           for key, value in state.items()},
                "scalers": {
                    "feature": model.feature_scaler.to_dict(),
                    "target": model.target_scaler.to_dict(),
                },
                "metrics": {},
            }])

    return _staged_save(path, overwrite, write_payloads)


def load_compoff(path: str, *, verify: bool = True, model_cls=None,
                 preloaded: Optional[Mapping[str, Mapping]] = None):
    """Reconstruct a fitted COMPOFF baseline; predictions are bit-identical
    (the MLP always runs float64).  *model_cls* lets subclasses
    reconstruct as themselves (what ``COMPOFFModel.load`` passes);
    *preloaded* is the decoded-state cache ``verify_artifact`` shares."""
    from ..compoff.model import COMPOFFConfig, COMPOFFModel

    manifest = read_manifest(path)
    if manifest["kind"] != "compoff":
        raise StoreError(
            f"expected a 'compoff' artifact at {path}, found kind "
            f"{manifest['kind']!r} (load it with the matching loader)")
    payload = dict(manifest["config"])
    try:
        payload["hidden_dims"] = tuple(payload.get("hidden_dims", ()))
        config = COMPOFFConfig(**payload)
    except (TypeError, ValueError) as error:
        raise CorruptArtifactError(
            f"manifest field 'config': does not rebuild a COMPOFFConfig: "
            f"{error}") from error
    try:
        model = (model_cls or COMPOFFModel)(config)
    except Exception as error:
        raise CorruptArtifactError(
            f"manifest field 'config': cannot construct the configured "
            f"network: {error}") from error
    entry = manifest["models"][0]
    if preloaded is not None and entry["name"] in preloaded:
        state = preloaded[entry["name"]]
    else:
        state = _load_state(path, entry, verify)
    _load_into_module(model.network, state, entry)
    model.feature_scaler = _restore_scaler(entry, "feature")
    model.target_scaler = _restore_scaler(entry, "target")
    model._fitted = True
    return model


# --------------------------------------------------------------------- #
# inspection / verification
# --------------------------------------------------------------------- #
@dataclass
class VerificationReport:
    """Outcome of :func:`verify_artifact`."""

    path: str
    ok: bool
    problems: List[str] = field(default_factory=list)
    kind: Optional[str] = None
    name: Optional[str] = None
    num_models: int = 0
    size_bytes: int = 0

    def summary(self) -> str:
        status = "OK" if self.ok else "FAILED"
        lines = [f"{status}: {self.path} (kind={self.kind}, "
                 f"models={self.num_models}, {self.size_bytes} bytes)"]
        lines.extend(f"  - {problem}" for problem in self.problems)
        return "\n".join(lines)


def verify_artifact(path: str) -> VerificationReport:
    """Full integrity check: schema, version compatibility, payload
    checksums, npz decodability, dtype agreement and finiteness.

    Collects *every* problem instead of stopping at the first, so one
    verify run describes the whole damage.
    """
    report = VerificationReport(path=path, ok=True,
                                size_bytes=artifact_size_bytes(path)
                                if os.path.isdir(path) else 0)
    try:
        manifest = read_manifest(path)
    except StoreError as error:
        report.ok = False
        report.problems.append(str(error))
        return report
    report.kind = manifest.get("kind")
    report.name = manifest.get("name")
    report.num_models = len(manifest.get("models", ()))
    decoded: Dict[str, Mapping] = {}
    for entry in manifest["models"]:
        try:
            state = _load_state(path, entry, verify=True)
        except StoreError as error:
            report.ok = False
            report.problems.append(str(error))
            continue
        decoded[entry["name"]] = state
        for key, array in state.items():
            if np.issubdtype(array.dtype, np.inexact) and \
                    not np.isfinite(array).all():
                report.ok = False
                report.problems.append(
                    f"models[{entry['name']!r}] array {key!r} contains "
                    "non-finite values (NaN/Inf)")
        for scaler_name, payload in entry["scalers"].items():
            try:
                scaler_from_dict(payload)
            except (ValueError, TypeError) as error:
                report.ok = False
                report.problems.append(
                    f"models[{entry['name']!r}] scaler {scaler_name!r}: "
                    f"{error}")
    if report.ok:
        # deep check: the manifest must actually *reconstruct* — config and
        # vocabulary rebuild, and every payload fits the configured model
        # (catches e.g. a tampered config.model.hidden_dim whose weight
        # files still checksum cleanly)
        try:
            if manifest["kind"] == "session":
                load_trainers(path, verify=False, preloaded=decoded)
            else:
                load_compoff(path, verify=False, preloaded=decoded)
        except StoreError as error:
            report.ok = False
            report.problems.append(str(error))
        except Exception as error:  # noqa: BLE001 - a verify must report,
            report.ok = False       # never crash, whatever the corruption
            report.problems.append(
                f"reconstruction failed: {type(error).__name__}: {error}")
    return report


def inspect_artifact(path: str) -> dict:
    """A human-oriented summary dict of an artifact (used by the CLI)."""
    manifest = read_manifest(path, check_versions=False)
    return {
        "path": path,
        "kind": manifest["kind"],
        "name": manifest["name"],
        "schema_version": manifest["schema_version"],
        "repro_version": manifest["repro_version"],
        "created_at": manifest["created_at"],
        "seed": manifest.get("seed"),
        "dataset_fingerprint": manifest.get("dataset_fingerprint"),
        "size_bytes": artifact_size_bytes(path),
        "models": [
            {
                "name": entry["name"],
                "weights": entry["weights"],
                "num_parameters": entry["num_parameters"],
                "metrics": entry["metrics"],
            }
            for entry in manifest["models"]
        ],
    }
