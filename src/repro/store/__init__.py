"""``repro.store`` — model artifact store and zero-retrain warm starts.

The missing persistence layer of the serving story: a content-addressed,
versioned artifact format (``manifest.json`` + ``.npz`` weight payloads)
capturing everything a serving-ready model set needs — per-platform
``state_dict``s, vocabulary, encoder settings, the full
:class:`~repro.api.config.ReproConfig`, fitted scaler state, and
provenance (repro version, seed, dataset fingerprint, creation time).

* :func:`save_session` / :func:`load_session` — persist and warm-start a
  :class:`~repro.api.session.Session`; loaded sessions skip training and
  predict **bit-identically** (float64) to the session that saved them
  (``Session.save`` / ``Session.load`` are thin wrappers),
* :func:`save_trainers` / :func:`load_trainers` — the same for bare
  ``{platform: Trainer}`` model sets,
* :func:`save_compoff` / :func:`load_compoff` — COMPOFF baseline
  coefficients as artifacts,
* :class:`ModelRegistry` — ``name@version`` → artifact resolution with a
  ``latest`` pointer, for pinned evaluation/soak model sets,
* :func:`verify_artifact` / :func:`inspect_artifact` — integrity checking
  (schema, version compatibility, checksums, dtypes, finiteness) with
  errors that name the offending manifest field,
* ``python -m repro.store`` — ``save`` / ``load`` / ``inspect`` /
  ``verify`` from the command line.

See ``STORE.md`` for the artifact layout and the manifest schema.
"""

from .artifact import (
    LoadedModelSet,
    VerificationReport,
    artifact_size_bytes,
    dataset_fingerprint,
    inspect_artifact,
    load_compoff,
    load_session,
    load_trainers,
    read_manifest,
    save_compoff,
    save_session,
    save_trainers,
    verify_artifact,
)
from .manifest import (
    ARTIFACT_KINDS,
    CorruptArtifactError,
    MANIFEST_NAME,
    SCHEMA_VERSION,
    StoreError,
    VersionMismatchError,
    check_compatibility,
    validate_manifest,
)
from .registry import ModelRegistry

__all__ = [
    "ARTIFACT_KINDS",
    "CorruptArtifactError",
    "LoadedModelSet",
    "MANIFEST_NAME",
    "ModelRegistry",
    "SCHEMA_VERSION",
    "StoreError",
    "VerificationReport",
    "VersionMismatchError",
    "artifact_size_bytes",
    "check_compatibility",
    "dataset_fingerprint",
    "inspect_artifact",
    "load_compoff",
    "load_session",
    "load_trainers",
    "read_manifest",
    "save_compoff",
    "save_session",
    "save_trainers",
    "validate_manifest",
    "verify_artifact",
]
