"""Manifest schema of a ``repro.store`` artifact.

An artifact is a directory holding one ``manifest.json`` plus one ``.npz``
weight payload per model.  The manifest captures *everything* needed to
reconstruct a serving-ready model set without retraining:

* the full :class:`~repro.api.config.ReproConfig` tree (or the COMPOFF
  config for ``kind="compoff"`` artifacts),
* the :class:`~repro.paragraph.vocab.Vocabulary` labels and the encoder
  settings, so restored feature matrices are bit-identical,
* per-model entries: weight file, SHA-256 checksum, per-array dtypes, the
  fitted scaler state, and the validation metrics recorded at save time,
* provenance: the ``repro`` version that wrote it, the manifest schema
  version, creation time, the config seed and a dataset fingerprint.

Validation is *field-naming*: every schema violation raises
:class:`CorruptArtifactError` (or :class:`VersionMismatchError`) with the
dotted path of the offending field, so a broken artifact tells you exactly
what is wrong instead of failing deep inside model construction.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Tuple

__all__ = [
    "ARTIFACT_KINDS",
    "CorruptArtifactError",
    "MANIFEST_NAME",
    "SCHEMA_VERSION",
    "StoreError",
    "VersionMismatchError",
    "check_compatibility",
    "validate_manifest",
]

#: file name of the manifest inside an artifact directory.
MANIFEST_NAME = "manifest.json"

#: the manifest format version this build reads and writes.
SCHEMA_VERSION = 1

#: the artifact kinds the store knows how to reconstruct.
ARTIFACT_KINDS = ("session", "compoff")


class StoreError(Exception):
    """Base class of every ``repro.store`` failure."""


class CorruptArtifactError(StoreError):
    """The artifact is structurally broken: unreadable manifest, schema
    violation, checksum mismatch, missing or undecodable payload.  The
    message names the offending manifest field or file."""


class VersionMismatchError(StoreError):
    """The artifact was written by an incompatible schema or ``repro``
    version.  The message names the offending field and both versions."""


# --------------------------------------------------------------------- #
# field-level validation helpers
# --------------------------------------------------------------------- #
def _fail(field: str, problem: str) -> None:
    raise CorruptArtifactError(f"manifest field {field!r}: {problem}")


def _expect(payload: Mapping, field: str, types, path: str):
    """Fetch ``payload[field]`` checking presence and type; returns it."""
    dotted = f"{path}.{field}" if path else field
    if field not in payload:
        _fail(dotted, "missing")
    value = payload[field]
    if types is not None and not isinstance(value, types):
        type_names = "/".join(t.__name__ for t in (
            types if isinstance(types, tuple) else (types,)))
        _fail(dotted, f"expected {type_names}, got {type(value).__name__}")
    return value


def _check_scaler(payload, path: str) -> None:
    if not isinstance(payload, dict):
        _fail(path, f"expected a scaler dict, got {type(payload).__name__}")
    kind = payload.get("type")
    if not isinstance(kind, str):
        _fail(f"{path}.type", "missing or not a string")


def _check_model_entry(entry, index: int) -> None:
    path = f"models[{index}]"
    if not isinstance(entry, dict):
        _fail(path, f"expected an object, got {type(entry).__name__}")
    _expect(entry, "name", str, path)
    weights = _expect(entry, "weights", str, path)
    if ".." in weights.split("/") or weights.startswith("/"):
        _fail(f"{path}.weights", f"path {weights!r} escapes the artifact "
              "directory")
    sha256 = _expect(entry, "sha256", str, path)
    if len(sha256) != 64 or any(c not in "0123456789abcdef" for c in sha256):
        _fail(f"{path}.sha256", f"not a lowercase hex SHA-256 digest: "
              f"{sha256!r}")
    dtypes = _expect(entry, "dtypes", dict, path)
    for key, value in dtypes.items():
        if not isinstance(value, str):
            _fail(f"{path}.dtypes[{key!r}]", "dtype must be a string")
    _expect(entry, "num_parameters", int, path)
    scalers = _expect(entry, "scalers", dict, path)
    for scaler_name, scaler_payload in scalers.items():
        _check_scaler(scaler_payload, f"{path}.scalers.{scaler_name}")
    metrics = _expect(entry, "metrics", dict, path)
    for key, value in metrics.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            _fail(f"{path}.metrics[{key!r}]",
                  f"metric must be a number, got {value!r}")


def validate_manifest(payload) -> None:
    """Raise :class:`CorruptArtifactError` naming the first invalid field."""
    if not isinstance(payload, dict):
        raise CorruptArtifactError(
            f"manifest root: expected a JSON object, got "
            f"{type(payload).__name__}")
    _expect(payload, "schema_version", int, "")
    _expect(payload, "repro_version", str, "")
    kind = _expect(payload, "kind", str, "")
    if kind not in ARTIFACT_KINDS:
        _fail("kind", f"unknown artifact kind {kind!r}; known kinds: "
              f"{list(ARTIFACT_KINDS)}")
    _expect(payload, "name", str, "")
    _expect(payload, "created_at", str, "")
    _expect(payload, "config", dict, "")
    models = _expect(payload, "models", list, "")
    if not models:
        _fail("models", "artifact contains no models")
    # per-entry checks first, so a malformed entry is named precisely
    # ("models[0]: expected an object") instead of as a duplicate name
    for index, entry in enumerate(models):
        _check_model_entry(entry, index)
    names = [entry["name"] for entry in models]
    if len(set(names)) != len(models):
        _fail("models", "duplicate model entry names")
    if kind == "session":
        vocabulary = _expect(payload, "vocabulary", dict, "")
        labels = _expect(vocabulary, "labels", list, "vocabulary")
        if not all(isinstance(label, str) for label in labels):
            _fail("vocabulary.labels", "labels must all be strings")
        encoder = _expect(payload, "encoder", dict, "")
        for flag in ("include_terminal_flag", "log_scale_weights"):
            _expect(encoder, flag, bool, "encoder")
    fingerprint = payload.get("dataset_fingerprint")
    if fingerprint is not None and not isinstance(fingerprint, str):
        _fail("dataset_fingerprint", "must be a string or null")


# --------------------------------------------------------------------- #
# version compatibility
# --------------------------------------------------------------------- #
def _version_tuple(version: str) -> Tuple[int, ...]:
    parts: List[int] = []
    for chunk in version.split(".")[:3]:
        digits = "".join(ch for ch in chunk if ch.isdigit())
        parts.append(int(digits) if digits else 0)
    return tuple(parts)


def check_compatibility(payload: Mapping,
                        current_version: Optional[str] = None) -> None:
    """Raise :class:`VersionMismatchError` when the artifact cannot be
    loaded by this build (schema or major-version drift)."""
    if current_version is None:
        import repro
        current_version = repro.__version__
    schema = payload.get("schema_version")
    if schema != SCHEMA_VERSION:
        raise VersionMismatchError(
            f"manifest field 'schema_version': artifact uses manifest schema "
            f"{schema!r}, this repro build supports {SCHEMA_VERSION}")
    written_by = str(payload.get("repro_version", ""))
    if _version_tuple(written_by)[:1] != _version_tuple(current_version)[:1]:
        raise VersionMismatchError(
            f"manifest field 'repro_version': artifact was written by repro "
            f"{written_by!r}, incompatible with this build "
            f"({current_version!r}); major versions must match")
