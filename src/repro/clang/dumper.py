"""Textual AST dump, loosely modelled on ``clang -ast-dump``.

Useful for debugging kernels and in the examples to show the tree that
ParaGraph is built from.
"""

from __future__ import annotations

from typing import List

from .ast_nodes import ASTNode


def dump(node: ASTNode, max_depth: int = -1) -> str:
    """Return an indented, human-readable dump of the AST."""
    lines: List[str] = []

    def visit(current: ASTNode, prefix: str, is_last: bool, depth: int) -> None:
        connector = "`-" if is_last else "|-"
        spelling = f" '{current.spelling}'" if current.spelling else ""
        line, col = current.location
        loc = f" <{line}:{col}>" if line else ""
        lines.append(f"{prefix}{connector}{current.kind}{spelling}{loc}")
        if max_depth >= 0 and depth >= max_depth:
            return
        child_prefix = prefix + ("  " if is_last else "| ")
        for i, child in enumerate(current.children):
            visit(child, child_prefix, i == len(current.children) - 1, depth + 1)

    spelling = f" '{node.spelling}'" if node.spelling else ""
    lines.append(f"{node.kind}{spelling}")
    for i, child in enumerate(node.children):
        visit(child, "", i == len(node.children) - 1, 1)
    return "\n".join(lines)


def summarize(node: ASTNode) -> str:
    """One-line summary: node counts by kind, sorted by frequency."""
    counts: dict = {}
    for item in node.walk():
        counts[item.kind] = counts.get(item.kind, 0) + 1
    parts = [f"{kind}={count}" for kind, count in
             sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))]
    return ", ".join(parts)
