"""``repro.clang`` — a from-scratch C/OpenMP frontend (Clang substitute).

The original ParaGraph pipeline parses OpenMP C/C++ kernels with Clang and
works on the resulting AST.  This package provides the same capability
without external dependencies: a lexer, a recursive-descent parser producing
Clang-style AST nodes (including OpenMP directive nodes), semantic passes
(reference resolution, implicit-cast insertion, constant folding and loop
trip-count analysis) and traversal / dumping utilities.
"""

from .ast_nodes import *  # noqa: F401,F403 - re-export the node vocabulary
from .lexer import Lexer, LexError, Token, TokenKind, tokenize
from .parser import ParseError, Parser, parse_snippet, parse_source
from .pragmas import PragmaError, parse_omp_pragma
from .semantics import (
    ConstantEnvironment,
    SemanticError,
    analyze,
    counter_range,
    estimate_trip_count,
    loop_counter_name,
    evaluate_constant,
    insert_implicit_casts,
    resolve_references,
)
from .traversal import (
    ASTVisitor,
    count_nodes,
    enclosing_loops,
    iter_for_loops,
    iter_loops,
    iter_omp_directives,
    loop_nest_depth,
    perfectly_nested_for_loops,
    postorder,
    preorder,
    terminals_in_token_order,
)
from .dumper import dump, summarize

__all__ = [name for name in dir() if not name.startswith("_")]
