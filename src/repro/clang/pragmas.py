"""Parsing of ``#pragma omp`` directive text into OpenMP AST nodes.

The lexer emits ``#pragma`` lines as single :data:`TokenKind.PRAGMA` tokens
whose text is everything after ``#pragma``.  This module turns that text into
the directive class (``OMPParallelForDirective``,
``OMPTargetTeamsDistributeParallelForDirective``, …) and a list of
:class:`~repro.clang.ast_nodes.OMPClause` nodes, mirroring how Clang models
OpenMP in its AST.

Only the directives and clauses used by the six ParaGraph code-variant
transformations (§IV-A.1) plus a few common extras are given dedicated node
classes; everything else falls back to :class:`OMPGenericDirective` so
arbitrary OpenMP sources still parse.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple, Type

from .ast_nodes import (
    IntegerLiteral,
    OMPAtomicDirective,
    OMPBarrierDirective,
    OMPClause,
    OMPCriticalDirective,
    OMPExecutableDirective,
    OMPForDirective,
    OMPGenericDirective,
    OMPParallelDirective,
    OMPParallelForDirective,
    OMPSimdDirective,
    OMPTargetDataDirective,
    OMPTargetDirective,
    OMPTargetEnterDataDirective,
    OMPTargetExitDataDirective,
    OMPTargetUpdateDirective,
    OMPTargetTeamsDistributeParallelForDirective,
    OMPTeamsDistributeParallelForDirective,
)


class PragmaError(Exception):
    """Raised when a ``#pragma omp`` line cannot be interpreted."""


#: Longest-match table mapping the directive-name word sequence to the node
#: class.  Order matters only through the "longest prefix wins" rule applied
#: in :func:`_match_directive`.
DIRECTIVE_TABLE: Dict[Tuple[str, ...], Type[OMPExecutableDirective]] = {
    ("target", "teams", "distribute", "parallel", "for"):
        OMPTargetTeamsDistributeParallelForDirective,
    ("teams", "distribute", "parallel", "for"):
        OMPTeamsDistributeParallelForDirective,
    ("target", "enter", "data"): OMPTargetEnterDataDirective,
    ("target", "exit", "data"): OMPTargetExitDataDirective,
    ("target", "update",): OMPTargetUpdateDirective,
    ("target", "data"): OMPTargetDataDirective,
    ("parallel", "for"): OMPParallelForDirective,
    ("parallel",): OMPParallelDirective,
    ("target",): OMPTargetDirective,
    ("for",): OMPForDirective,
    ("simd",): OMPSimdDirective,
    ("critical",): OMPCriticalDirective,
    ("atomic",): OMPAtomicDirective,
    ("barrier",): OMPBarrierDirective,
}

#: Clauses whose single argument is an integer expression we evaluate eagerly
#: (so ``collapse(2)`` exposes the value 2 to the variant analyses).
_INT_CLAUSES = frozenset(
    {"collapse", "num_threads", "num_teams", "thread_limit", "ordered", "safelen", "simdlen"}
)

#: Directives that do not take an associated statement (standalone).
STANDALONE_DIRECTIVES = frozenset(
    {"target enter data", "target exit data", "target update", "barrier"}
)

_CLAUSE_RE = re.compile(r"([a-zA-Z_][a-zA-Z_0-9]*)\s*(\(|\b)")


def _split_words(text: str) -> List[str]:
    return [w for w in re.split(r"\s+", text.strip()) if w]


def _match_directive(words: List[str]) -> Tuple[Optional[Type[OMPExecutableDirective]], int, str]:
    """Match the longest known directive prefix.

    Returns (node class or None, number of words consumed, directive name).
    """
    best: Optional[Tuple[str, ...]] = None
    for key in DIRECTIVE_TABLE:
        if len(key) <= len(words) and tuple(words[: len(key)]) == key:
            if best is None or len(key) > len(best):
                best = key
    if best is None:
        return None, 0, ""
    return DIRECTIVE_TABLE[best], len(best), " ".join(best)


def _extract_balanced(text: str, start: int) -> Tuple[str, int]:
    """Extract the contents of a balanced parenthesis group starting at *start*.

    ``text[start]`` must be ``(``; the returned index points just past the
    closing parenthesis.
    """
    depth = 0
    for i in range(start, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[start + 1 : i], i + 1
    raise PragmaError(f"unbalanced parentheses in clause arguments: {text!r}")


def parse_clauses(text: str,
                  location: Tuple[int, int] = (0, 0)) -> List[OMPClause]:
    """Parse the clause portion of a pragma line into ``OMPClause`` nodes.

    Clause nodes (and their eagerly-evaluated integer arguments) inherit the
    *location* of the pragma line so every OpenMP AST node carries a source
    anchor.
    """
    clauses: List[OMPClause] = []
    pos = 0
    length = len(text)
    while pos < length:
        ch = text[pos]
        if ch.isspace() or ch == ",":
            pos += 1
            continue
        match = _CLAUSE_RE.match(text, pos)
        if match is None:
            raise PragmaError(f"cannot parse clause near {text[pos:pos+20]!r}")
        name = match.group(1)
        pos = match.start(2) if match.group(2) == "(" else match.end()
        args_text = ""
        arg_nodes: List = []
        if pos < length and text[pos] == "(":
            args_text, pos = _extract_balanced(text, pos)
            if name in _INT_CLAUSES:
                stripped = args_text.strip()
                if re.fullmatch(r"\d+", stripped):
                    arg_nodes.append(IntegerLiteral(int(stripped), stripped,
                                                    location=location))
        clauses.append(OMPClause(name, arg_nodes, args_text.strip(),
                                 location=location))
    return clauses


def parse_omp_pragma(
    text: str,
    location: Tuple[int, int] = (0, 0),
) -> Tuple[Type[OMPExecutableDirective], str, List[OMPClause]]:
    """Parse a pragma body (text after ``#pragma``).

    Returns ``(directive class, directive name, clauses)``.  Raises
    :class:`PragmaError` when the pragma is not an ``omp`` pragma.
    """
    words = _split_words(text)
    if not words or words[0] != "omp":
        raise PragmaError(f"not an OpenMP pragma: {text!r}")
    rest_words = words[1:]
    cls, consumed, name = _match_directive(rest_words)
    if cls is None:
        # Unknown directive: take the first word as its name.
        if not rest_words:
            raise PragmaError("empty OpenMP pragma")
        name = rest_words[0]
        consumed = 1
        cls = OMPGenericDirective
    # Re-find the clause text in the original string so parentheses survive.
    clause_text = text
    # Strip "omp" and the directive words one at a time from the left.
    for word in ["omp"] + list(name.split()):
        clause_text = re.sub(r"^\s*" + re.escape(word) + r"\b", "", clause_text, count=1)
    clauses = parse_clauses(clause_text.strip(), location=location)
    return cls, name, clauses


def is_standalone(name: str) -> bool:
    """True when the directive does not capture a following statement."""
    return name in STANDALONE_DIRECTIVES


def build_directive(
    cls: Type[OMPExecutableDirective],
    name: str,
    clauses: List[OMPClause],
    body=None,
    location: Tuple[int, int] = (0, 0),
):
    """Instantiate the directive node, handling the generic fallback class."""
    if cls is OMPGenericDirective:
        return OMPGenericDirective(name, clauses, body, location=location)
    return cls(clauses, body, location=location)
