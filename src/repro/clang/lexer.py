"""Tokenizer for the C subset used by the ParaGraph benchmark kernels.

The original ParaGraph pipeline used Clang to parse OpenMP C/C++ kernels.
Clang is not available in this environment, so this module implements a
self-contained lexer producing a flat token stream that the recursive-descent
parser in :mod:`repro.clang.parser` consumes.

The lexer understands:

* identifiers and C keywords,
* integer / floating literals (decimal, hex, octal, exponents, suffixes),
* character and string literals with escape sequences,
* all C operators and punctuators used in expression/statement grammar,
* ``//`` and ``/* */`` comments (skipped),
* preprocessor lines: ``#pragma`` lines are emitted as :data:`TokenKind.PRAGMA`
  tokens carrying the raw pragma text (so OpenMP directives survive into the
  AST), every other ``#...`` line (``#include``, ``#define`` without use, …)
  is skipped.

Tokens carry their source location so the AST — and therefore ParaGraph —
can preserve the left-to-right token order required for ``NextToken`` edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Iterator, List, Optional


class LexError(Exception):
    """Raised when the source text cannot be tokenized."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} at line {line}, column {column}")
        self.line = line
        self.column = column


class TokenKind(Enum):
    """Classification of lexed tokens."""

    IDENTIFIER = auto()
    KEYWORD = auto()
    INT_LITERAL = auto()
    FLOAT_LITERAL = auto()
    CHAR_LITERAL = auto()
    STRING_LITERAL = auto()
    PUNCTUATOR = auto()
    PRAGMA = auto()
    EOF = auto()


#: Keywords of the supported C subset.  ``restrict`` and storage-class
#: specifiers are accepted so real benchmark sources parse unmodified.
KEYWORDS = frozenset(
    {
        "auto", "break", "case", "char", "const", "continue", "default", "do",
        "double", "else", "enum", "extern", "float", "for", "goto", "if",
        "inline", "int", "long", "register", "restrict", "return", "short",
        "signed", "sizeof", "static", "struct", "switch", "typedef", "union",
        "unsigned", "void", "volatile", "while", "_Bool", "bool", "size_t",
    }
)

#: Multi-character punctuators, longest first so maximal munch works.
_PUNCTUATORS = [
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
    "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
]


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes
    ----------
    kind:
        The token classification.
    text:
        The exact source spelling (for :data:`TokenKind.PRAGMA` tokens the
        text is the pragma body without the leading ``#pragma``).
    line, column:
        1-based source position of the first character.
    index:
        Position of the token in the token stream; used by downstream code to
        impose the ``NextToken`` ordering.
    """

    kind: TokenKind
    text: str
    line: int
    column: int
    index: int = 0

    def is_punct(self, text: str) -> bool:
        """Return True when this token is the given punctuator."""
        return self.kind is TokenKind.PUNCTUATOR and self.text == text

    def is_keyword(self, text: str) -> bool:
        """Return True when this token is the given keyword."""
        return self.kind is TokenKind.KEYWORD and self.text == text

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.column})"


class Lexer:
    """Stateful scanner over a source string.

    The public entry point is :meth:`tokenize`; :func:`tokenize` is the
    module-level convenience wrapper.
    """

    def __init__(self, source: str, filename: str = "<source>") -> None:
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1
        self._tokens: List[Token] = []

    # ------------------------------------------------------------------ #
    # low-level cursor helpers
    # ------------------------------------------------------------------ #
    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        if idx < len(self.source):
            return self.source[idx]
        return ""

    def _advance(self, count: int = 1) -> str:
        text = self.source[self.pos : self.pos + count]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return text

    def _at_end(self) -> bool:
        return self.pos >= len(self.source)

    def _error(self, message: str) -> LexError:
        return LexError(message, self.line, self.column)

    # ------------------------------------------------------------------ #
    # whitespace / comments / preprocessor
    # ------------------------------------------------------------------ #
    def _skip_trivia(self) -> Optional[Token]:
        """Skip whitespace and comments; return a PRAGMA token when one is found."""
        while not self._at_end():
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
                continue
            if ch == "/" and self._peek(1) == "/":
                while not self._at_end() and self._peek() != "\n":
                    self._advance()
                continue
            if ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while not self._at_end() and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self._at_end():
                    raise self._error("unterminated block comment")
                self._advance(2)
                continue
            if ch == "#":
                pragma = self._lex_preprocessor_line()
                if pragma is not None:
                    return pragma
                continue
            break
        return None

    def _lex_preprocessor_line(self) -> Optional[Token]:
        """Consume a ``#...`` line.

        ``#pragma`` lines become PRAGMA tokens; other directives are ignored.
        Line continuations (backslash-newline) are honoured.
        """
        line, column = self.line, self.column
        self._advance()  # '#'
        body_chars: List[str] = []
        while not self._at_end():
            ch = self._peek()
            if ch == "\\" and self._peek(1) == "\n":
                self._advance(2)
                body_chars.append(" ")
                continue
            if ch == "\n":
                break
            body_chars.append(ch)
            self._advance()
        body = "".join(body_chars).strip()
        if body.startswith("pragma"):
            text = body[len("pragma"):].strip()
            return Token(TokenKind.PRAGMA, text, line, column)
        return None

    # ------------------------------------------------------------------ #
    # literal scanners
    # ------------------------------------------------------------------ #
    def _lex_number(self) -> Token:
        line, column = self.line, self.column
        start = self.pos
        is_float = False
        src = self.source
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            while not self._at_end() and (self._peek() in "0123456789abcdefABCDEF"):
                self._advance()
        else:
            while not self._at_end() and self._peek().isdigit():
                self._advance()
            if self._peek() == "." and self._peek(1).isdigit():
                is_float = True
                self._advance()
                while not self._at_end() and self._peek().isdigit():
                    self._advance()
            elif self._peek() == ".":
                is_float = True
                self._advance()
            if self._peek() in "eE" and (
                self._peek(1).isdigit()
                or (self._peek(1) in "+-" and self._peek(2).isdigit())
            ):
                is_float = True
                self._advance()
                if self._peek() in "+-":
                    self._advance()
                while not self._at_end() and self._peek().isdigit():
                    self._advance()
        # suffixes
        while not self._at_end() and self._peek() in "uUlLfF":
            if self._peek() in "fF":
                is_float = True
            self._advance()
        text = src[start : self.pos]
        kind = TokenKind.FLOAT_LITERAL if is_float else TokenKind.INT_LITERAL
        return Token(kind, text, line, column)

    def _lex_identifier(self) -> Token:
        line, column = self.line, self.column
        start = self.pos
        while not self._at_end() and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        text = self.source[start : self.pos]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENTIFIER
        return Token(kind, text, line, column)

    def _lex_quoted(self, quote: str, kind: TokenKind) -> Token:
        line, column = self.line, self.column
        start = self.pos
        self._advance()  # opening quote
        while not self._at_end() and self._peek() != quote:
            if self._peek() == "\\":
                self._advance(2)
            else:
                if self._peek() == "\n":
                    raise self._error("unterminated literal")
                self._advance()
        if self._at_end():
            raise self._error("unterminated literal")
        self._advance()  # closing quote
        return Token(kind, self.source[start : self.pos], line, column)

    def _lex_punctuator(self) -> Token:
        line, column = self.line, self.column
        for punct in _PUNCTUATORS:
            if self.source.startswith(punct, self.pos):
                self._advance(len(punct))
                return Token(TokenKind.PUNCTUATOR, punct, line, column)
        raise self._error(f"unexpected character {self._peek()!r}")

    # ------------------------------------------------------------------ #
    # main loop
    # ------------------------------------------------------------------ #
    def _next_token(self) -> Token:
        pragma = self._skip_trivia()
        if pragma is not None:
            return pragma
        if self._at_end():
            return Token(TokenKind.EOF, "", self.line, self.column)
        ch = self._peek()
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._lex_number()
        if ch.isalpha() or ch == "_":
            return self._lex_identifier()
        if ch == '"':
            return self._lex_quoted('"', TokenKind.STRING_LITERAL)
        if ch == "'":
            return self._lex_quoted("'", TokenKind.CHAR_LITERAL)
        return self._lex_punctuator()

    def tokenize(self) -> List[Token]:
        """Tokenize the whole source, returning tokens ending with EOF."""
        tokens: List[Token] = []
        while True:
            token = self._next_token()
            token = Token(
                token.kind, token.text, token.line, token.column, index=len(tokens)
            )
            tokens.append(token)
            if token.kind is TokenKind.EOF:
                break
        self._tokens = tokens
        return tokens

    def __iter__(self) -> Iterator[Token]:  # pragma: no cover - convenience
        return iter(self.tokenize())


def tokenize(source: str, filename: str = "<source>") -> List[Token]:
    """Tokenize *source* and return the token list (terminated by EOF)."""
    return Lexer(source, filename).tokenize()
