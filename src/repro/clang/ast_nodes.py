"""Clang-style AST node classes.

ParaGraph (paper §III) is built on top of the Clang AST: nodes keep their
Clang spelling (``CompoundStmt``, ``ForStmt``, ``BinaryOperator``,
``DeclRefExpr`` …) so that the graphs produced here are structurally
equivalent to the graphs the original pipeline obtained from Clang for the
same kernels.

Every node derives from :class:`ASTNode` which provides:

* ``kind`` — the Clang node name used as the node label in ParaGraph,
* ``children`` — ordered child list (AST / ``Child`` edges, and the source of
  the ``NextSib`` ordering),
* ``spelling`` — the token / name text for terminal nodes,
* ``location`` — (line, column) of the defining token,
* ``token_index`` — the lexer token index for terminals, used to impose the
  left-to-right ``NextToken`` ordering,
* ``parent`` — back pointer filled in by :func:`set_parents`.

Node identity (``id(node)``) is used as the graph vertex key; nodes are
deliberately *not* value-comparable.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple


class ASTNode:
    """Base class for every AST node."""

    #: Nodes whose ``spelling`` is a literal/identifier and which never have
    #: children are *syntax tokens* in the paper's terminology.
    is_terminal_kind = False

    def __init__(
        self,
        children: Optional[Sequence[Optional["ASTNode"]]] = None,
        spelling: str = "",
        location: Tuple[int, int] = (0, 0),
        token_index: int = -1,
    ) -> None:
        self.children: List[ASTNode] = [c for c in (children or []) if c is not None]
        self.spelling = spelling
        self.location = location
        self.token_index = token_index
        self.parent: Optional[ASTNode] = None

    # ------------------------------------------------------------------ #
    @property
    def kind(self) -> str:
        """Clang-style node kind name (the class name)."""
        return type(self).__name__

    @property
    def is_terminal(self) -> bool:
        """True for syntax tokens (no children)."""
        return len(self.children) == 0 and self.is_terminal_kind

    def add_child(self, node: Optional["ASTNode"]) -> None:
        """Append a child node (``None`` children are dropped)."""
        if node is not None:
            self.children.append(node)

    def replace_child(self, old: "ASTNode", new: "ASTNode") -> None:
        """Replace an existing child in place (used by the cast-insertion pass)."""
        for i, child in enumerate(self.children):
            if child is old:
                self.children[i] = new
                return
        raise ValueError("node is not a child of this parent")

    def walk(self) -> Iterator["ASTNode"]:
        """Pre-order traversal of this subtree (including ``self``)."""
        stack: List[ASTNode] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def find_all(self, kind: str) -> List["ASTNode"]:
        """Return every descendant (including self) whose kind matches."""
        return [n for n in self.walk() if n.kind == kind]

    def __repr__(self) -> str:
        extra = f" {self.spelling!r}" if self.spelling else ""
        return f"<{self.kind}{extra} children={len(self.children)}>"


def set_parents(root: ASTNode) -> ASTNode:
    """Fill in ``parent`` back-pointers for an entire tree and return *root*."""
    for node in root.walk():
        for child in node.children:
            child.parent = node
    root.parent = None
    return root


# ---------------------------------------------------------------------- #
# Declarations
# ---------------------------------------------------------------------- #
class TranslationUnitDecl(ASTNode):
    """Root of a parsed source file."""


class FunctionDecl(ASTNode):
    """A function definition or declaration.

    Children: the parameter ``ParmVarDecl`` nodes followed by the body
    ``CompoundStmt`` (when it is a definition).
    """

    def __init__(self, name: str, return_type: str, params, body=None, **kw) -> None:
        children = list(params) + ([body] if body is not None else [])
        super().__init__(children, spelling=name, **kw)
        self.name = name
        self.return_type = return_type
        self.params = list(params)
        self.body = body


class ParmVarDecl(ASTNode):
    """A function parameter declaration."""

    is_terminal_kind = True

    def __init__(self, name: str, type_name: str, **kw) -> None:
        super().__init__(None, spelling=name, **kw)
        self.name = name
        self.type_name = type_name


class VarDecl(ASTNode):
    """A variable declaration; the initializer (if any) is the only child."""

    def __init__(self, name: str, type_name: str, init=None, array_dims=None, **kw) -> None:
        super().__init__([init] if init is not None else None, spelling=name, **kw)
        self.name = name
        self.type_name = type_name
        self.init = init
        #: expressions giving array dimensions, e.g. ``double a[N][M]``.
        self.array_dims: List[ASTNode] = list(array_dims or [])
        for dim in self.array_dims:
            self.add_child(dim)

    @property
    def is_terminal(self) -> bool:  # VarDecl with no init acts as a token
        return len(self.children) == 0


# ---------------------------------------------------------------------- #
# Statements
# ---------------------------------------------------------------------- #
class CompoundStmt(ASTNode):
    """A ``{ ... }`` block."""


class DeclStmt(ASTNode):
    """A declaration statement wrapping one or more ``VarDecl`` children."""


class NullStmt(ASTNode):
    """An empty statement (lone ``;``)."""

    is_terminal_kind = True


class IfStmt(ASTNode):
    """An if statement.

    Children (in order): condition, then-branch, optional else-branch —
    exactly the three children the paper's ``ConTrue`` / ``ConFalse`` edges
    connect.
    """

    def __init__(self, cond, then_branch, else_branch=None, **kw) -> None:
        super().__init__([cond, then_branch, else_branch], **kw)
        self.cond = cond
        self.then_branch = then_branch
        self.else_branch = else_branch


class ForStmt(ASTNode):
    """A for loop.

    Children (in order): init, condition, body, increment.

    .. note::
       Clang orders the children ``init, cond, inc, body``; the paper's
       Fig. 2 and the ``ForExec`` / ``ForNext`` edge description number them
       *init (1), condition (2), body (3), modifier (4)*.  We follow the
       paper's ordering because the ParaGraph builder's edge construction is
       specified in those terms; only the relative order of body/increment
       differs and no downstream consumer depends on Clang's order.
    """

    def __init__(self, init, cond, body, inc, **kw) -> None:
        super().__init__([init, cond, body, inc], **kw)
        self.init = init
        self.cond = cond
        self.body = body
        self.inc = inc


class WhileStmt(ASTNode):
    """A while loop: children are condition and body."""

    def __init__(self, cond, body, **kw) -> None:
        super().__init__([cond, body], **kw)
        self.cond = cond
        self.body = body


class DoStmt(ASTNode):
    """A do-while loop: children are body and condition."""

    def __init__(self, body, cond, **kw) -> None:
        super().__init__([body, cond], **kw)
        self.body = body
        self.cond = cond


class ReturnStmt(ASTNode):
    """A return statement with an optional value child."""

    def __init__(self, value=None, **kw) -> None:
        super().__init__([value] if value is not None else None, **kw)
        self.value = value


class BreakStmt(ASTNode):
    is_terminal_kind = True


class ContinueStmt(ASTNode):
    is_terminal_kind = True


# ---------------------------------------------------------------------- #
# Expressions
# ---------------------------------------------------------------------- #
class Expr(ASTNode):
    """Base class for expression nodes."""


class BinaryOperator(Expr):
    """A binary (or assignment) operator; ``opcode`` holds the spelling."""

    def __init__(self, opcode: str, lhs, rhs, **kw) -> None:
        super().__init__([lhs, rhs], spelling=opcode, **kw)
        self.opcode = opcode
        self.lhs = lhs
        self.rhs = rhs

    @property
    def is_assignment(self) -> bool:
        return self.opcode in {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}


class CompoundAssignOperator(BinaryOperator):
    """Compound assignments such as ``+=`` (kept distinct, as Clang does)."""


class UnaryOperator(Expr):
    """A unary operator (prefix or postfix)."""

    def __init__(self, opcode: str, operand, prefix: bool = True, **kw) -> None:
        super().__init__([operand], spelling=opcode, **kw)
        self.opcode = opcode
        self.operand = operand
        self.prefix = prefix


class ConditionalOperator(Expr):
    """The ternary ``?:`` operator with cond/true/false children."""

    def __init__(self, cond, true_expr, false_expr, **kw) -> None:
        super().__init__([cond, true_expr, false_expr], **kw)
        self.cond = cond
        self.true_expr = true_expr
        self.false_expr = false_expr


class CallExpr(Expr):
    """A call expression; children are the callee reference then arguments."""

    def __init__(self, callee, args, **kw) -> None:
        super().__init__([callee] + list(args), **kw)
        self.callee = callee
        self.args = list(args)


class ArraySubscriptExpr(Expr):
    """``base[index]`` with the base and index as children."""

    def __init__(self, base, index, **kw) -> None:
        super().__init__([base, index], **kw)
        self.base = base
        self.index = index


class MemberExpr(Expr):
    """``base.member`` or ``base->member``."""

    def __init__(self, base, member: str, is_arrow: bool, **kw) -> None:
        super().__init__([base], spelling=member, **kw)
        self.base = base
        self.member = member
        self.is_arrow = is_arrow


class DeclRefExpr(Expr):
    """A reference to a declared variable or function.

    Terminal node; :mod:`repro.clang.semantics` resolves ``referenced_decl``
    so the ParaGraph builder can add ``Ref`` edges back to the declaration.
    """

    is_terminal_kind = True

    def __init__(self, name: str, **kw) -> None:
        super().__init__(None, spelling=name, **kw)
        self.name = name
        self.referenced_decl: Optional[ASTNode] = None


class IntegerLiteral(Expr):
    is_terminal_kind = True

    def __init__(self, value: int, text: str = "", **kw) -> None:
        super().__init__(None, spelling=text or str(value), **kw)
        self.value = value


class FloatingLiteral(Expr):
    is_terminal_kind = True

    def __init__(self, value: float, text: str = "", **kw) -> None:
        super().__init__(None, spelling=text or repr(value), **kw)
        self.value = value


class CharacterLiteral(Expr):
    is_terminal_kind = True

    def __init__(self, text: str, **kw) -> None:
        super().__init__(None, spelling=text, **kw)


class StringLiteral(Expr):
    is_terminal_kind = True

    def __init__(self, text: str, **kw) -> None:
        super().__init__(None, spelling=text, **kw)


class ParenExpr(Expr):
    """A parenthesized sub-expression."""

    def __init__(self, inner, **kw) -> None:
        super().__init__([inner], **kw)
        self.inner = inner


class ImplicitCastExpr(Expr):
    """An lvalue-to-rvalue (or similar) implicit conversion.

    Clang inserts these around ``DeclRefExpr`` nodes used as rvalues; the
    paper's Fig. 2 shows them explicitly, so the semantics pass reproduces
    the insertion (:func:`repro.clang.semantics.insert_implicit_casts`).
    """

    def __init__(self, operand, cast_kind: str = "LValueToRValue", **kw) -> None:
        super().__init__([operand], spelling=cast_kind, **kw)
        self.operand = operand
        self.cast_kind = cast_kind


class CStyleCastExpr(Expr):
    """An explicit ``(type) expr`` cast."""

    def __init__(self, type_name: str, operand, **kw) -> None:
        super().__init__([operand], spelling=type_name, **kw)
        self.type_name = type_name
        self.operand = operand


class SizeOfExpr(Expr):
    """``sizeof(type)`` or ``sizeof expr``."""

    def __init__(self, argument=None, type_name: str = "", **kw) -> None:
        super().__init__([argument] if argument is not None else None,
                         spelling=type_name, **kw)
        self.type_name = type_name
        self.argument = argument


class InitListExpr(Expr):
    """A brace-enclosed initializer list."""

    def __init__(self, inits, **kw) -> None:
        super().__init__(list(inits), **kw)
        self.inits = list(inits)


# ---------------------------------------------------------------------- #
# OpenMP
# ---------------------------------------------------------------------- #
class OMPClause(ASTNode):
    """An OpenMP clause such as ``collapse(2)`` or ``map(to: a[0:n])``.

    Children are the clause argument expressions (when parseable).
    ``clause_name`` is the clause keyword, ``arguments_text`` the raw textual
    arguments (kept for clauses like ``map`` whose arguments are not plain C
    expressions).
    """

    def __init__(self, clause_name: str, args=None, arguments_text: str = "", **kw) -> None:
        super().__init__(list(args or []), spelling=clause_name, **kw)
        self.clause_name = clause_name
        self.arguments_text = arguments_text


class OMPExecutableDirective(ASTNode):
    """Base class for OpenMP directives attached to a statement.

    Children are the clauses followed by the associated (captured) statement.
    """

    directive_name = "omp"

    def __init__(self, clauses, body=None, **kw) -> None:
        super().__init__(list(clauses) + ([body] if body is not None else None or []),
                         spelling=self.directive_name, **kw)
        self.clauses: List[OMPClause] = list(clauses)
        self.body = body

    def clause(self, name: str) -> Optional[OMPClause]:
        """Return the first clause with the given name, or None."""
        for clause in self.clauses:
            if clause.clause_name == name:
                return clause
        return None

    def clause_int(self, name: str, default: Optional[int] = None) -> Optional[int]:
        """Return the integer argument of a clause like ``collapse(2)``."""
        clause = self.clause(name)
        if clause is None:
            return default
        for child in clause.children:
            if isinstance(child, IntegerLiteral):
                return child.value
        text = clause.arguments_text.strip()
        try:
            return int(text)
        except ValueError:
            return default


class OMPParallelForDirective(OMPExecutableDirective):
    directive_name = "parallel for"


class OMPParallelDirective(OMPExecutableDirective):
    directive_name = "parallel"


class OMPForDirective(OMPExecutableDirective):
    directive_name = "for"


class OMPSimdDirective(OMPExecutableDirective):
    directive_name = "simd"


class OMPTargetDirective(OMPExecutableDirective):
    directive_name = "target"


class OMPTargetDataDirective(OMPExecutableDirective):
    directive_name = "target data"


class OMPTargetEnterDataDirective(OMPExecutableDirective):
    directive_name = "target enter data"


class OMPTargetExitDataDirective(OMPExecutableDirective):
    directive_name = "target exit data"


class OMPTargetUpdateDirective(OMPExecutableDirective):
    directive_name = "target update"


class OMPTeamsDistributeParallelForDirective(OMPExecutableDirective):
    directive_name = "teams distribute parallel for"


class OMPTargetTeamsDistributeParallelForDirective(OMPExecutableDirective):
    directive_name = "target teams distribute parallel for"


class OMPCriticalDirective(OMPExecutableDirective):
    directive_name = "critical"


class OMPAtomicDirective(OMPExecutableDirective):
    directive_name = "atomic"


class OMPBarrierDirective(OMPExecutableDirective):
    directive_name = "barrier"


class OMPGenericDirective(OMPExecutableDirective):
    """Fallback for directives without a dedicated class."""

    def __init__(self, name: str, clauses, body=None, **kw) -> None:
        self.directive_name = name
        super().__init__(clauses, body, **kw)


#: Kinds treated as loop constructs when computing edge weights.
LOOP_KINDS = frozenset({"ForStmt", "WhileStmt", "DoStmt"})

#: Kinds of OpenMP directives that parallelize the associated loop nest.
OMP_LOOP_DIRECTIVE_KINDS = frozenset(
    {
        "OMPParallelForDirective",
        "OMPForDirective",
        "OMPTeamsDistributeParallelForDirective",
        "OMPTargetTeamsDistributeParallelForDirective",
        "OMPSimdDirective",
    }
)
