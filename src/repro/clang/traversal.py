"""Traversal utilities over the Clang-style AST.

These helpers give the rest of the library a uniform way to walk the tree:

* :class:`ASTVisitor` — classic ``visit_<Kind>`` dispatch,
* :func:`preorder` / :func:`postorder` — generator traversals,
* :func:`terminals_in_token_order` — the syntax tokens sorted left-to-right,
  used for the ``NextToken`` edges,
* :func:`iter_loops`, :func:`iter_omp_directives`, :func:`loop_nest_depth` —
  structural queries used by the OpenMP-Advisor substitute and the hardware
  simulator.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Tuple

from .ast_nodes import (
    ASTNode,
    ForStmt,
    LOOP_KINDS,
    OMPExecutableDirective,
)


class ASTVisitor:
    """Dispatching visitor: override ``visit_<Kind>`` methods as needed.

    ``generic_visit`` recurses into children; each specific visitor is
    responsible for calling it (or not) to control the traversal.
    """

    def visit(self, node: ASTNode):
        method = getattr(self, f"visit_{node.kind}", None)
        if method is not None:
            return method(node)
        return self.generic_visit(node)

    def generic_visit(self, node: ASTNode):
        for child in node.children:
            self.visit(child)
        return None


def preorder(root: ASTNode) -> Iterator[ASTNode]:
    """Yield nodes parent-before-children, siblings left-to-right."""
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children))


def postorder(root: ASTNode) -> Iterator[ASTNode]:
    """Yield nodes children-before-parent."""
    stack: List[Tuple[ASTNode, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            yield node
            continue
        stack.append((node, True))
        stack.extend((child, False) for child in reversed(node.children))


def count_nodes(root: ASTNode, predicate: Optional[Callable[[ASTNode], bool]] = None) -> int:
    """Count nodes in the subtree, optionally filtered by *predicate*."""
    if predicate is None:
        return sum(1 for _ in preorder(root))
    return sum(1 for node in preorder(root) if predicate(node))


def terminals_in_token_order(root: ASTNode) -> List[ASTNode]:
    """Return the syntax-token nodes in source (left-to-right) order.

    Terminal nodes carry the lexer token index; nodes without one (synthetic
    nodes) keep their pre-order position, which preserves a stable order.
    """
    terminals: List[Tuple[int, int, ASTNode]] = []
    for order, node in enumerate(preorder(root)):
        if node.is_terminal:
            key = node.token_index if node.token_index >= 0 else 10**9 + order
            terminals.append((key, order, node))
    terminals.sort(key=lambda item: (item[0], item[1]))
    return [node for _, _, node in terminals]


def iter_loops(root: ASTNode) -> Iterator[ASTNode]:
    """Yield every loop statement (for/while/do) in pre-order."""
    for node in preorder(root):
        if node.kind in LOOP_KINDS:
            yield node


def iter_for_loops(root: ASTNode) -> Iterator[ForStmt]:
    """Yield every ``ForStmt`` in pre-order."""
    for node in preorder(root):
        if isinstance(node, ForStmt):
            yield node


def iter_omp_directives(root: ASTNode) -> Iterator[OMPExecutableDirective]:
    """Yield every OpenMP directive node in pre-order."""
    for node in preorder(root):
        if isinstance(node, OMPExecutableDirective):
            yield node


def enclosing_loops(node: ASTNode) -> List[ASTNode]:
    """Return the chain of loop ancestors of *node*, outermost first."""
    chain: List[ASTNode] = []
    current = node.parent
    while current is not None:
        if current.kind in LOOP_KINDS:
            chain.append(current)
        current = current.parent
    chain.reverse()
    return chain


def loop_nest_depth(root: ASTNode) -> int:
    """Maximum depth of nested loops in the subtree."""
    best = 0

    def visit(node: ASTNode, depth: int) -> None:
        nonlocal best
        if node.kind in LOOP_KINDS:
            depth += 1
            best = max(best, depth)
        for child in node.children:
            visit(child, depth)

    visit(root, 0)
    return best


def perfectly_nested_for_loops(loop: ForStmt) -> List[ForStmt]:
    """Return the chain of perfectly-nested for loops rooted at *loop*.

    A nest is perfect when each loop body contains exactly one statement and
    that statement is itself a ``ForStmt`` (possibly via a single-statement
    compound).  This determines how many levels ``collapse(n)`` may legally
    cover, which is what the variant generator needs.
    """
    chain = [loop]
    current = loop
    while True:
        body = current.body
        statements = body.children if body is not None else []
        if len(statements) == 1 and isinstance(statements[0], ForStmt):
            current = statements[0]
            chain.append(current)
            continue
        break
    return chain
