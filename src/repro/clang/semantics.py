"""Semantic passes over the Clang-style AST.

Three passes are implemented, mirroring the pieces of Clang's semantic
analysis that ParaGraph actually depends on:

* :func:`resolve_references` — scoped symbol-table resolution that links every
  ``DeclRefExpr`` to its declaring ``VarDecl`` / ``ParmVarDecl`` /
  ``FunctionDecl``; this is what makes ``Ref`` edges possible.
* :func:`insert_implicit_casts` — wraps ``DeclRefExpr`` nodes used as rvalues
  in ``ImplicitCastExpr`` nodes, reproducing the Clang AST shape shown in
  Fig. 2 of the paper.
* :func:`evaluate_constant` / :func:`ConstantEnvironment` — a small constant
  folder used to extract loop trip counts for the edge-weight computation and
  array sizes for the data-transfer model.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from .ast_nodes import (
    ASTNode,
    ArraySubscriptExpr,
    BinaryOperator,
    CStyleCastExpr,
    CallExpr,
    CompoundStmt,
    ConditionalOperator,
    DeclRefExpr,
    DeclStmt,
    FloatingLiteral,
    ForStmt,
    FunctionDecl,
    IfStmt,
    ImplicitCastExpr,
    IntegerLiteral,
    ParenExpr,
    ParmVarDecl,
    SizeOfExpr,
    UnaryOperator,
    VarDecl,
    set_parents,
)

Number = Union[int, float]


class SemanticError(Exception):
    """Raised by strict resolution when a reference cannot be bound.

    The message carries the ``line:column`` of the offending reference so
    users (and the :mod:`repro.analysis` checkers) get a source anchor.
    """

    def __init__(self, message: str, location: tuple = (0, 0)) -> None:
        line, column = location
        if line or column:
            message = f"{message} (at line {line}, column {column})"
        super().__init__(message)
        self.location = (line, column)


# ---------------------------------------------------------------------- #
# scoped symbol table
# ---------------------------------------------------------------------- #
class Scope:
    """A lexical scope in the symbol table chain."""

    def __init__(self, parent: Optional["Scope"] = None) -> None:
        self.parent = parent
        self.symbols: Dict[str, ASTNode] = {}

    def declare(self, name: str, node: ASTNode) -> None:
        self.symbols[name] = node

    def lookup(self, name: str) -> Optional[ASTNode]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None


def _declare_node(scope: Scope, node: ASTNode) -> None:
    if isinstance(node, (VarDecl, ParmVarDecl)):
        scope.declare(node.spelling, node)
    elif isinstance(node, FunctionDecl):
        scope.declare(node.name, node)


def resolve_references(root: ASTNode, strict: bool = False) -> int:
    """Bind every ``DeclRefExpr`` to its declaration.

    Returns the number of references that were successfully resolved.  With
    ``strict=True`` an unresolved reference raises :class:`SemanticError`
    (library calls such as ``sqrt`` stay unresolved in non-strict mode, which
    matches Clang producing a reference to an implicitly declared function).
    """
    resolved = 0

    def visit(node: ASTNode, scope: Scope) -> int:
        nonlocal resolved
        if isinstance(node, FunctionDecl):
            _declare_node(scope, node)
            inner = Scope(scope)
            for param in node.params:
                _declare_node(inner, param)
            for child in node.children:
                if child not in node.params:
                    visit(child, inner)
            return resolved
        if isinstance(node, (CompoundStmt, ForStmt)):
            inner = Scope(scope)
            for child in node.children:
                visit(child, inner)
            return resolved
        if isinstance(node, DeclStmt):
            for child in node.children:
                visit(child, scope)
                _declare_node(scope, child)
            return resolved
        if isinstance(node, VarDecl):
            for child in node.children:
                visit(child, scope)
            _declare_node(scope, node)
            return resolved
        if isinstance(node, DeclRefExpr):
            decl = scope.lookup(node.name)
            if decl is not None:
                node.referenced_decl = decl
                resolved += 1
            elif strict:
                raise SemanticError(f"unresolved reference to {node.name!r}",
                                    location=node.location)
            return resolved
        for child in node.children:
            visit(child, scope)
        return resolved

    visit(root, Scope())
    return resolved


# ---------------------------------------------------------------------- #
# implicit cast insertion
# ---------------------------------------------------------------------- #
def _needs_cast(node: DeclRefExpr) -> bool:
    """Decide whether a DeclRefExpr is used as an rvalue."""
    parent = node.parent
    if parent is None:
        return False
    if isinstance(parent, BinaryOperator) and parent.is_assignment and parent.lhs is node:
        return False
    if isinstance(parent, UnaryOperator) and parent.opcode in {"&", "++", "--"}:
        return False
    if isinstance(parent, CallExpr) and parent.callee is node:
        return False
    if isinstance(parent, ArraySubscriptExpr) and parent.base is node:
        # the array base decays to a pointer; Clang emits an ArrayToPointer
        # cast, which we also model.
        return True
    if isinstance(parent, ImplicitCastExpr):
        return False
    return True


def insert_implicit_casts(root: ASTNode) -> int:
    """Wrap rvalue ``DeclRefExpr`` uses in ``ImplicitCastExpr`` nodes.

    Returns the number of casts inserted.  The tree's parent pointers are
    refreshed afterwards.
    """
    set_parents(root)
    inserted = 0
    for node in list(root.walk()):
        if not isinstance(node, DeclRefExpr):
            continue
        if not _needs_cast(node):
            continue
        parent = node.parent
        if parent is None:
            continue
        is_array_base = isinstance(parent, ArraySubscriptExpr) and parent.base is node
        cast_kind = "ArrayToPointerDecay" if is_array_base else "LValueToRValue"
        cast = ImplicitCastExpr(node, cast_kind, location=node.location,
                                token_index=node.token_index)
        parent.replace_child(node, cast)
        # keep the structured accessors in sync with the children list
        for attr in ("lhs", "rhs", "operand", "cond", "base", "index", "init",
                     "inc", "body", "callee", "true_expr", "false_expr", "inner",
                     "value", "then_branch", "else_branch"):
            if getattr(parent, attr, None) is node:
                setattr(parent, attr, cast)
        if isinstance(parent, CallExpr):
            parent.args = [cast if a is node else a for a in parent.args]
        inserted += 1
    set_parents(root)
    return inserted


# ---------------------------------------------------------------------- #
# constant folding
# ---------------------------------------------------------------------- #
class ConstantEnvironment:
    """Maps variable names to known compile-time values.

    ParaGraph computes loop-iteration counts statically; for loops bounded by
    a problem-size variable (``for (i = 0; i < N; i++)``) the bound is taken
    from this environment, which the data pipeline fills with the kernel's
    problem-size parameters.
    """

    def __init__(self, values: Optional[Mapping[str, Number]] = None) -> None:
        self.values: Dict[str, Number] = dict(values or {})

    def get(self, name: str) -> Optional[Number]:
        return self.values.get(name)

    def with_values(self, extra: Mapping[str, Number]) -> "ConstantEnvironment":
        merged = dict(self.values)
        merged.update(extra)
        return ConstantEnvironment(merged)

    def __contains__(self, name: str) -> bool:
        return name in self.values

    def __repr__(self) -> str:  # pragma: no cover
        return f"ConstantEnvironment({self.values!r})"


_FOLDABLE_BINOPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    # ``//`` / ``%`` raise ZeroDivisionError on a zero denominator, which
    # evaluate_constant turns into "not statically evaluable" (None) — a
    # folded ``x / 0`` must never pretend to be 0.
    "/": lambda a, b: a / b if isinstance(a, float) or isinstance(b, float) else a // b,
    "%": lambda a, b: a % b,
    "<<": lambda a, b: int(a) << int(b),
    ">>": lambda a, b: int(a) >> int(b),
    "<": lambda a, b: int(a < b),
    ">": lambda a, b: int(a > b),
    "<=": lambda a, b: int(a <= b),
    ">=": lambda a, b: int(a >= b),
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "&&": lambda a, b: int(bool(a) and bool(b)),
    "||": lambda a, b: int(bool(a) or bool(b)),
    "&": lambda a, b: int(a) & int(b),
    "|": lambda a, b: int(a) | int(b),
    "^": lambda a, b: int(a) ^ int(b),
}


def evaluate_constant(
    node: Optional[ASTNode],
    env: Optional[ConstantEnvironment] = None,
) -> Optional[Number]:
    """Try to evaluate *node* to a numeric constant.

    Returns ``None`` when the expression is not statically evaluable with the
    provided environment.
    """
    if node is None:
        return None
    env = env or ConstantEnvironment()
    if isinstance(node, IntegerLiteral):
        return node.value
    if isinstance(node, FloatingLiteral):
        return node.value
    if isinstance(node, (ParenExpr, ImplicitCastExpr, CStyleCastExpr)):
        return evaluate_constant(node.children[0] if node.children else None, env)
    if isinstance(node, DeclRefExpr):
        value = env.get(node.name)
        if value is not None:
            return value
        decl = node.referenced_decl
        if isinstance(decl, VarDecl) and decl.init is not None:
            return evaluate_constant(decl.init, env)
        return None
    if isinstance(node, UnaryOperator):
        value = evaluate_constant(node.operand, env)
        if value is None:
            return None
        if node.opcode == "-":
            return -value
        if node.opcode == "+":
            return value
        if node.opcode == "!":
            return int(not value)
        if node.opcode == "~":
            return ~int(value)
        return None
    if isinstance(node, BinaryOperator):
        lhs = evaluate_constant(node.lhs, env)
        rhs = evaluate_constant(node.rhs, env)
        if lhs is None or rhs is None:
            return None
        folder = _FOLDABLE_BINOPS.get(node.opcode)
        if folder is None:
            return None
        try:
            return folder(lhs, rhs)
        except ZeroDivisionError:
            return None
    if isinstance(node, ConditionalOperator):
        cond = evaluate_constant(node.cond, env)
        if cond is None:
            return None
        branch = node.true_expr if cond else node.false_expr
        return evaluate_constant(branch, env)
    if isinstance(node, SizeOfExpr):
        sizes = {"char": 1, "short": 2, "int": 4, "float": 4, "long": 8,
                 "double": 8, "size_t": 8}
        for name, size in sizes.items():
            if name in node.type_name:
                return size
        return 8
    return None


# ---------------------------------------------------------------------- #
# loop trip-count analysis
# ---------------------------------------------------------------------- #
def loop_counter_name(loop: ForStmt) -> Optional[str]:
    """Return the induction-variable name of a canonical for loop."""
    init = loop.init
    if isinstance(init, DeclStmt) and init.children:
        first = init.children[0]
        if isinstance(first, VarDecl):
            return first.name
    node: Optional[ASTNode] = init
    if isinstance(node, BinaryOperator) and node.is_assignment:
        target = node.lhs
        while isinstance(target, (ImplicitCastExpr, ParenExpr)):
            target = target.children[0]
        if isinstance(target, DeclRefExpr):
            return target.name
    return None


def _initial_value(loop: ForStmt, env: ConstantEnvironment) -> Optional[Number]:
    init = loop.init
    if isinstance(init, DeclStmt) and init.children:
        first = init.children[0]
        if isinstance(first, VarDecl):
            return evaluate_constant(first.init, env)
    if isinstance(init, BinaryOperator) and init.is_assignment:
        return evaluate_constant(init.rhs, env)
    return None


def _bound_and_op(loop: ForStmt, counter: str, env: ConstantEnvironment):
    cond = loop.cond
    while isinstance(cond, (ParenExpr, ImplicitCastExpr)):
        cond = cond.children[0]
    if not isinstance(cond, BinaryOperator):
        return None, None
    lhs, rhs, op = cond.lhs, cond.rhs, cond.opcode

    def base_name(expr: ASTNode) -> Optional[str]:
        while isinstance(expr, (ImplicitCastExpr, ParenExpr)):
            expr = expr.children[0]
        return expr.name if isinstance(expr, DeclRefExpr) else None

    if base_name(lhs) == counter:
        return evaluate_constant(rhs, env), op
    if base_name(rhs) == counter:
        flipped = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}.get(op, op)
        return evaluate_constant(lhs, env), flipped
    return None, None


def _step(loop: ForStmt, counter: str, env: ConstantEnvironment) -> Optional[Number]:
    inc = loop.inc
    while isinstance(inc, (ParenExpr,)):
        inc = inc.children[0]
    if isinstance(inc, UnaryOperator) and inc.opcode in {"++", "--"}:
        return 1 if inc.opcode == "++" else -1
    if isinstance(inc, BinaryOperator):
        if inc.opcode in {"+=", "-="}:
            step = evaluate_constant(inc.rhs, env)
            if step is None:
                return None
            return step if inc.opcode == "+=" else -step
        if inc.opcode == "=" :
            rhs = inc.rhs
            while isinstance(rhs, (ParenExpr, ImplicitCastExpr)):
                rhs = rhs.children[0]
            if isinstance(rhs, BinaryOperator) and rhs.opcode in {"+", "-"}:
                step = evaluate_constant(rhs.rhs, env)
                if step is None:
                    return None
                return step if rhs.opcode == "+" else -step
    return None


def estimate_trip_count(
    loop: ForStmt,
    env: Optional[ConstantEnvironment] = None,
    default: int = 1,
) -> int:
    """Statically estimate the number of iterations of a ``for`` loop.

    The analysis handles the canonical OpenMP loop forms
    ``for (i = a; i (<|<=|>|>=) b; i (++|--|+=c|-=c))``.  When the bounds are
    not statically known the *default* is returned — the paper applies the
    same idea ("we first observe the number of iterations in a loop"), with
    the problem size supplied by the dataset generator.
    """
    env = env or ConstantEnvironment()
    counter = loop_counter_name(loop)
    if counter is None:
        return default
    start = _initial_value(loop, env)
    bound, op = _bound_and_op(loop, counter, env)
    step = _step(loop, counter, env)
    if start is None or bound is None or step is None or op is None or step == 0:
        return default
    if op in {"<", "<="} and step > 0:
        span = bound - start + (1 if op == "<=" else 0)
    elif op in {">", ">="} and step < 0:
        span = start - bound + (1 if op == ">=" else 0)
        step = -step
    else:
        return default
    if span <= 0:
        return 0
    trips = int((span + step - 1) // step)
    return max(trips, 0)


def counter_range(
    loop: ForStmt,
    env: Optional[ConstantEnvironment] = None,
) -> Optional[Tuple[int, int]]:
    """Statically bound the induction variable of a canonical ``for`` loop.

    Returns ``(minimum, maximum)`` — the inclusive range of values the
    counter takes *inside the loop body* — or ``None`` when the loop is not
    in canonical form or its bounds are not statically known.  The array
    bounds checker uses this to compare a subscript's reachable values
    against the declared array extent.
    """
    env = env or ConstantEnvironment()
    counter = loop_counter_name(loop)
    if counter is None:
        return None
    start = _initial_value(loop, env)
    bound, op = _bound_and_op(loop, counter, env)
    step = _step(loop, counter, env)
    if start is None or bound is None or step is None or op is None or step == 0:
        return None
    if op in {"<", "<="} and step > 0:
        last = bound if op == "<=" else bound - 1
        if last < start:
            return None                 # zero-trip loop: body never runs
        # the counter only hits start + k*step; clamp last onto the lattice
        last = start + ((last - start) // step) * step
        return (int(start), int(last))
    if op in {">", ">="} and step < 0:
        last = bound if op == ">=" else bound + 1
        if last > start:
            return None
        last = start + ((start - last) // (-step)) * step
        return (int(last), int(start))
    return None


def analyze(root: ASTNode, env: Optional[ConstantEnvironment] = None) -> ASTNode:
    """Run the full semantic pipeline (casts + reference resolution)."""
    set_parents(root)
    insert_implicit_casts(root)
    resolve_references(root)
    return root
