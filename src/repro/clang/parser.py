"""Recursive-descent parser for the C subset used by the benchmark kernels.

The parser produces the Clang-style AST defined in
:mod:`repro.clang.ast_nodes`.  It supports the constructs appearing in the
nine ParaGraph benchmark applications (Table I of the paper): function
definitions, variable/array declarations, ``for`` / ``while`` / ``do`` loops,
``if``/``else``, the full C expression grammar (assignment, ternary, binary,
unary, calls, subscripts, casts, ``sizeof``), and OpenMP pragmas attached to
their following statement.

Two entry points are provided:

* :func:`parse_source` — parse a full file of function definitions / globals.
* :func:`parse_snippet` — parse a statement sequence (a kernel body) into a
  ``CompoundStmt``; this matches how the paper builds graphs for an *OpenMP
  code region* rather than a whole program.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from . import pragmas
from .ast_nodes import (
    ASTNode,
    ArraySubscriptExpr,
    BinaryOperator,
    BreakStmt,
    CStyleCastExpr,
    CallExpr,
    CharacterLiteral,
    CompoundAssignOperator,
    CompoundStmt,
    ConditionalOperator,
    ContinueStmt,
    DeclRefExpr,
    DeclStmt,
    DoStmt,
    FloatingLiteral,
    ForStmt,
    FunctionDecl,
    IfStmt,
    InitListExpr,
    IntegerLiteral,
    MemberExpr,
    NullStmt,
    ParenExpr,
    ParmVarDecl,
    ReturnStmt,
    SizeOfExpr,
    StringLiteral,
    TranslationUnitDecl,
    UnaryOperator,
    VarDecl,
    WhileStmt,
    set_parents,
)
from .lexer import Token, TokenKind, tokenize


class ParseError(Exception):
    """Raised on a syntax error, with the offending token location."""

    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"{message} (at line {token.line}, column {token.column}, near {token.text!r})")
        self.token = token


#: Keywords that can begin a type specifier.
_TYPE_KEYWORDS = frozenset(
    {
        "void", "char", "short", "int", "long", "float", "double", "signed",
        "unsigned", "_Bool", "bool", "size_t", "const", "volatile", "static",
        "extern", "register", "restrict", "inline", "struct", "union", "enum",
    }
)

#: Binary operator precedence levels (higher binds tighter).
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = frozenset({"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="})


class Parser:
    """Token-stream parser.  One instance per parse."""

    def __init__(self, tokens: Sequence[Token]) -> None:
        self.tokens = list(tokens)
        self.pos = 0
        #: Names introduced by ``typedef`` (treated as type names thereafter).
        self.typedef_names: set = set()

    # ------------------------------------------------------------------ #
    # token helpers
    # ------------------------------------------------------------------ #
    def _peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def _check_punct(self, text: str) -> bool:
        return self._peek().is_punct(text)

    def _check_keyword(self, text: str) -> bool:
        return self._peek().is_keyword(text)

    def _accept_punct(self, text: str) -> Optional[Token]:
        if self._check_punct(text):
            return self._advance()
        return None

    def _accept_keyword(self, text: str) -> Optional[Token]:
        if self._check_keyword(text):
            return self._advance()
        return None

    def _expect_punct(self, text: str) -> Token:
        token = self._accept_punct(text)
        if token is None:
            raise ParseError(f"expected {text!r}", self._peek())
        return token

    def _expect_keyword(self, text: str) -> Token:
        token = self._accept_keyword(text)
        if token is None:
            raise ParseError(f"expected keyword {text!r}", self._peek())
        return token

    def _at_end(self) -> bool:
        return self._peek().kind is TokenKind.EOF

    @staticmethod
    def _loc(token: Token) -> Tuple[int, int]:
        return (token.line, token.column)

    # ------------------------------------------------------------------ #
    # type specifiers & declarations
    # ------------------------------------------------------------------ #
    def _starts_type(self, offset: int = 0) -> bool:
        token = self._peek(offset)
        if token.kind is TokenKind.KEYWORD and token.text in _TYPE_KEYWORDS:
            return True
        if token.kind is TokenKind.IDENTIFIER and token.text in self.typedef_names:
            return True
        return False

    def _parse_type_specifier(self) -> str:
        """Consume type / qualifier keywords and pointer stars; return spelling."""
        parts: List[str] = []
        while True:
            token = self._peek()
            if token.kind is TokenKind.KEYWORD and token.text in _TYPE_KEYWORDS:
                parts.append(self._advance().text)
                if parts[-1] in {"struct", "union", "enum"} and self._peek().kind is TokenKind.IDENTIFIER:
                    parts.append(self._advance().text)
                continue
            if token.kind is TokenKind.IDENTIFIER and token.text in self.typedef_names and not parts:
                parts.append(self._advance().text)
                continue
            break
        while self._check_punct("*"):
            self._advance()
            parts.append("*")
        if not parts:
            raise ParseError("expected type specifier", self._peek())
        return " ".join(parts)

    def _parse_declarator(self, base_type: str):
        """Parse ``*``s, a name and array suffixes.  Returns (name, type, dims, loc)."""
        type_name = base_type
        while self._check_punct("*"):
            self._advance()
            type_name += " *"
        name_token = self._peek()
        if name_token.kind is not TokenKind.IDENTIFIER:
            raise ParseError("expected declarator name", name_token)
        self._advance()
        dims: List[ASTNode] = []
        while self._check_punct("["):
            self._advance()
            if self._check_punct("]"):
                dims.append(IntegerLiteral(0, "", location=self._loc(self._peek())))
            else:
                dims.append(self.parse_expression())
            self._expect_punct("]")
        return name_token.text, type_name, dims, self._loc(name_token)

    def _parse_declaration(self, consume_semicolon: bool = True) -> DeclStmt:
        """Parse a (possibly multi-declarator) variable declaration."""
        start = self._peek()
        base_type = self._parse_type_specifier()
        decls: List[VarDecl] = []
        while True:
            name, type_name, dims, loc = self._parse_declarator(base_type)
            init: Optional[ASTNode] = None
            if self._accept_punct("="):
                if self._check_punct("{"):
                    init = self._parse_init_list()
                else:
                    init = self.parse_assignment()
            decls.append(VarDecl(name, type_name, init, dims, location=loc,
                                 token_index=start.index))
            if not self._accept_punct(","):
                break
        if consume_semicolon:
            self._expect_punct(";")
        return DeclStmt(decls, location=self._loc(start))

    def _parse_init_list(self) -> InitListExpr:
        start = self._expect_punct("{")
        inits: List[ASTNode] = []
        while not self._check_punct("}"):
            if self._check_punct("{"):
                inits.append(self._parse_init_list())
            else:
                inits.append(self.parse_assignment())
            if not self._accept_punct(","):
                break
        self._expect_punct("}")
        return InitListExpr(inits, location=self._loc(start))

    # ------------------------------------------------------------------ #
    # expressions
    # ------------------------------------------------------------------ #
    def parse_expression(self) -> ASTNode:
        """Parse a full expression including the comma operator."""
        expr = self.parse_assignment()
        while self._check_punct(","):
            op = self._advance()
            rhs = self.parse_assignment()
            expr = BinaryOperator(",", expr, rhs, location=self._loc(op),
                                  token_index=op.index)
        return expr

    def parse_assignment(self) -> ASTNode:
        lhs = self._parse_conditional()
        token = self._peek()
        if token.kind is TokenKind.PUNCTUATOR and token.text in _ASSIGN_OPS:
            self._advance()
            rhs = self.parse_assignment()
            cls = BinaryOperator if token.text == "=" else CompoundAssignOperator
            return cls(token.text, lhs, rhs, location=self._loc(token),
                       token_index=token.index)
        return lhs

    def _parse_conditional(self) -> ASTNode:
        cond = self._parse_binary(0)
        if self._check_punct("?"):
            qmark = self._advance()
            true_expr = self.parse_expression()
            self._expect_punct(":")
            false_expr = self._parse_conditional()
            return ConditionalOperator(cond, true_expr, false_expr,
                                       location=self._loc(qmark))
        return cond

    def _parse_binary(self, min_precedence: int) -> ASTNode:
        lhs = self._parse_unary()
        while True:
            token = self._peek()
            if token.kind is not TokenKind.PUNCTUATOR:
                break
            precedence = _BINARY_PRECEDENCE.get(token.text)
            if precedence is None or precedence < min_precedence:
                break
            self._advance()
            rhs = self._parse_binary(precedence + 1)
            lhs = BinaryOperator(token.text, lhs, rhs, location=self._loc(token),
                                 token_index=token.index)
        return lhs

    def _parse_unary(self) -> ASTNode:
        token = self._peek()
        if token.kind is TokenKind.PUNCTUATOR and token.text in {"+", "-", "!", "~", "*", "&"}:
            self._advance()
            operand = self._parse_unary()
            return UnaryOperator(token.text, operand, prefix=True,
                                 location=self._loc(token), token_index=token.index)
        if token.kind is TokenKind.PUNCTUATOR and token.text in {"++", "--"}:
            self._advance()
            operand = self._parse_unary()
            return UnaryOperator(token.text, operand, prefix=True,
                                 location=self._loc(token), token_index=token.index)
        if token.is_keyword("sizeof"):
            self._advance()
            if self._check_punct("(") and self._starts_type(1):
                self._advance()
                type_name = self._parse_type_specifier()
                self._expect_punct(")")
                return SizeOfExpr(None, type_name, location=self._loc(token),
                                  token_index=token.index)
            operand = self._parse_unary()
            return SizeOfExpr(operand, "", location=self._loc(token),
                              token_index=token.index)
        if self._check_punct("(") and self._starts_type(1):
            lparen = self._advance()
            type_name = self._parse_type_specifier()
            self._expect_punct(")")
            operand = self._parse_unary()
            return CStyleCastExpr(type_name, operand, location=self._loc(lparen))
        return self._parse_postfix()

    def _parse_postfix(self) -> ASTNode:
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if token.is_punct("["):
                self._advance()
                index = self.parse_expression()
                self._expect_punct("]")
                expr = ArraySubscriptExpr(expr, index, location=self._loc(token))
            elif token.is_punct("("):
                self._advance()
                args: List[ASTNode] = []
                while not self._check_punct(")"):
                    args.append(self.parse_assignment())
                    if not self._accept_punct(","):
                        break
                self._expect_punct(")")
                expr = CallExpr(expr, args, location=self._loc(token))
            elif token.is_punct(".") or token.is_punct("->"):
                self._advance()
                member = self._peek()
                if member.kind is not TokenKind.IDENTIFIER:
                    raise ParseError("expected member name", member)
                self._advance()
                expr = MemberExpr(expr, member.text, token.text == "->",
                                  location=self._loc(token), token_index=member.index)
            elif token.is_punct("++") or token.is_punct("--"):
                self._advance()
                expr = UnaryOperator(token.text, expr, prefix=False,
                                     location=self._loc(token), token_index=token.index)
            else:
                break
        return expr

    def _parse_primary(self) -> ASTNode:
        token = self._peek()
        if token.kind is TokenKind.INT_LITERAL:
            self._advance()
            text = token.text.rstrip("uUlL")
            value = int(text, 0) if text else 0
            return IntegerLiteral(value, token.text, location=self._loc(token),
                                  token_index=token.index)
        if token.kind is TokenKind.FLOAT_LITERAL:
            self._advance()
            text = token.text.rstrip("fFlL")
            return FloatingLiteral(float(text), token.text, location=self._loc(token),
                                   token_index=token.index)
        if token.kind is TokenKind.CHAR_LITERAL:
            self._advance()
            return CharacterLiteral(token.text, location=self._loc(token),
                                    token_index=token.index)
        if token.kind is TokenKind.STRING_LITERAL:
            self._advance()
            return StringLiteral(token.text, location=self._loc(token),
                                 token_index=token.index)
        if token.kind is TokenKind.IDENTIFIER:
            self._advance()
            return DeclRefExpr(token.text, location=self._loc(token),
                               token_index=token.index)
        if token.is_punct("("):
            self._advance()
            inner = self.parse_expression()
            self._expect_punct(")")
            return ParenExpr(inner, location=self._loc(token))
        raise ParseError("expected expression", token)

    # ------------------------------------------------------------------ #
    # statements
    # ------------------------------------------------------------------ #
    def parse_statement(self) -> ASTNode:
        token = self._peek()
        if token.kind is TokenKind.PRAGMA:
            return self._parse_pragma_statement()
        if token.is_punct("{"):
            return self.parse_compound_statement()
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("for"):
            return self._parse_for()
        if token.is_keyword("while"):
            return self._parse_while()
        if token.is_keyword("do"):
            return self._parse_do()
        if token.is_keyword("return"):
            self._advance()
            value = None
            if not self._check_punct(";"):
                value = self.parse_expression()
            self._expect_punct(";")
            return ReturnStmt(value, location=self._loc(token))
        if token.is_keyword("break"):
            self._advance()
            self._expect_punct(";")
            return BreakStmt(location=self._loc(token), token_index=token.index)
        if token.is_keyword("continue"):
            self._advance()
            self._expect_punct(";")
            return ContinueStmt(location=self._loc(token), token_index=token.index)
        if token.is_punct(";"):
            self._advance()
            return NullStmt(location=self._loc(token), token_index=token.index)
        if self._starts_type():
            return self._parse_declaration()
        expr = self.parse_expression()
        self._expect_punct(";")
        return expr

    def parse_compound_statement(self) -> CompoundStmt:
        start = self._expect_punct("{")
        statements: List[ASTNode] = []
        while not self._check_punct("}"):
            if self._at_end():
                raise ParseError("unexpected end of input in block", self._peek())
            statements.append(self.parse_statement())
        self._expect_punct("}")
        return CompoundStmt(statements, location=self._loc(start))

    def _parse_if(self) -> IfStmt:
        token = self._expect_keyword("if")
        self._expect_punct("(")
        cond = self.parse_expression()
        self._expect_punct(")")
        then_branch = self.parse_statement()
        else_branch = None
        if self._accept_keyword("else"):
            else_branch = self.parse_statement()
        return IfStmt(cond, then_branch, else_branch, location=self._loc(token))

    def _parse_for(self) -> ForStmt:
        token = self._expect_keyword("for")
        self._expect_punct("(")
        if self._check_punct(";"):
            init: ASTNode = NullStmt(location=self._loc(self._peek()))
            self._advance()
        elif self._starts_type():
            init = self._parse_declaration()
        else:
            init = self.parse_expression()
            self._expect_punct(";")
        if self._check_punct(";"):
            cond: ASTNode = IntegerLiteral(1, "1", location=self._loc(self._peek()))
        else:
            cond = self.parse_expression()
        self._expect_punct(";")
        if self._check_punct(")"):
            inc: ASTNode = NullStmt(location=self._loc(self._peek()))
        else:
            inc = self.parse_expression()
        self._expect_punct(")")
        body = self.parse_statement()
        if not isinstance(body, CompoundStmt):
            body = CompoundStmt([body], location=body.location)
        return ForStmt(init, cond, body, inc, location=self._loc(token))

    def _parse_while(self) -> WhileStmt:
        token = self._expect_keyword("while")
        self._expect_punct("(")
        cond = self.parse_expression()
        self._expect_punct(")")
        body = self.parse_statement()
        if not isinstance(body, CompoundStmt):
            body = CompoundStmt([body], location=body.location)
        return WhileStmt(cond, body, location=self._loc(token))

    def _parse_do(self) -> DoStmt:
        token = self._expect_keyword("do")
        body = self.parse_statement()
        if not isinstance(body, CompoundStmt):
            body = CompoundStmt([body], location=body.location)
        self._expect_keyword("while")
        self._expect_punct("(")
        cond = self.parse_expression()
        self._expect_punct(")")
        self._expect_punct(";")
        return DoStmt(body, cond, location=self._loc(token))

    def _parse_pragma_statement(self) -> ASTNode:
        token = self._advance()
        try:
            cls, name, clauses = pragmas.parse_omp_pragma(
                token.text, location=self._loc(token))
        except pragmas.PragmaError:
            # Non-OpenMP pragma: skip it and parse the next statement.
            return self.parse_statement()
        body = None
        if not pragmas.is_standalone(name):
            body = self.parse_statement()
        return pragmas.build_directive(cls, name, clauses, body,
                                       location=self._loc(token))

    # ------------------------------------------------------------------ #
    # top level
    # ------------------------------------------------------------------ #
    def _parse_function_or_global(self) -> ASTNode:
        token = self._peek()
        if token.is_keyword("typedef"):
            # consume a simple "typedef <type> name ;"
            self._advance()
            self._parse_type_specifier()
            name = self._peek()
            if name.kind is TokenKind.IDENTIFIER:
                self.typedef_names.add(name.text)
                self._advance()
            self._expect_punct(";")
            return NullStmt(location=self._loc(token))
        base_type = self._parse_type_specifier()
        pointer = ""
        while self._check_punct("*"):
            self._advance()
            pointer += " *"
        name_token = self._peek()
        if name_token.kind is not TokenKind.IDENTIFIER:
            raise ParseError("expected declarator name", name_token)
        self._advance()
        if self._check_punct("("):
            return self._parse_function_rest(base_type + pointer, name_token)
        # global variable declaration; rewind is awkward, so parse inline
        dims: List[ASTNode] = []
        while self._check_punct("["):
            self._advance()
            if self._check_punct("]"):
                dims.append(IntegerLiteral(0, "", location=self._loc(self._peek())))
            else:
                dims.append(self.parse_expression())
            self._expect_punct("]")
        init = None
        if self._accept_punct("="):
            if self._check_punct("{"):
                init = self._parse_init_list()
            else:
                init = self.parse_assignment()
        decls = [VarDecl(name_token.text, base_type + pointer, init, dims,
                         location=self._loc(name_token), token_index=name_token.index)]
        while self._accept_punct(","):
            name, type_name, extra_dims, loc = self._parse_declarator(base_type + pointer)
            extra_init = None
            if self._accept_punct("="):
                extra_init = self.parse_assignment()
            decls.append(VarDecl(name, type_name, extra_init, extra_dims, location=loc))
        self._expect_punct(";")
        return DeclStmt(decls, location=self._loc(name_token))

    def _parse_function_rest(self, return_type: str, name_token: Token) -> FunctionDecl:
        self._expect_punct("(")
        params: List[ParmVarDecl] = []
        if self._check_keyword("void") and self._peek(1).is_punct(")"):
            self._advance()
        while not self._check_punct(")"):
            param_type = self._parse_type_specifier()
            while self._check_punct("*"):
                self._advance()
                param_type += " *"
            param_name = ""
            param_loc = self._loc(self._peek())
            param_idx = self._peek().index
            if self._peek().kind is TokenKind.IDENTIFIER:
                param_name = self._advance().text
            while self._check_punct("["):
                self._advance()
                if not self._check_punct("]"):
                    self.parse_expression()
                self._expect_punct("]")
                param_type += " *"
            params.append(ParmVarDecl(param_name, param_type, location=param_loc,
                                      token_index=param_idx))
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        body = None
        if self._check_punct("{"):
            body = self.parse_compound_statement()
        else:
            self._expect_punct(";")
        func = FunctionDecl(name_token.text, return_type, params, body,
                            location=self._loc(name_token), token_index=name_token.index)
        return func

    def parse_translation_unit(self) -> TranslationUnitDecl:
        decls: List[ASTNode] = []
        while not self._at_end():
            token = self._peek()
            if token.kind is TokenKind.PRAGMA:
                if token.text.split()[:1] != ["omp"]:
                    # non-OpenMP pragma at file scope (#pragma once, ...):
                    # skip it — the statement-level fallback would misparse
                    # the following function definition as a declaration.
                    # Malformed *OpenMP* pragmas still fall through and fail.
                    self._advance()
                    continue
                decls.append(self._parse_pragma_statement())
                continue
            decls.append(self._parse_function_or_global())
        first = self.tokens[0] if self.tokens else None
        root_loc = (first.line, first.column) if first is not None and \
            first.kind is not TokenKind.EOF else (1, 1)
        unit = TranslationUnitDecl(decls, location=root_loc)
        return set_parents(unit)

    def parse_snippet_body(self) -> CompoundStmt:
        statements: List[ASTNode] = []
        while not self._at_end():
            statements.append(self.parse_statement())
        first = self.tokens[0] if self.tokens else None
        root_loc = (first.line, first.column) if first is not None and \
            first.kind is not TokenKind.EOF else (1, 1)
        body = CompoundStmt(statements, location=root_loc)
        return set_parents(body)


def parse_source(source: str, filename: str = "<source>") -> TranslationUnitDecl:
    """Parse a complete C source file into a ``TranslationUnitDecl``."""
    return Parser(tokenize(source, filename)).parse_translation_unit()


def parse_snippet(source: str, filename: str = "<snippet>") -> CompoundStmt:
    """Parse a statement sequence (kernel body) into a ``CompoundStmt``."""
    return Parser(tokenize(source, filename)).parse_snippet_body()
