"""Figure 5 — validation normalized RMSE per epoch for the four accelerators.

Shape checks from the paper: the curves may fluctuate in the first epochs but
converge, ending well below where they start.
"""

from repro.evaluation import figure5_series, format_curves

from _reporting import report


def test_fig5_training_curves(benchmark, main_result):
    curves = benchmark.pedantic(figure5_series, args=(main_result,), rounds=1, iterations=1)
    report("\nFigure 5 — normalized RMSE per epoch\n" + format_curves(curves, every=10))
    assert set(curves) == {"IBM POWER9", "NVIDIA V100", "AMD EPYC7401", "AMD MI50"}
    for platform, values in curves.items():
        assert len(values) >= 10
        start = values[0]
        tail = min(values[-10:])
        assert tail < start, f"{platform}: training curve did not improve"
