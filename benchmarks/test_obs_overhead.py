"""Observability overhead benchmark: scopes on vs off, sketch accuracy.

Two contracts from the ``repro.obs`` design (OBSERVABILITY.md):

* **near-zero when off, cheap when on** — the always-on per-server
  instruments plus fully-enabled ``metrics_scope`` + ``trace_requests``
  recording must cost < 5% against the same serving wave with no scopes
  active (the PR 7 reliability-gate shape: interleaved A/B waves, min of
  N each, so a noisy neighbour inflates both arms instead of biasing the
  comparison).  The disabled :func:`repro.obs.span` fast path must stay a
  global read + return, same budget as ``fault_point``.
* **quantiles you can trust** — the streaming
  :class:`~repro.obs.QuantileSketch` must answer p50/p95/p99 within its
  configured relative accuracy of the exact order statistics, both on a
  deterministic synthetic distribution and on the real request latencies
  recorded from the serving waves over the PR 8 corpus.

Machine-readable output goes to ``benchmarks/BENCH_pr10_obs.json``
(``benchmarks/out/`` unless ``REPRO_BENCH_RECORD=1``).
``REPRO_BENCH_QUICK=1`` shrinks the workload for CI smoke jobs.
"""

import os
import time

import numpy as np

from _reporting import report, report_json
from repro.api import DataConfig, ModelConfig, ReproConfig, Session, get_kernel
from repro.ml.trainer import TrainingConfig
from repro.obs import QuantileSketch, metrics_scope, span, trace_requests
from repro.pipeline import SweepConfig
from repro.serve import Server, ServerConfig
from repro.synth import build_corpus

PLATFORM = "v100"
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

CORPUS_SIZE = 8 if QUICK else 24
OBS_ROUNDS = 3 if QUICK else 7
SPAN_CALLS = 20_000 if QUICK else 200_000
SKETCH_SAMPLES = 2_000 if QUICK else 20_000
RELATIVE_ACCURACY = 0.01


def make_trained_session() -> Session:
    # the PR 4/PR 7 serving-benchmark shape: a model wide enough that the
    # forward dominates, so the overhead ratio reflects real serving work
    config = ReproConfig(
        data=DataConfig(
            sweep=SweepConfig(size_scales=(1.0,), team_counts=(64,),
                              thread_counts=(8, 64),
                              kernels=[get_kernel("matmul"),
                                       get_kernel("matvec")]),
            platforms=(PLATFORM,),
        ),
        model=ModelConfig(hidden_dim=32),
        training=TrainingConfig(epochs=3, batch_size=16,
                                learning_rate=2e-3, seed=0),
        seed=0,
    )
    session = Session(config)
    session.train()
    return session


def test_obs_overhead_scopes_on_vs_off():
    """The 5% gate: fully-enabled recording vs no scopes, interleaved."""
    session = make_trained_session()
    requests = build_corpus(CORPUS_SIZE, seed=2028).sources()
    server = Server(session, ServerConfig(
        num_workers=0, max_retries=0, breaker_threshold=0))
    expected = server.predict_batch(requests, PLATFORM, dtype=None)

    def wave() -> tuple:
        """One warm wave of per-request submits; returns (s, latencies)."""
        latencies = []
        start = time.perf_counter()
        for source in requests:
            begin = time.perf_counter()
            server.submit(source, PLATFORM, dtype=None).result(timeout=60.0)
            latencies.append(time.perf_counter() - begin)
        got = server.predict_batch(requests, PLATFORM, dtype=None)
        elapsed = time.perf_counter() - start
        np.testing.assert_array_equal(got, expected)
        return elapsed, latencies

    try:
        wave()                                      # warm every cache
        with metrics_scope(), trace_requests():
            wave()
        off_s, on_s = [], []
        exact_latencies = []
        for _ in range(OBS_ROUNDS):
            off_s.append(wave()[0])
            with metrics_scope(), trace_requests(capacity=1024):
                elapsed, latencies = wave()
            on_s.append(elapsed)
            exact_latencies.extend(latencies)
        latency_dump = server.metrics.histogram(
            "serve.request_latency_s").to_dict()
    finally:
        server.close()
    off_min, on_min = min(off_s), min(on_s)
    overhead_pct = (on_min - off_min) / off_min * 100.0

    # the disabled span() fast path: a global read + a shared null context
    start = time.perf_counter()
    for _ in range(SPAN_CALLS):
        with span("bench.noop"):
            pass
    span_disabled_ns = (time.perf_counter() - start) / SPAN_CALLS * 1e9

    # sketch accuracy on the real serving latencies just recorded
    sketch = QuantileSketch(relative_accuracy=RELATIVE_ACCURACY)
    for value in exact_latencies:
        sketch.observe(value)
    sketch_errors = {}
    for q in (0.50, 0.95, 0.99):
        exact = float(np.percentile(exact_latencies, q * 100.0,
                                    method="higher"))
        estimate = sketch.quantile(q)
        sketch_errors[f"p{int(q * 100)}"] = abs(estimate - exact) / exact

    report("\n".join([
        f"obs overhead ({len(requests)} submits + 1 job/wave, min of "
        f"{OBS_ROUNDS} interleaved waves):",
        f"  scopes off  : {off_min * 1000:8.2f} ms",
        f"  scopes on   : {on_min * 1000:8.2f} ms  ({overhead_pct:+.2f}%)",
        f"  span() off  : {span_disabled_ns:8.1f} ns/call",
        f"  latency p50/p95/p99 (ms): "
        f"{latency_dump['p50'] * 1e3:.2f} / {latency_dump['p95'] * 1e3:.2f}"
        f" / {latency_dump['p99'] * 1e3:.2f}",
        f"  sketch vs exact rel. err: " + ", ".join(
            f"{name}={err:.4f}" for name, err in sketch_errors.items()),
    ]))
    report_json("BENCH_pr10_obs.json", {
        "corpus_size": len(requests),
        "rounds": OBS_ROUNDS,
        "scopes_off_wave_ms": off_min * 1000.0,
        "scopes_on_wave_ms": on_min * 1000.0,
        "overhead_pct": overhead_pct,
        "span_disabled_ns": span_disabled_ns,
        "latency_p50_ms": latency_dump["p50"] * 1e3,
        "latency_p95_ms": latency_dump["p95"] * 1e3,
        "latency_p99_ms": latency_dump["p99"] * 1e3,
        "sketch_relative_errors": sketch_errors,
        "sketch_samples": len(exact_latencies),
        "cpu_count": os.cpu_count() or 1,
        "quick_mode": QUICK,
    })

    assert overhead_pct < 5.0, (
        f"obs-on serving costs {overhead_pct:.2f}% over obs-off "
        f"(off {off_min * 1000:.2f} ms vs on {on_min * 1000:.2f} ms); "
        "the budget is < 5%")
    assert span_disabled_ns < 2_000, (
        f"span() no-collector fast path took {span_disabled_ns:.0f} ns; "
        "it must stay a global read + return")
    for name, error in sketch_errors.items():
        assert error <= 3.0 * RELATIVE_ACCURACY, (
            f"sketch {name} is {error:.4f} relative from the exact order "
            f"statistic; budget is 3x relative_accuracy")


def test_sketch_accuracy_on_synthetic_distribution():
    """Deterministic accuracy gate: lognormal latencies, exact percentiles."""
    rng = np.random.default_rng(11)
    samples = rng.lognormal(mean=-4.0, sigma=1.0, size=SKETCH_SAMPLES)
    sketch = QuantileSketch(relative_accuracy=RELATIVE_ACCURACY)
    for value in samples:
        sketch.observe(float(value))
    worst = 0.0
    for q in (0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99):
        exact = float(np.percentile(samples, q * 100.0, method="higher"))
        estimate = sketch.quantile(q)
        error = abs(estimate - exact) / exact
        worst = max(worst, error)
        assert error <= 2.0 * RELATIVE_ACCURACY, (
            f"q={q}: sketch {estimate} vs exact {exact} "
            f"({error:.4f} relative)")
    report(f"sketch accuracy (lognormal, n={SKETCH_SAMPLES}): "
           f"worst relative error {worst:.4f} "
           f"(budget {2.0 * RELATIVE_ACCURACY})")
