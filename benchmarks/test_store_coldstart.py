"""Cold-start benchmark: train-then-serve vs artifact warm-start.

The number the ``repro.store`` subsystem exists for: how long until a
fresh process answers its first prediction.

* **train path** — ``Session(config)`` + ``train()`` + first
  ``predict_batch`` (what every cold start cost before the store),
* **warm path** — ``Session.load(artifact)`` + first ``predict_batch``
  (zero retraining; the artifact was written once, ahead of time),
* **store throughput** — artifact save and load latency and MB/s over
  repeated runs, since a serving fleet re-loads artifacts far more often
  than it writes them.

The warm path must be correct, not just fast: float64 predictions from
the loaded session are asserted bit-identical to the trainer's.

Machine-readable output goes to ``benchmarks/BENCH_pr5_store.json``;
``REPRO_BENCH_QUICK=1`` shrinks the sweep for CI smoke jobs.
"""

import os
import time

import numpy as np

from _reporting import report, report_json
from repro.api import DataConfig, ModelConfig, ReproConfig, Session, get_kernel
from repro.ml.trainer import TrainingConfig
from repro.pipeline import SweepConfig
from repro.store import artifact_size_bytes

PLATFORM = "v100"
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

EPOCHS = 3 if QUICK else 12
IO_REPEATS = 3 if QUICK else 10

SOURCES = [
    "void kernel(int n) { for (int i = 0; i < 50; i++) { n += i; } }",
    "void tiled(int n) { for (int i = 0; i < 16; i++) { for (int j = 0; j < 16; j++) { n += i * j; } } }",
]


def bench_config() -> ReproConfig:
    return ReproConfig(
        data=DataConfig(
            sweep=SweepConfig(size_scales=(0.5, 1.0), team_counts=(64,),
                              thread_counts=(8, 64),
                              kernels=[get_kernel("matmul"),
                                       get_kernel("matvec")]),
            platforms=(PLATFORM,)),
        model=ModelConfig(hidden_dim=24),
        training=TrainingConfig(epochs=EPOCHS, batch_size=32,
                                learning_rate=2e-3, seed=0),
        seed=0,
    )


def test_store_coldstart(tmp_path):
    # ---- the old cold start: train in-process, then serve -------------- #
    started = time.perf_counter()
    session = Session(bench_config())
    session.train()
    train_s = time.perf_counter() - started
    started = time.perf_counter()
    reference = session.predict_batch(SOURCES, PLATFORM, dtype=None)
    first_predict_after_train_s = time.perf_counter() - started
    train_total_s = train_s + first_predict_after_train_s

    # ---- write the artifact once, ahead of time ------------------------ #
    artifact = str(tmp_path / "artifact")
    started = time.perf_counter()
    session.save(artifact)
    save_s = time.perf_counter() - started
    size_bytes = artifact_size_bytes(artifact)

    # ---- the new cold start: warm-start from the artifact -------------- #
    started = time.perf_counter()
    loaded = Session.load(artifact)
    load_s = time.perf_counter() - started
    started = time.perf_counter()
    warm_predictions = loaded.predict_batch(SOURCES, PLATFORM, dtype=None)
    first_predict_after_load_s = time.perf_counter() - started
    warm_total_s = load_s + first_predict_after_load_s

    # correctness is non-negotiable: the warm path serves the same bits
    np.testing.assert_array_equal(warm_predictions, reference)
    loaded.close()

    # ---- save/load throughput ------------------------------------------ #
    save_times, load_times = [], []
    for index in range(IO_REPEATS):
        scratch = str(tmp_path / f"io-{index}")
        started = time.perf_counter()
        session.save(scratch)
        save_times.append(time.perf_counter() - started)
        started = time.perf_counter()
        Session.load(scratch).close()
        load_times.append(time.perf_counter() - started)
    save_mean_s = float(np.mean(save_times))
    load_mean_s = float(np.mean(load_times))
    session.close()

    mib = size_bytes / (1 << 20)
    payload = {
        "config": {"epochs": EPOCHS, "hidden_dim": 24,
                   "platforms": [PLATFORM], "quick": QUICK},
        "coldstart": {
            "train_s": train_s,
            "first_predict_after_train_s": first_predict_after_train_s,
            "train_total_s": train_total_s,
            "load_s": load_s,
            "first_predict_after_load_s": first_predict_after_load_s,
            "warm_total_s": warm_total_s,
            "speedup": train_total_s / warm_total_s,
        },
        "throughput": {
            "artifact_bytes": size_bytes,
            "save_mean_s": save_mean_s,
            "load_mean_s": load_mean_s,
            "save_mib_per_s": mib / save_mean_s,
            "load_mib_per_s": mib / load_mean_s,
            "io_repeats": IO_REPEATS,
        },
    }
    path = report_json("BENCH_pr5_store.json", payload)

    report(
        "Store cold-start (train-then-serve vs warm-start-then-serve)\n"
        f"  train + first predict : {train_total_s * 1000:9.1f} ms "
        f"(train {train_s * 1000:.1f} ms)\n"
        f"  load  + first predict : {warm_total_s * 1000:9.1f} ms "
        f"(load {load_s * 1000:.1f} ms)\n"
        f"  cold-start speedup    : {train_total_s / warm_total_s:9.1f}x\n"
        f"  artifact size         : {size_bytes} bytes\n"
        f"  save throughput       : {mib / save_mean_s:9.2f} MiB/s "
        f"({save_mean_s * 1000:.1f} ms/save)\n"
        f"  load throughput       : {mib / load_mean_s:9.2f} MiB/s "
        f"({load_mean_s * 1000:.1f} ms/load)\n"
        f"  JSON: {path}")

    # the whole point of the subsystem: warm starts must beat retraining
    assert warm_total_s < train_total_s, (
        f"warm start ({warm_total_s:.3f}s) did not beat train-then-serve "
        f"({train_total_s:.3f}s)")
