"""Figure 2 — the AST augmentation examples, plus graph-construction throughput.

Fig. 2 of the paper shows the three toy snippets (declaration + assignment,
``if``/``else``, ``for`` loop) and the edges/weights ParaGraph adds.  The
benchmark regenerates exactly those graphs, checks the depicted edges and
weights, and times ParaGraph construction over the full kernel registry (the
"overhead is negligible because augmentation is static" claim of §III).
"""

import pytest

from repro.clang import analyze, parse_snippet
from repro.kernels import all_kernels
from repro.paragraph import EdgeType, build_paragraph


def build_figure2_graphs():
    declaration = build_paragraph(analyze(parse_snippet("int x; x = 50;")))
    conditional = build_paragraph(analyze(parse_snippet(
        "for (int k = 0; k < 100; k++) { if (x > 50) { a[k] = 1; } else { a[k] = 2; } }")))
    loop = build_paragraph(analyze(parse_snippet("for (int i = 0; i < 50; i++) { x += i; }")))
    return declaration, conditional, loop


def build_all_kernel_graphs():
    graphs = []
    for kernel in all_kernels():
        ast = analyze(kernel.parse())
        graphs.append(build_paragraph(ast, env=kernel.environment(), num_threads=8))
    return graphs


def test_fig2_augmentation_examples(benchmark):
    declaration, conditional, loop = benchmark.pedantic(build_figure2_graphs,
                                                        rounds=1, iterations=1)
    # left panel: NextToken / Ref edges exist for the declaration snippet
    assert declaration.edges_of_type(EdgeType.NEXT_TOKEN)
    assert declaration.edges_of_type(EdgeType.REF)
    # middle panel: ConTrue / ConFalse edges, branch weights halved
    assert conditional.edges_of_type(EdgeType.CON_TRUE)
    assert conditional.edges_of_type(EdgeType.CON_FALSE)
    if_node = [n for n in conditional.nodes if n.label == "IfStmt"][0]
    branch_weights = sorted(e.weight for e in conditional.edges_of_type(EdgeType.CHILD)
                            if e.src == if_node.node_id)
    assert branch_weights == pytest.approx([50.0, 50.0, 100.0])
    # right panel: ForExec / ForNext edges and the 1/50/50/50 weight pattern
    assert len(loop.edges_of_type(EdgeType.FOR_EXEC)) == 2
    assert len(loop.edges_of_type(EdgeType.FOR_NEXT)) == 2
    for_node = [n for n in loop.nodes if n.label == "ForStmt"][0]
    loop_weights = sorted(e.weight for e in loop.edges_of_type(EdgeType.CHILD)
                          if e.src == for_node.node_id)
    assert loop_weights == pytest.approx([1.0, 50.0, 50.0, 50.0])


def test_paragraph_construction_throughput(benchmark):
    graphs = benchmark(build_all_kernel_graphs)
    assert len(graphs) == 17
    for graph in graphs:
        graph.validate()
