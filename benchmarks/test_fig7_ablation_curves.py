"""Figure 7 — validation RMSE per epoch for the three representations (MI50).

Shape checks from the paper: all three curves decrease over training, and the
full ParaGraph representation converges to the lowest (or tied-lowest) error,
while the raw AST converges to the highest.
"""

from repro.evaluation import format_curves
from repro.hardware import MI50

from _reporting import report


def extract_curves(ablation_result):
    histories = ablation_result.histories_for(MI50.name)
    return {variant: history.val_rmses for variant, history in histories.items()}


def test_fig7_ablation_training_curves(benchmark, ablation_result):
    curves = benchmark.pedantic(extract_curves, args=(ablation_result,),
                                rounds=1, iterations=1)
    report("\nFigure 7 — validation RMSE (us) per epoch on the AMD MI50\n" +
          format_curves(curves, every=10, value_format="{:.0f}"))
    assert set(curves) == {"raw_ast", "augmented_ast", "paragraph"}
    final = {variant: min(values[-5:]) for variant, values in curves.items()}
    for variant, values in curves.items():
        assert min(values) <= values[0], f"{variant} never improved during training"
    assert final["paragraph"] < final["raw_ast"], (
        "ParaGraph should converge below the raw AST representation")
