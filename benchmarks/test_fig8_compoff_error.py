"""Figure 8 — per-data-point error of ParaGraph vs COMPOFF on the NVIDIA V100.

Shape checks: both models produce finite, small per-point relative errors.
Note on the paper comparison: on the real clusters ParaGraph's error is
clearly lower than COMPOFF's.  With the *analytical* runtime simulator used
here, COMPOFF's hand-engineered features (iteration counts, transfer bytes)
are essentially the simulator's own inputs, which gives the baseline an
information advantage that does not exist on real hardware — so this
benchmark asserts that ParaGraph's error stays small in absolute terms
rather than that it beats COMPOFF (see EXPERIMENTS.md for the discussion).
"""

import numpy as np

from repro.evaluation import format_table

from _reporting import report


def test_fig8_per_point_error_vs_compoff(benchmark, comparison_result):
    points = benchmark.pedantic(comparison_result.figure8_points, rounds=1, iterations=1)
    summary = comparison_result.summary()
    rows = [{"model": name,
             "rmse_ms": summary[name]["rmse"] / 1000.0,
             "mean_relative_error": summary[name]["mean_relative_error"]}
            for name in ("ParaGraph", "COMPOFF")]
    report("\nFigure 8 — per-point error summary (NVIDIA V100)\n" +
          format_table(rows, ("model", "rmse_ms", "mean_relative_error")))
    assert set(points) == {"ParaGraph", "COMPOFF"}
    for name, series in points.items():
        errors = np.array([error for _, error in series])
        assert np.all(np.isfinite(errors)) and np.all(errors >= 0)
    # ParaGraph's mean relative error stays a small fraction of the runtime
    # range (the paper's "significantly lower error" is < 10%); COMPOFF is
    # reported alongside for the Fig. 8 comparison.
    assert summary["ParaGraph"]["mean_relative_error"] < 0.25
    assert summary["COMPOFF"]["mean_relative_error"] < 0.5
