"""Shared fixtures for the benchmark harness.

Each table / figure of the paper has its own benchmark module, but several of
them are different views of the same trained models (Tables II & III and
Figs. 4-6 all come from the main experiment; Table IV and Fig. 7 from the
ablation).  The expensive experiments therefore run once per pytest session
in the fixtures below and the individual benchmarks time the (cheap) driver
that regenerates their specific table or figure from those results.

Scale note: the fixtures use the ``small`` experiment scale so that the whole
benchmark suite finishes in minutes on a laptop.  ``ExperimentScale.medium()``
/ ``.paper()`` widen the sweep towards the paper's ~26 000-sample dataset.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.compoff import COMPOFFConfig                     # noqa: E402
from repro.evaluation import (                              # noqa: E402
    ExperimentScale,
    run_ablation,
    run_comparison,
    run_main_experiment,
)
from repro.hardware import ALL_PLATFORMS, MI50, V100        # noqa: E402
from repro.ml.trainer import TrainingConfig                 # noqa: E402
from repro.pipeline import SweepConfig                      # noqa: E402

#: sweep shared by the ablation and comparison fixtures (kept small).
BENCH_SWEEP = SweepConfig(size_scales=(0.5, 1.0), team_counts=(64,),
                          thread_counts=(8, 64), repetitions=1)
BENCH_TRAINING = TrainingConfig(epochs=30, batch_size=32, learning_rate=2e-3, seed=0)


@pytest.fixture(scope="session")
def main_result():
    """Tables II-III / Figs. 4-6: one trained ParaGraph model per platform."""
    scale = ExperimentScale(sweep=BENCH_SWEEP, epochs=40, hidden_dim=32, seed=0)
    return run_main_experiment(scale, platforms=ALL_PLATFORMS)


@pytest.fixture(scope="session")
def ablation_result():
    """Table IV / Fig. 7: Raw AST vs Augmented AST vs ParaGraph on the MI50."""
    return run_ablation(sweep=BENCH_SWEEP, training=BENCH_TRAINING,
                        platforms=(MI50,), hidden_dim=32, seed=0)


@pytest.fixture(scope="session")
def comparison_result():
    """Figs. 8-9: ParaGraph vs COMPOFF on the NVIDIA V100."""
    return run_comparison(platform=V100, sweep=BENCH_SWEEP, training=BENCH_TRAINING,
                          compoff_config=COMPOFFConfig(epochs=120, seed=0),
                          hidden_dim=32, seed=0)


from _reporting import report, reset_results  # noqa: E402,F401


def pytest_sessionstart(session):
    # start each benchmark session with a fresh per-run file under
    # benchmarks/out/ (git-ignored; only BENCH_*.json records are tracked)
    reset_results()
