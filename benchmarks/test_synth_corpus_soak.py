"""Corpus-driven soak benchmark for the ``Session.predict_batch`` hot path.

Unlike ``test_api_predict_batch.py`` (8 hand-picked kernel variants), this
benchmark pushes a *generated* request stream through the serving facade:
``repro.synth.build_corpus`` produces seeded synthetic C/OpenMP kernels with
sampled execution contexts, and the soak tiles them into repeated traffic
waves — the shape a serving tier actually sees (mostly-warm cache, varied
graph shapes, occasional cold misses).

Reported numbers: cold construction throughput, warm serving throughput and
cache accounting; machine-readable output goes to ``BENCH_pr3_synth_soak.json``.

``REPRO_BENCH_QUICK=1`` shrinks the corpus for CI smoke jobs; the
``--runslow`` variant runs a 10x longer soak with cache-pressure eviction.
"""

import os
import time

import numpy as np
import pytest

from _reporting import report, report_json
from repro.api import DataConfig, ModelConfig, ReproConfig, Session, get_kernel
from repro.ml.trainer import TrainingConfig
from repro.pipeline import SweepConfig
from repro.synth import build_corpus

PLATFORM = "v100"
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

CORPUS_SIZE = 8 if QUICK else 32
WARM_PASSES = 2 if QUICK else 5


def make_trained_session(graph_cache_size: int = 256) -> Session:
    config = ReproConfig(
        data=DataConfig(
            sweep=SweepConfig(size_scales=(1.0,), team_counts=(64,),
                              thread_counts=(8, 64),
                              kernels=[get_kernel("matmul"), get_kernel("matvec")]),
            platforms=(PLATFORM,),
        ),
        model=ModelConfig(hidden_dim=16),
        training=TrainingConfig(epochs=4, batch_size=16,
                                learning_rate=2e-3, seed=0),
        seed=0,
    )
    session = Session(config, graph_cache_size=graph_cache_size)
    session.train()
    return session


def soak(session: Session, corpus, passes: int):
    """Run one cold pass + *passes* warm passes; return timing/accounting."""
    requests = corpus.sources()
    session.clear_cache()
    start = time.perf_counter()
    cold = session.predict_batch(requests, PLATFORM)
    cold_s = time.perf_counter() - start

    warm_times = []
    for _ in range(passes):
        start = time.perf_counter()
        warm = session.predict_batch(requests, PLATFORM)
        warm_times.append(time.perf_counter() - start)
        np.testing.assert_array_equal(warm, cold)   # soak must stay bit-stable
    info = session.cache_info()
    return cold, cold_s, min(warm_times), info


def test_synth_corpus_soak(benchmark):
    session = make_trained_session()
    corpus = build_corpus(CORPUS_SIZE, seed=2024)

    cold, cold_s, warm_s, info = soak(session, corpus, WARM_PASSES)
    benchmark.pedantic(
        lambda: session.predict_batch(corpus.sources(), PLATFORM),
        rounds=1, iterations=1)

    assert cold.shape == (len(corpus),)
    assert np.isfinite(cold).all()
    assert info.size == len(corpus)              # every distinct kernel cached
    cold_rps = len(corpus) / max(cold_s, 1e-9)
    warm_rps = len(corpus) / max(warm_s, 1e-9)
    speedup = cold_s / max(warm_s, 1e-9)
    report(f"synthetic-corpus soak ({len(corpus)} generated kernels, "
           f"{WARM_PASSES} warm passes, NVIDIA V100):\n"
           f"  cold pass (parse+build+encode) : {cold_s * 1000:8.1f} ms "
           f"({cold_rps:7.0f} req/s)\n"
           f"  warm pass (cache + GNN only)   : {warm_s * 1000:8.1f} ms "
           f"({warm_rps:7.0f} req/s)\n"
           f"  warm/cold speedup              : {speedup:8.1f}x\n"
           f"  cache: {info.hits} hits / {info.misses} misses, "
           f"{info.size}/{info.capacity} entries")
    report_json("BENCH_pr3_synth_soak.json", {
        "corpus_size": len(corpus),
        "warm_passes": WARM_PASSES,
        "cold_ms": cold_s * 1000,
        "warm_ms": warm_s * 1000,
        "cold_requests_per_s": cold_rps,
        "warm_requests_per_s": warm_rps,
        "speedup": speedup,
        "cache_hits": info.hits,
        "cache_misses": info.misses,
        "quick_mode": QUICK,
    })
    assert speedup >= 2.0, (
        f"warm soak passes must be >= 2x faster than the cold pass, got "
        f"{speedup:.2f}x (cold {cold_s:.4f}s vs warm {warm_s:.4f}s)")


@pytest.mark.slow
def test_synth_corpus_soak_with_cache_pressure(benchmark):
    """--runslow: 10x corpus under a deliberately undersized graph cache.

    The cache holds half the corpus, so every pass mixes evictions with
    hits; predictions must stay bit-stable anyway, and throughput must not
    collapse below the fully-cold rate.
    """
    corpus = build_corpus(4 * CORPUS_SIZE, seed=2025)
    session = make_trained_session(graph_cache_size=len(corpus) // 2)
    requests = corpus.sources()

    session.clear_cache()
    start = time.perf_counter()
    baseline = session.predict_batch(requests, PLATFORM)
    cold_s = time.perf_counter() - start

    passes = 10
    start = time.perf_counter()
    benchmark.pedantic(
        lambda: [np.testing.assert_array_equal(
            session.predict_batch(requests, PLATFORM), baseline)
            for _ in range(passes)],
        rounds=1, iterations=1)
    soak_s = (time.perf_counter() - start) / passes

    info = session.cache_info()
    assert info.size <= len(corpus) // 2         # capacity respected
    report(f"synthetic-corpus soak under cache pressure "
           f"({len(corpus)} kernels, cache {info.capacity}): "
           f"cold {cold_s * 1000:.1f} ms/pass, "
           f"soak {soak_s * 1000:.1f} ms/pass over {passes} passes")
    assert soak_s <= cold_s * 1.5                # eviction churn stays sane
