"""Figure 6 — error rate per application.

Shape check from the paper: the model is not biased toward one application —
no single application's error dominates the others by orders of magnitude,
and every application present in the validation split gets a finite error.
"""

from repro.evaluation import figure6_series, format_series

from _reporting import report


def test_fig6_error_per_application(benchmark, main_result):
    series = benchmark.pedantic(figure6_series, args=(main_result,), rounds=1, iterations=1)
    report("\nFigure 6 — error rate per application\n" + format_series(series))
    for platform, per_application in series.items():
        assert per_application, f"no validation applications for {platform}"
        errors = list(per_application.values())
        assert all(e >= 0 for e in errors)
        # not biased toward one application: the worst application stays within
        # a bounded factor of the mean error (the paper's "not biased" claim)
        mean_error = sum(errors) / len(errors)
        if mean_error > 0:
            assert max(errors) < mean_error * 25
