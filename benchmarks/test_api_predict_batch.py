"""Micro-benchmark: cold vs cached batched prediction through ``repro.api``.

The serving hot path is ``Session.predict_batch``: graph construction
(parse + analyze + build + encode) dominates a single prediction, so the
session's LRU cache plus one batched GNN forward pass must beat independent
cold predictions by a wide margin.  This benchmark trains one compact V100
model, then times

* **cold** — 8 independent single-source predictions with the cache dropped
  before each (the old ``run_workflow``-path cost: one full graph
  construction + one forward pass per source), and
* **cached** — one ``predict_batch`` call over the same 8 sources after a
  warm-up call (pure cache hits + one batched forward pass),

and asserts the >= 2x speedup the serving tier relies on.
"""

import time

import pytest

from _reporting import report
from repro.advisor import ALL_VARIANTS, generate_variant
from repro.api import DataConfig, ModelConfig, ReproConfig, Session, get_kernel
from repro.ml.trainer import TrainingConfig
from repro.pipeline import SweepConfig

PLATFORM = "v100"
SIZES = {"N": 96, "M": 96, "K": 96}


def make_trained_session(epochs: int = 5, hidden_dim: int = 16) -> Session:
    config = ReproConfig(
        data=DataConfig(
            sweep=SweepConfig(size_scales=(1.0,), team_counts=(64,),
                              thread_counts=(8, 64),
                              kernels=[get_kernel("matmul"), get_kernel("matvec"),
                                       get_kernel("transpose")]),
            platforms=(PLATFORM,),
        ),
        model=ModelConfig(hidden_dim=hidden_dim),
        training=TrainingConfig(epochs=epochs, batch_size=16,
                                learning_rate=2e-3, seed=0),
        seed=0,
    )
    session = Session(config)
    session.train()
    return session


def make_sources():
    """8 distinct OpenMP variant sources (matmul + transpose sweeps)."""
    sources = []
    for kernel_name in ("matmul", "transpose"):
        kernel = get_kernel(kernel_name)
        for kind in ALL_VARIANTS:
            if kind.uses_collapse and kernel.collapsible_loops < 2:
                continue
            sources.append(generate_variant(kernel, kind, SIZES))
    return sources[:8]


def time_cold(session, sources) -> float:
    """8 independent cold predictions (graph construction every time)."""
    start = time.perf_counter()
    for source in sources:
        session.clear_cache()
        session.predict(source, PLATFORM, sizes=SIZES, num_teams=64, num_threads=64)
    return time.perf_counter() - start


def time_cached(session, sources) -> float:
    """One batched prediction over fully cached graphs."""
    start = time.perf_counter()
    session.predict_batch(sources, PLATFORM, sizes=SIZES,
                          num_teams=64, num_threads=64)
    return time.perf_counter() - start


def test_predict_batch_cached_speedup(benchmark):
    session = make_trained_session()
    sources = make_sources()
    assert len(sources) == 8

    cold_s = time_cold(session, sources)
    session.predict_batch(sources, PLATFORM, sizes=SIZES,
                          num_teams=64, num_threads=64)   # warm the cache
    cached_s = min(time_cached(session, sources) for _ in range(3))
    benchmark.pedantic(time_cached, args=(session, sources), rounds=1, iterations=1)

    info = session.cache_info()
    speedup = cold_s / max(cached_s, 1e-9)
    report("predict_batch micro-benchmark (8 sources, NVIDIA V100):\n"
           f"  cold (8 independent, uncached) : {cold_s * 1000:8.1f} ms\n"
           f"  cached batched predict_batch   : {cached_s * 1000:8.1f} ms\n"
           f"  speedup                        : {speedup:8.1f}x\n"
           f"  cache: {info.hits} hits / {info.misses} misses, "
           f"{info.size}/{info.capacity} entries")
    assert info.size == 8
    assert speedup >= 2.0, (
        f"cached predict_batch must be >= 2x faster than cold predictions, "
        f"got {speedup:.2f}x (cold {cold_s:.4f}s vs cached {cached_s:.4f}s)")


@pytest.mark.slow
def test_predict_batch_speedup_at_scale(benchmark):
    """Paper-scale variant: bigger model, wider request wave (--runslow)."""
    session = make_trained_session(epochs=25, hidden_dim=32)
    sources = make_sources()
    wave = sources * 8                      # 64 requests, 8 distinct graphs

    cold_s = time_cold(session, sources) * len(wave) / len(sources)
    session.predict_batch(wave, PLATFORM, sizes=SIZES, num_teams=64, num_threads=64)
    start = time.perf_counter()
    benchmark.pedantic(
        lambda: session.predict_batch(wave, PLATFORM, sizes=SIZES,
                                      num_teams=64, num_threads=64),
        rounds=1, iterations=1)
    cached_s = time.perf_counter() - start

    speedup = cold_s / max(cached_s, 1e-9)
    report(f"predict_batch at scale (64 requests): {speedup:.1f}x vs cold")
    assert speedup >= 2.0
