"""Persistence helpers for the benchmark harness.

pytest captures the stdout of passing tests, so every benchmark also appends
its regenerated table/figure to a per-run results file via :func:`report`.
Results files live under the git-ignored ``benchmarks/out/`` directory, one
file per benchmark session (``results_<timestamp>.txt``), so repeated runs
never append to — or silently grow — a single shared file.

Performance benchmarks additionally persist machine-readable numbers with
:func:`report_json`.  By default those land under ``benchmarks/out/`` too —
an ordinary benchmark run must never dirty the working tree — and only an
explicit ``REPRO_BENCH_RECORD=1`` run updates the *tracked*
``benchmarks/BENCH_<tag>.json`` records that CI jobs and later PRs diff
timings against.
"""

import json
import os
import time

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")

#: current session's results file; assigned by :func:`reset_results`.
_results_path = None


def results_path() -> str:
    """Path of this benchmark session's results file (creating ``out/``)."""
    global _results_path
    if _results_path is None:
        os.makedirs(OUT_DIR, exist_ok=True)
        stamp = time.strftime("%Y%m%d-%H%M%S")
        _results_path = os.path.join(OUT_DIR,
                                     f"results_{stamp}_{os.getpid()}.txt")
    return _results_path


def reset_results() -> None:
    """Start a fresh per-run results file (called at session start)."""
    global _results_path
    _results_path = None
    results_path()


def report(text: str) -> None:
    """Print a regenerated table/figure and persist it to the run's file."""
    print(text)
    with open(results_path(), "a", encoding="utf-8") as handle:
        handle.write(text + "\n\n")


def record_enabled() -> bool:
    """Whether this run updates the tracked ``benchmarks/BENCH_*.json``."""
    return os.environ.get("REPRO_BENCH_RECORD", "").strip() not in {"", "0"}


def report_json(filename: str, payload: dict) -> str:
    """Write *payload* as pretty JSON; returns the path written.

    ``filename`` is conventionally ``BENCH_<tag>.json`` (e.g. ``BENCH_pr2.json``
    for the GNN-forward micro-benchmark).  The default destination is the
    git-ignored ``benchmarks/out/`` directory; set ``REPRO_BENCH_RECORD=1``
    to update the tracked record under ``benchmarks/`` instead (the one CI
    and later PRs diff against).
    """
    if record_enabled():
        path = os.path.join(os.path.dirname(__file__), filename)
    else:
        os.makedirs(OUT_DIR, exist_ok=True)
        path = os.path.join(OUT_DIR, filename)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
