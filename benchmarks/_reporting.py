"""Persistence helpers for the benchmark harness.

pytest captures the stdout of passing tests, so every benchmark also appends
its regenerated table/figure to ``benchmarks/results.txt`` via :func:`report`;
EXPERIMENTS.md references that file for the measured numbers.

Performance benchmarks additionally persist machine-readable numbers with
:func:`report_json` (``benchmarks/BENCH_<tag>.json``), so CI jobs and later
PRs can diff timings without parsing the text report.
"""

import json
import os

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")


def reset_results() -> None:
    """Start a fresh results file (called at benchmark-session start)."""
    try:
        os.remove(RESULTS_PATH)
    except FileNotFoundError:
        pass


def report(text: str) -> None:
    """Print a regenerated table/figure and persist it to results.txt."""
    print(text)
    with open(RESULTS_PATH, "a", encoding="utf-8") as handle:
        handle.write(text + "\n\n")


def report_json(filename: str, payload: dict) -> str:
    """Write *payload* as pretty JSON next to results.txt; returns the path.

    ``filename`` is conventionally ``BENCH_<tag>.json`` (e.g. ``BENCH_pr2.json``
    for the GNN-forward micro-benchmark).
    """
    path = os.path.join(os.path.dirname(__file__), filename)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
