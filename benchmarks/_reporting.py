"""Persistence helper for the benchmark harness.

pytest captures the stdout of passing tests, so every benchmark also appends
its regenerated table/figure to ``benchmarks/results.txt`` via :func:`report`;
EXPERIMENTS.md references that file for the measured numbers.
"""

import os

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")


def reset_results() -> None:
    """Start a fresh results file (called at benchmark-session start)."""
    try:
        os.remove(RESULTS_PATH)
    except FileNotFoundError:
        pass


def report(text: str) -> None:
    """Print a regenerated table/figure and persist it to results.txt."""
    print(text)
    with open(RESULTS_PATH, "a", encoding="utf-8") as handle:
        handle.write(text + "\n\n")
