"""Figure 9 — predicted vs actual runtime for ParaGraph and COMPOFF (V100).

Shape checks: both models correlate strongly and positively with the actual
runtime (the paper's Fig. 9 shows both clustering around the diagonal, with
ParaGraph tighter).  As explained in ``test_fig8_compoff_error.py`` and
EXPERIMENTS.md, the analytical simulator hands COMPOFF's features an
information advantage they do not have on real hardware, so the assertion
here is a strong ParaGraph correlation rather than a strict win over COMPOFF.
"""

from repro.evaluation import format_table
from repro.ml import pearson_correlation

from _reporting import report


def test_fig9_predicted_vs_actual_correlation(benchmark, comparison_result):
    points = benchmark.pedantic(comparison_result.figure9_points, rounds=1, iterations=1)
    correlations = {}
    for name, series in points.items():
        actual = [a for a, _ in series]
        predicted = [p for _, p in series]
        correlations[name] = pearson_correlation(actual, predicted)
    rows = [{"model": name, "pearson_correlation": value}
            for name, value in correlations.items()]
    report("\nFigure 9 — predicted vs actual correlation (NVIDIA V100)\n" +
          format_table(rows, ("model", "pearson_correlation")))
    assert correlations["ParaGraph"] > 0.6, "ParaGraph should correlate with the actual runtime"
    assert correlations["COMPOFF"] > 0.0, "COMPOFF should correlate positively as well"
